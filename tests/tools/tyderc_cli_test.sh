#!/usr/bin/env bash
# End-to-end CLI contract for tyderc: exit statuses, --batch failure
# diagnostics (the satellite fix: a failing batch item must exit non-zero),
# and the --db durable lifecycle (seed, mutate, recover, compact).
#
# Usage: tyderc_cli_test.sh <path-to-tyderc> <path-to-payroll.tdl>
set -u

TYDERC="$1"
TDL="$2"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/tyderc_cli_test.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

failures=0
check() {  # check <description> <expected-exit> <actual-exit>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1 (expected exit $2, got $3)" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1"
  fi
}

# --- usage errors (the dedicated exit code 2) ------------------------------

# Exit 2 is reserved for "the command line never made sense": nothing ran,
# nothing was touched, retrying without fixing the invocation is pointless.
# Scripts branch on it (run_all.sh, the serve gate) to tell their own bugs
# apart from real operation failures (1) and degraded mode (3).
"$TYDERC" --no-such-flag > /dev/null 2> "$WORK/usage.err"
check "unknown flag exits 2 (usage)" 2 $?
grep -q "^usage:" "$WORK/usage.err" \
  || { echo "FAIL: usage error did not print the usage text" >&2; failures=$((failures + 1)); }

"$TYDERC" > /dev/null 2>&1
check "no schema and no --db exits 2 (usage)" 2 $?

"$TYDERC" "$TDL" --project Employee > /dev/null 2>&1
check "--project with missing operands exits 2 (usage)" 2 $?

# --- in-memory batch exit status ------------------------------------------

cat > "$WORK/good.batch" <<EOF
Employee SSN,pay_rate PayView
Person SSN,name ContactView
EOF
"$TYDERC" "$TDL" --batch "$WORK/good.batch" > "$WORK/good.out" 2> "$WORK/good.err"
check "all-good batch exits 0" 0 $?

# Person does not have pay_rate, so BadView fails at derivation (not at name
# resolution, which is fail-fast) and exercises the per-item diagnostics.
cat > "$WORK/bad.batch" <<EOF
Employee SSN,pay_rate PayView
Person pay_rate BadView
EOF
"$TYDERC" "$TDL" --batch "$WORK/bad.batch" > "$WORK/bad.out" 2> "$WORK/bad.err"
check "batch with a failing item exits non-zero" 1 $?
grep -q "FAILED BadView" "$WORK/bad.out" \
  || { echo "FAIL: per-item FAILED line missing from stdout" >&2; failures=$((failures + 1)); }
grep -q "batch item 'BadView'" "$WORK/bad.err" \
  || { echo "FAIL: per-item diagnostic missing from stderr" >&2; failures=$((failures + 1)); }

"$TYDERC" "$TDL" --batch "$WORK/missing.batch" > /dev/null 2>&1
test $? -ne 0; check "missing batch file exits non-zero" 0 $?

# --- durable lifecycle -----------------------------------------------------

DB="$WORK/db"
"$TYDERC" "$TDL" --db "$DB" > /dev/null 2>&1
check "seeding a fresh db exits 0" 0 $?
test -f "$DB/wal.log"
check "seeded db has a WAL" 0 $?

"$TYDERC" --db "$DB" --project Employee SSN,pay_rate PayView > /dev/null 2>&1
check "durable --project exits 0" 0 $?

"$TYDERC" --db "$DB" > "$WORK/reopen.out" 2>&1
check "reopen after mutation exits 0" 0 $?
grep -q "1 records replayed" "$WORK/reopen.out" \
  || { echo "FAIL: reopen did not report the replayed record" >&2; failures=$((failures + 1)); }

"$TYDERC" --db "$DB" --compact > /dev/null 2>&1
check "--compact exits 0" 0 $?
test "$(wc -c < "$DB/wal.log")" -eq 0
check "compaction truncated the WAL" 0 $?

"$TYDERC" --db "$DB" --drop PayView > /dev/null 2>&1
check "durable --drop exits 0" 0 $?

"$TYDERC" --db "$DB" --project Employee no_such_attr BadView > /dev/null 2> "$WORK/dbbad.err"
test $? -ne 0; check "failing durable op exits non-zero" 0 $?
"$TYDERC" --db "$DB" > /dev/null 2>&1
check "db reopens cleanly after a failed op" 0 $?

"$TYDERC" --compact > /dev/null 2>&1
test $? -ne 0; check "--compact without --db exits non-zero" 0 $?

# --- concurrent durable batch (group commit) -------------------------------

# --jobs N routes the durable batch through N concurrent committers sharing
# group-commit fsync batches; every item must land and replay on reopen.
cat > "$WORK/con.batch" <<EOF
Employee SSN,pay_rate ConViewA
Employee SSN ConViewB
Person SSN,name ConViewC
Person name ConViewD
EOF
"$TYDERC" --db "$DB" --jobs 4 --batch "$WORK/con.batch" > "$WORK/con.out" 2> "$WORK/con.err"
check "durable --batch with --jobs 4 exits 0" 0 $?
grep -q "4 applied, 0 failed" "$WORK/con.out" \
  || { echo "FAIL: concurrent durable batch did not apply every item" >&2; failures=$((failures + 1)); }
grep -q "4 concurrent committers" "$WORK/con.out" \
  || { echo "FAIL: concurrent durable batch did not report its committers" >&2; failures=$((failures + 1)); }
"$TYDERC" --db "$DB" --export > "$WORK/con-reopen.out" 2>&1
check "reopen after a concurrent batch exits 0" 0 $?
for v in ConViewA ConViewB ConViewC ConViewD; do
  grep -q "view $v = " "$WORK/con-reopen.out" \
    || { echo "FAIL: recovery lost concurrently committed view $v" >&2; failures=$((failures + 1)); }
done

# --- health report and the degraded exit code ------------------------------

"$TYDERC" --db "$DB" --health > "$WORK/health.out" 2>&1
check "--health on a healthy db exits 0" 0 $?
grep -q "state: healthy" "$WORK/health.out" \
  || { echo "FAIL: --health did not report a healthy state" >&2; failures=$((failures + 1)); }

"$TYDERC" --health > /dev/null 2>&1
test $? -eq 2; check "--health without --db exits 2" 0 $?

# An injected WAL fsync failure (armed through the environment) must drop
# the database into degraded mode and exit with the dedicated code 3.
TYDER_FAULTS="storage.env.sync=1" \
  "$TYDERC" --db "$DB" --project Employee SSN DegView > /dev/null 2> "$WORK/degraded.err"
check "mutation under an fsync fault exits 3 (degraded)" 3 $?
grep -q "degraded" "$WORK/degraded.err" \
  || { echo "FAIL: degraded diagnostic missing from stderr" >&2; failures=$((failures + 1)); }

# Degraded mode is per-process state rooted in the fsync lie: a fresh
# process re-validates the directory and serves again.
"$TYDERC" --db "$DB" --health > "$WORK/health2.out" 2>&1
check "db re-validates cleanly after the degraded run" 0 $?
grep -q "state: healthy" "$WORK/health2.out" \
  || { echo "FAIL: post-fault --health did not report healthy" >&2; failures=$((failures + 1)); }

# In-process: a failing mutation followed by --health in the SAME invocation
# reports DEGRADED and exits 3 (ops compose left to right, fail-fast returns
# the degraded code before --health runs, so use --batch which continues).
cat > "$WORK/deg.batch" <<EOF
Employee SSN Deg2View
EOF
TYDER_FAULTS="storage.env.sync=1" \
  "$TYDERC" --db "$DB" --batch "$WORK/deg.batch" --health > "$WORK/health3.out" 2>&1
check "--batch + --health under an fsync fault exits 3" 3 $?
grep -q "state: DEGRADED" "$WORK/health3.out" \
  || { echo "FAIL: --health did not report DEGRADED in-process" >&2; failures=$((failures + 1)); }

# --- fault point listing (consumed by run_all.sh crash mode) ---------------

"$TYDERC" --list-faults > "$WORK/faults.out" 2>&1
check "--list-faults exits 0" 0 $?
grep -q "^storage.wal.torn_write$" "$WORK/faults.out" \
  || { echo "FAIL: --list-faults is missing the storage points" >&2; failures=$((failures + 1)); }

if [ "$failures" -ne 0 ]; then
  echo "$failures check(s) failed" >&2
  exit 1
fi
echo "all checks passed"
