// Unit tests for the tyder-stat JSON-subset parser — in particular the
// \uXXXX escape support (BMP code points, surrogate pairs, and the malformed
// escapes that must fail the line instead of guessing).

#include "tyder_stat_parser.h"

#include <gtest/gtest.h>

#include <string>

namespace {

using tyder_stat::Parser;
using tyder_stat::StatsLine;

std::string kMinimalPrefix = "{\"schema\":\"tyder-stats-v1\",";

bool ParseLine(const std::string& line, StatsLine* out) {
  return Parser(line).Parse(out);
}

// Parses one standalone JSON string; empty optional-style result via bool.
bool ParseJsonString(const std::string& json, std::string* out) {
  Parser parser(json);
  return parser.ParseString(out);
}

TEST(TyderStatParser, ParsesSnapshotterOutputShape) {
  StatsLine line;
  ASSERT_TRUE(ParseLine(
      kMinimalPrefix +
          "\"ts_ms\":123,\"seq\":7,"
          "\"counters\":{\"net.requests\":42,\"net.shed\":1},"
          "\"histograms\":{\"net.request_ns\":{\"count\":5,\"p50\":100}},"
          "\"recorder\":{\"threads\":2,\"events\":9}}",
      &line));
  EXPECT_EQ(line.ts_ms, 123);
  EXPECT_EQ(line.seq, 7);
  EXPECT_EQ(line.counters.at("net.requests"), 42);
  EXPECT_EQ(line.histograms.at("net.request_ns").at("p50"), 100);
  EXPECT_EQ(line.recorder_threads, 2);
  EXPECT_EQ(line.recorder_events, 9);
}

TEST(TyderStatParser, DecodesBmpUnicodeEscapes) {
  std::string out;
  ASSERT_TRUE(ParseJsonString("\"\\u0041\\u00e9\\u20ac\"", &out));
  // U+0041 'A' (1 byte), U+00E9 'é' (2 bytes), U+20AC '€' (3 bytes).
  EXPECT_EQ(out, "A\xc3\xa9\xe2\x82\xac");
}

TEST(TyderStatParser, DecodesAsciiEscapeMixedWithPlainText) {
  std::string out;
  ASSERT_TRUE(ParseJsonString("\"net\\u002erequests\"", &out));
  EXPECT_EQ(out, "net.requests");
}

TEST(TyderStatParser, HexDigitsAreCaseInsensitive) {
  std::string lower, upper;
  ASSERT_TRUE(ParseJsonString("\"\\u20ac\"", &lower));
  ASSERT_TRUE(ParseJsonString("\"\\u20AC\"", &upper));
  EXPECT_EQ(lower, upper);
}

TEST(TyderStatParser, DecodesSurrogatePairs) {
  std::string out;
  // U+1F600 GRINNING FACE as the pair D83D/DE00 -> 4-byte UTF-8.
  ASSERT_TRUE(ParseJsonString("\"\\ud83d\\ude00\"", &out));
  EXPECT_EQ(out, "\xf0\x9f\x98\x80");
}

TEST(TyderStatParser, SurrogatePairBoundaryCodePoints) {
  std::string out;
  // U+10000, the first supplementary code point (D800/DC00).
  ASSERT_TRUE(ParseJsonString("\"\\ud800\\udc00\"", &out));
  EXPECT_EQ(out, "\xf0\x90\x80\x80");
  // U+10FFFF, the last code point (DBFF/DFFF).
  ASSERT_TRUE(ParseJsonString("\"\\udbff\\udfff\"", &out));
  EXPECT_EQ(out, "\xf4\x8f\xbf\xbf");
}

TEST(TyderStatParser, RejectsLoneHighSurrogate) {
  std::string out;
  EXPECT_FALSE(ParseJsonString("\"\\ud83d\"", &out));
  EXPECT_FALSE(ParseJsonString("\"\\ud83dx\"", &out));
  EXPECT_FALSE(ParseJsonString("\"\\ud83d\\n\"", &out));
}

TEST(TyderStatParser, RejectsLoneLowSurrogate) {
  std::string out;
  EXPECT_FALSE(ParseJsonString("\"\\ude00\"", &out));
}

TEST(TyderStatParser, RejectsHighSurrogateFollowedByNonLow) {
  std::string out;
  EXPECT_FALSE(ParseJsonString("\"\\ud83d\\u0041\"", &out));
}

TEST(TyderStatParser, RejectsMalformedHex) {
  std::string out;
  EXPECT_FALSE(ParseJsonString("\"\\u12\"", &out));      // too short
  EXPECT_FALSE(ParseJsonString("\"\\u12g4\"", &out));    // non-hex digit
  EXPECT_FALSE(ParseJsonString("\"\\u\"", &out));        // nothing at all
}

TEST(TyderStatParser, UnicodeEscapeInsideCounterKey) {
  StatsLine line;
  ASSERT_TRUE(ParseLine(
      kMinimalPrefix + "\"counters\":{\"caf\\u00e9\":3}}", &line));
  EXPECT_EQ(line.counters.at("caf\xc3\xa9"), 3);
}

TEST(TyderStatParser, MalformedEscapeFailsTheWholeLine) {
  StatsLine line;
  EXPECT_FALSE(ParseLine(
      kMinimalPrefix + "\"counters\":{\"bad\\ud800key\":3}}", &line));
}

TEST(TyderStatParser, StillRejectsUnknownSimpleEscapes) {
  std::string out;
  EXPECT_FALSE(ParseJsonString("\"\\b\"", &out));
  EXPECT_FALSE(ParseJsonString("\"\\f\"", &out));
}

TEST(TyderStatParser, RejectsNonStatsSchema) {
  StatsLine line;
  EXPECT_FALSE(ParseLine("{\"schema\":\"other-v1\",\"seq\":1}", &line));
}

}  // namespace
