// tyder1 protocol codec contract (net/protocol.h): request/response
// round-trips and hard rejection of malformed payloads.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tyder::net {
namespace {

TEST(ProtocolTest, RequestRoundTrips) {
  Request request;
  request.command = "project";
  request.deadline_ms = 250;
  request.args = {"EmployeeView", "Employee", "SSN,pay_rate"};
  auto parsed = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->command, "project");
  EXPECT_EQ(parsed->deadline_ms, 250u);
  EXPECT_EQ(parsed->args, request.args);
}

TEST(ProtocolTest, RequestWithNoArgsAndNoDeadline) {
  Request request;
  request.command = "ping";
  auto parsed = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->command, "ping");
  EXPECT_EQ(parsed->deadline_ms, 0u);
  EXPECT_TRUE(parsed->args.empty());
}

TEST(ProtocolTest, ArgumentsMayContainSpaces) {
  Request request;
  request.command = "query";
  request.args = {"dispatch", "income", "Employee, Person"};
  auto parsed = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->args[2], "Employee, Person");
}

TEST(ProtocolTest, RejectsWrongMagic) {
  EXPECT_FALSE(ParseRequest("tyder9 ping 0").ok());
  EXPECT_FALSE(ParseRequest("GET / HTTP/1.1").ok());
  EXPECT_FALSE(ParseRequest("").ok());
}

TEST(ProtocolTest, RejectsMalformedHeadLine) {
  EXPECT_FALSE(ParseRequest("tyder1").ok());            // no command
  EXPECT_FALSE(ParseRequest("tyder1 ping").ok());       // no deadline
  EXPECT_FALSE(ParseRequest("tyder1 ping abc").ok());   // non-numeric
  EXPECT_FALSE(ParseRequest("tyder1 ping -5").ok());    // negative
}

TEST(ProtocolTest, OkResponseRoundTrips) {
  Response response = OkResponse({"EmployeeView", "PayView"});
  auto parsed = ParseResponse(EncodeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, ResponseKind::kOk);
  EXPECT_TRUE(parsed->ok());
  ASSERT_EQ(parsed->body.size(), 2u);
  EXPECT_EQ(parsed->body[0], "EmployeeView");
  EXPECT_EQ(parsed->body[1], "PayView");
}

TEST(ProtocolTest, ErrResponseCarriesCodeAndMessage) {
  Response response =
      ErrResponse(Status::NotFound("no view named 'Ghost'"));
  auto parsed = ParseResponse(EncodeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, ResponseKind::kErr);
  EXPECT_EQ(parsed->code, StatusCode::kNotFound);
  EXPECT_EQ(parsed->message(), "no view named 'Ghost'");
}

TEST(ProtocolTest, RetryAfterRoundTrips) {
  auto parsed = ParseResponse(EncodeResponse(RetryAfterResponse(75)));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, ResponseKind::kRetryAfter);
  EXPECT_EQ(parsed->retry_after_ms, 75u);
}

TEST(ProtocolTest, DeadlineExceededRoundTrips) {
  auto parsed = ParseResponse(EncodeResponse(DeadlineExceededResponse()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, ResponseKind::kDeadlineExceeded);
}

TEST(ProtocolTest, DegradedResponseNamesTheCause) {
  auto parsed = ParseResponse(
      EncodeResponse(DegradedResponse("wal fsync failed: EIO")));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->kind, ResponseKind::kDegraded);
  EXPECT_EQ(parsed->message(), "wal fsync failed: EIO");
}

TEST(ProtocolTest, RejectsMalformedResponses) {
  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("MAYBE").ok());
  EXPECT_FALSE(ParseResponse("ERR").ok());          // missing code name
  EXPECT_FALSE(ParseResponse("RETRY_AFTER").ok());  // missing hint
  EXPECT_FALSE(ParseResponse("RETRY_AFTER soon").ok());
}

TEST(ProtocolTest, UnknownCodeNameMapsToInternal) {
  EXPECT_EQ(StatusCodeFromName("NotFound"), StatusCode::kNotFound);
  EXPECT_EQ(StatusCodeFromName("TypeError"), StatusCode::kTypeError);
  EXPECT_EQ(StatusCodeFromName("SomethingNew"), StatusCode::kInternal);
  // A forward-compatible parse: the response still decodes.
  auto parsed = ParseResponse("ERR SomethingNew\nfuture failure");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->code, StatusCode::kInternal);
  EXPECT_EQ(parsed->message(), "future failure");
}

}  // namespace
}  // namespace tyder::net
