// End-to-end contract of the tyderd serving core (net/server.h): command
// registry, admission control (door shed, queue shed, deadlines, idle
// reaping), admin gating, and degraded-mode serving — all over real
// loopback sockets against a real DurableCatalog.

#include "net/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "net/client.h"
#include "storage/durable_catalog.h"
#include "testing/fixtures.h"

namespace tyder::net {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_server_test_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

// One seeded store + one running server per test.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(const std::string& name, ServerOptions options = {}) {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    auto opened = storage::DurableCatalog::Open(FreshDir(name));
    ASSERT_TRUE(opened.ok()) << opened.status();
    db_.emplace(std::move(*opened));
    ASSERT_TRUE(db_->Seed(Catalog(std::move(fx->schema))).ok());
    options.admin = admin_;
    auto server = Server::Start(&*db_, options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  Client MustConnect() {
    auto client = Client::Connect(server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(*client);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    failpoint::DeactivateAll();
  }

  bool admin_ = true;
  std::optional<storage::DurableCatalog> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingAndHealth) {
  StartServer("ping");
  Client client = MustConnect();

  auto pong = client.Call("ping");
  ASSERT_TRUE(pong.ok()) << pong.status();
  ASSERT_TRUE(pong->ok()) << pong->message();
  EXPECT_EQ(pong->message(), "pong");

  auto health = client.Call("health");
  ASSERT_TRUE(health.ok() && health->ok());
  ASSERT_FALSE(health->body.empty());
  EXPECT_EQ(health->body[0], "status ok");
}

TEST_F(ServerTest, MutationsAndQueriesShareOneCatalog) {
  StartServer("mutate");
  Client client = MustConnect();

  auto defined = client.Call(
      "project", {"EmpView", "Employee", "SSN,date_of_birth,pay_rate"});
  ASSERT_TRUE(defined.ok()) << defined.status();
  ASSERT_TRUE(defined->ok()) << defined->message();

  auto views = client.Call("query", {"views"});
  ASSERT_TRUE(views.ok() && views->ok());
  ASSERT_EQ(views->body.size(), 1u);
  EXPECT_EQ(views->body[0], "EmpView");

  // The derived view type joined the hierarchy: Employee <= EmpView.
  auto sub = client.Call("query", {"subtype", "Employee", "EmpView"});
  ASSERT_TRUE(sub.ok() && sub->ok()) << sub.status();
  EXPECT_EQ(sub->message(), "true");

  auto dispatch = client.Call("query", {"dispatch", "income", "Employee"});
  ASSERT_TRUE(dispatch.ok() && dispatch->ok()) << dispatch.status();
  EXPECT_EQ(dispatch->message(), "income");

  auto oracle = client.Call("verify");
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_TRUE(oracle->ok()) << oracle->message();

  // A second client sees the same published epoch.
  Client other = MustConnect();
  auto again = other.Call("query", {"views"});
  ASSERT_TRUE(again.ok() && again->ok());
  EXPECT_EQ(again->body, views->body);
}

TEST_F(ServerTest, ErrorsAreAnswersNotDisconnects) {
  StartServer("errors");
  Client client = MustConnect();

  auto unknown = client.Call("frobnicate");
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_EQ(unknown->kind, ResponseKind::kErr);
  EXPECT_EQ(unknown->code, StatusCode::kInvalidArgument);

  auto missing = client.Call("query", {"subtype", "Ghost", "Person"});
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing->kind, ResponseKind::kErr);
  EXPECT_EQ(missing->code, StatusCode::kNotFound);

  // The connection survived both errors.
  auto pong = client.Call("ping");
  ASSERT_TRUE(pong.ok() && pong->ok());
}

TEST_F(ServerTest, MalformedRequestEarnsErrOnALiveConnection) {
  StartServer("malformed");
  auto fd = ConnectLoopback(server_->port(), Deadline::AfterMs(2000));
  ASSERT_TRUE(fd.ok()) << fd.status();

  // The frame is intact (CRC passes) but the payload is not tyder1.
  ASSERT_TRUE(
      WriteFrame(fd->get(), "HELO world", Deadline::AfterMs(2000)).ok());
  auto answer = ReadFrame(fd->get(), Deadline::AfterMs(2000));
  ASSERT_TRUE(answer.ok()) << answer.status();
  auto parsed = ParseResponse(*answer);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, ResponseKind::kErr);

  // Stream still synchronized: a well-formed request now succeeds.
  Request ping;
  ping.command = "ping";
  ASSERT_TRUE(
      WriteFrame(fd->get(), EncodeRequest(ping), Deadline::AfterMs(2000))
          .ok());
  auto pong = ReadFrame(fd->get(), Deadline::AfterMs(2000));
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(ParseResponse(*pong)->ok());
}

TEST_F(ServerTest, AdminCommandsNeedTheAdminFlag) {
  admin_ = false;
  StartServer("noadmin");
  Client client = MustConnect();
  for (const char* cmd : {"reopen", "fault", "sleep", "shutdown"}) {
    auto refused = client.Call(cmd);
    ASSERT_TRUE(refused.ok()) << refused.status();
    EXPECT_EQ(refused->kind, ResponseKind::kErr) << cmd;
    EXPECT_EQ(refused->code, StatusCode::kFailedPrecondition) << cmd;
    EXPECT_NE(refused->message().find("--admin"), std::string_view::npos);
  }
  EXPECT_FALSE(server_->shutdown_requested());
}

TEST_F(ServerTest, ExpiredDeadlineIsRefusedBeforeTouchingTheCatalog) {
  ServerOptions options;
  options.workers = 1;
  StartServer("deadline", options);

  // Occupy the only worker, then race a tightly-budgeted mutation into the
  // queue: by the time the worker frees up, the budget is gone and the
  // catalog must not have been touched.
  std::thread blocker([this] {
    Client client = MustConnect();
    auto slept = client.Call("sleep", {"400"});
    EXPECT_TRUE(slept.ok() && slept->ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client client = MustConnect();
  auto late = client.Call("project", {"LateView", "Person", "SSN"},
                          /*deadline_ms=*/50);
  blocker.join();
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(late->kind, ResponseKind::kDeadlineExceeded);
  EXPECT_GE(server_->stats().deadline_misses, 1u);

  auto views = client.Call("query", {"views"});
  ASSERT_TRUE(views.ok() && views->ok());
  EXPECT_TRUE(views->body.empty());  // the nack was definitive
}

TEST_F(ServerTest, FullQueueShedsWithRetryAfter) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.retry_after_ms = 75;
  StartServer("queueshed", options);

  std::thread busy([this] {
    Client client = MustConnect();
    auto slept = client.Call("sleep", {"600"});
    EXPECT_TRUE(slept.ok() && slept->ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread queued([this] {
    Client client = MustConnect();
    auto slept = client.Call("sleep", {"0"});
    EXPECT_TRUE(slept.ok() && slept->ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Worker busy, queue full: the third request must be shed, immediately
  // and with the configured hint.
  Client client = MustConnect();
  auto shed = client.Call("ping");
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(shed->kind, ResponseKind::kRetryAfter);
  EXPECT_EQ(shed->retry_after_ms, 75u);
  EXPECT_GE(server_->stats().shed, 1u);

  busy.join();
  queued.join();

  // Load gone: the same connection is served again.
  auto pong = client.Call("ping");
  ASSERT_TRUE(pong.ok() && pong->ok());
}

TEST_F(ServerTest, ConnectionLimitShedsAtTheDoor) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer("doorshed", options);

  Client first = MustConnect();
  ASSERT_TRUE(first.Call("ping").ok());

  // The second connection is answered RETRY_AFTER and closed — by the
  // accept loop itself, before any request is read.
  auto second = Client::Connect(server_->port());
  ASSERT_TRUE(second.ok()) << second.status();
  auto shed = second->Call("ping");
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(shed->kind, ResponseKind::kRetryAfter);
  EXPECT_GE(server_->stats().shed, 1u);

  // The first connection never noticed.
  ASSERT_TRUE(first.Call("ping").ok());
}

TEST_F(ServerTest, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  StartServer("idle", options);

  Client client = MustConnect();
  ASSERT_TRUE(client.Call("ping").ok());
  for (int i = 0; i < 100 && server_->active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(server_->active_connections(), 0);
  EXPECT_GE(server_->stats().disconnects, 1u);
}

TEST_F(ServerTest, ServesReadsWhileDegradedAndRecoversOnReopen) {
  StartServer("degraded");
  Client client = MustConnect();

  ASSERT_TRUE(client.Call("project", {"Keep", "Person", "SSN"})->ok());

  // Arm the durability fault over the wire, exactly as a chaos campaign
  // does, and drive the store into read-only degraded mode.
  ASSERT_TRUE(client.Call("fault", {"storage.env.sync", "1"})->ok());
  // The op that TRIGGERS the fsync failure reports the raw durability error
  // (its WAL bytes may survive — an indeterminate outcome, see chaos.h)...
  auto trigger = client.Call("project", {"Lost", "Person", "name"});
  ASSERT_TRUE(trigger.ok()) << trigger.status();
  EXPECT_EQ(trigger->kind, ResponseKind::kErr);
  // ...and every mutation AFTER it gets the typed DEGRADED refusal.
  auto refused = client.Call("project", {"Lost2", "Person", "name"});
  ASSERT_TRUE(refused.ok()) << refused.status();
  EXPECT_EQ(refused->kind, ResponseKind::kDegraded);
  EXPECT_FALSE(refused->message().empty());  // names the original failure
  EXPECT_GE(server_->stats().degraded_refusals, 1u);

  // Reads keep serving off the pinned epoch; health names the state.
  auto views = client.Call("query", {"views"});
  ASSERT_TRUE(views.ok() && views->ok());
  ASSERT_EQ(views->body.size(), 1u);
  EXPECT_EQ(views->body[0], "Keep");
  auto health = client.Call("health");
  ASSERT_TRUE(health.ok() && health->ok());
  EXPECT_EQ(health->body[0], "status degraded");
  EXPECT_TRUE(client.Call("verify")->ok());

  // Admin reopen recovers in place, on the same live connection.
  auto reopened = client.Call("reopen");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_TRUE(reopened->ok()) << reopened->message();
  EXPECT_EQ(client.Call("health")->body[0], "status ok");

  auto after = client.Call("project", {"After", "Person", "SSN,name"});
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->ok()) << after->message();
  EXPECT_TRUE(client.Call("verify")->ok());
}

TEST_F(ServerTest, AdminFaultValidatesThePointName) {
  StartServer("badfault");
  Client client = MustConnect();
  auto unknown = client.Call("fault", {"net.nonsense", "1"});
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_EQ(unknown->kind, ResponseKind::kErr);
  EXPECT_EQ(unknown->code, StatusCode::kNotFound);
}

TEST_F(ServerTest, ShutdownCommandUnparksTheDaemon) {
  StartServer("shutdown");
  Client client = MustConnect();
  auto answer = client.Call("shutdown");
  ASSERT_TRUE(answer.ok() && answer->ok());
  EXPECT_TRUE(server_->shutdown_requested());
  server_->WaitForShutdownRequest();  // returns immediately now
  server_->Stop();
}

TEST_F(ServerTest, SaveCompactsThroughTheServer) {
  StartServer("save");
  Client client = MustConnect();
  ASSERT_TRUE(client.Call("project", {"V", "Employee", "SSN"})->ok());
  auto saved = client.Call("save");
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_TRUE(saved->ok()) << saved->message();
  auto dropped = client.Call("drop", {"V"});
  ASSERT_TRUE(dropped.ok() && dropped->ok());
  EXPECT_TRUE(client.Call("query", {"views"})->body.empty());
}

}  // namespace
}  // namespace tyder::net
