// Framing-layer contract (net/frame.h): length + CRC32C framing over a
// byte stream, deadline-bounded blocking I/O, and the injected transport
// faults (short read, EINTR).

#include "net/frame.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "common/failpoint.h"
#include "net/socket.h"
#include "storage/crc32c.h"

namespace tyder::net {
namespace {

class FrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = Fd(fds[0]);
    b_ = Fd(fds[1]);
  }
  void TearDown() override { failpoint::DeactivateAll(); }

  Fd a_, b_;
};

TEST_F(FrameTest, RoundTripsPayloads) {
  for (const std::string& payload :
       {std::string("tyder1 ping 0"), std::string(""),
        std::string(4096, 'x'), std::string("line1\nline2\n\nline4")}) {
    ASSERT_TRUE(WriteFrame(a_.get(), payload, Deadline::Infinite()).ok());
    auto got = ReadFrame(b_.get(), Deadline::AfterMs(1000));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, payload);
  }
}

TEST_F(FrameTest, BackToBackFramesStaySeparated) {
  ASSERT_TRUE(WriteFrame(a_.get(), "first", Deadline::Infinite()).ok());
  ASSERT_TRUE(WriteFrame(a_.get(), "second", Deadline::Infinite()).ok());
  auto one = ReadFrame(b_.get(), Deadline::AfterMs(1000));
  auto two = ReadFrame(b_.get(), Deadline::AfterMs(1000));
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_EQ(*one, "first");
  EXPECT_EQ(*two, "second");
}

TEST_F(FrameTest, DetectsCorruptedPayload) {
  // Hand-build a frame whose CRC covers different bytes than it carries.
  std::string payload = "tyder1 ping 0";
  char header[8];
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = storage::Crc32c(payload);
  for (int i = 0; i < 4; ++i) header[i] = static_cast<char>(len >> (8 * i));
  for (int i = 0; i < 4; ++i)
    header[4 + i] = static_cast<char>(crc >> (8 * i));
  payload[3] ^= 0x40;  // flip a bit after the CRC was computed
  ASSERT_EQ(write(a_.get(), header, 8), 8);
  ASSERT_EQ(write(a_.get(), payload.data(),
                  static_cast<ssize_t>(payload.size())),
            static_cast<ssize_t>(payload.size()));
  auto got = ReadFrame(b_.get(), Deadline::AfterMs(1000));
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("checksum"), std::string::npos);
}

TEST_F(FrameTest, CleanCloseBeforeAnyByteIsNotFound) {
  a_.Close();
  auto got = ReadFrame(b_.get(), Deadline::AfterMs(1000));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(IsCleanClose(got.status()));
}

TEST_F(FrameTest, EofMidFrameIsATornFrameNotACleanClose) {
  char partial[3] = {'x', 'y', 'z'};  // 3 of the 8 header bytes
  ASSERT_EQ(write(a_.get(), partial, 3), 3);
  a_.Close();
  auto got = ReadFrame(b_.get(), Deadline::AfterMs(1000));
  ASSERT_FALSE(got.ok());
  EXPECT_FALSE(IsCleanClose(got.status()));
  EXPECT_NE(got.status().message().find("mid-frame"), std::string::npos);
}

TEST_F(FrameTest, RefusesOversizedFrames) {
  std::string big(128, 'x');
  ASSERT_TRUE(WriteFrame(a_.get(), big, Deadline::Infinite()).ok());
  auto got = ReadFrame(b_.get(), Deadline::AfterMs(1000), /*max_frame=*/64);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FrameTest, ReadDeadlineExpiresInsteadOfBlocking) {
  auto got = ReadFrame(b_.get(), Deadline::AfterMs(50));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(IsTimeout(got.status()));
}

TEST_F(FrameTest, InjectedShortReadFailsTheFrame) {
  ASSERT_TRUE(WriteFrame(a_.get(), "doomed", Deadline::Infinite()).ok());
  failpoint::Activate("net.read.short", 1);
  auto got = ReadFrame(b_.get(), Deadline::AfterMs(1000));
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("mid-frame"), std::string::npos);
}

TEST_F(FrameTest, InjectedEintrIsRetriedTransparently) {
  ASSERT_TRUE(WriteFrame(a_.get(), "survives", Deadline::Infinite()).ok());
  failpoint::Activate("net.read.eintr", 1);
  auto got = ReadFrame(b_.get(), Deadline::AfterMs(1000));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, "survives");
}

TEST_F(FrameTest, WriteObservesDeadlineOnFullSocket) {
  // Shrink the send buffer and never read from the peer; a large-enough
  // write must hit the deadline rather than block forever.
  int small = 4096;
  setsockopt(a_.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  std::string flood(1 << 22, 'x');
  Status status = WriteFrame(a_.get(), flood, Deadline::AfterMs(100));
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsTimeout(status));
}

}  // namespace
}  // namespace tyder::net
