// Chaos client harness for tyderd (net/server.h).
//
// A campaign points N client threads at a running server (in-process for the
// gtest suite, out-of-process for the standalone tyder_chaos driver) and has
// them define and drop uniquely-named views while a saboteur thread arms
// net.* and storage.env.* fault points over the admin channel. Every
// operation's outcome is recorded in a three-state ledger:
//
//   acked          the server answered OK — the mutation MUST survive
//   nacked         the server answered ERR / RETRY_AFTER / DEADLINE_EXCEEDED
//                  / DEGRADED before execution — the mutation MUST NOT exist
//   indeterminate  the connection died after the request was written but
//                  before a response arrived (net.write.response,
//                  net.conn.drop_mid_request, a mid-campaign disconnect), or
//                  a mutation failed while a durability fault was armed (a
//                  poisoned group-commit batch leaves its bytes in the WAL,
//                  so recovery may legitimately replay it) — either outcome
//                  is acceptable
//
// Verification then asserts, against the served catalog (VerifyOverWire) or
// a freshly recovered one (VerifyAgainstCatalog), that the final view set is
// exactly a serial application of the acked mutations, modulo the
// indeterminate ones — the over-the-wire twin of the PR 5 differential
// oracle, which it also invokes (`verify`) for schema-level consistency.

#ifndef TYDER_TESTS_NET_CHAOS_H_
#define TYDER_TESTS_NET_CHAOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"

namespace tyder::net {

struct ChaosOptions {
  uint16_t port = 0;
  int clients = 4;
  int ops_per_client = 500;     // hard cap; duration_ms usually stops first
  uint64_t duration_ms = 5'000;
  uint64_t deadline_ms = 2'000;  // per-request budget (0 = unbounded)
  unsigned seed = 1;
  // net.* points the saboteur arms round-robin (count 1 each) every tick.
  std::vector<std::string> fault_points;
  // Additionally cycle storage.env.sync faults: drive the store degraded,
  // observe DEGRADED refusals, admin-reopen it, repeat.
  bool storage_faults = false;
  // What the workers project from (must exist in the served schema).
  std::string source_type = "Person";
  std::string attributes = "SSN";
  // Name prefix, so concurrent campaigns in one process stay disjoint.
  std::string name_prefix = "Chaos";
};

// Expected durable state of one chaos-created view name.
enum class Expect : char {
  kPresent,  // acked create (not later acked-dropped)
  kAbsent,   // definitively nacked create, or acked drop
  kUnknown,  // some step of its history was indeterminate
};

struct ChaosReport {
  uint64_t attempted = 0;
  uint64_t acked = 0;
  uint64_t nacked = 0;
  uint64_t indeterminate = 0;
  uint64_t shed = 0;                // RETRY_AFTER answers observed
  uint64_t deadline_exceeded = 0;   // DEADLINE_EXCEEDED answers observed
  uint64_t degraded_refusals = 0;   // DEGRADED answers observed
  uint64_t reconnects = 0;
  uint64_t degrade_cycles = 0;      // degraded -> reopen round trips
  std::map<std::string, Expect> ledger;
};

// Runs the campaign against an already-serving tyderd with --admin. On
// return all armed fault points are disarmed and the store has been
// reopened out of any degraded state (campaigns that cannot settle fail).
Result<ChaosReport> RunChaosCampaign(const ChaosOptions& options);

// Asserts the served catalog matches the ledger: health ok, the PR 5 oracle
// (`verify`) is clean, every kPresent name is served, every kAbsent name is
// not. kUnknown names may be either.
Status VerifyOverWire(uint16_t port, const ChaosReport& report);

// Same ledger check against a Catalog recovered locally after the server
// shut down — proves acks were DURABLE, not just visible.
Status VerifyAgainstCatalog(const Catalog& catalog, const ChaosReport& report);

}  // namespace tyder::net

#endif  // TYDER_TESTS_NET_CHAOS_H_
