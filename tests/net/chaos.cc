#include "net/chaos.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <random>
#include <set>
#include <thread>

#include "net/client.h"

namespace tyder::net {

namespace {

using Clock = std::chrono::steady_clock;

enum class Outcome { kAcked, kNacked, kIndeterminate };

// Per-worker slice of the campaign, merged after the threads join (names
// carry the worker index, so the ledgers are disjoint by construction).
struct WorkerState {
  ChaosReport report;
  std::vector<std::string> present;  // names this worker believes durable
};

// Connects (or reconnects after a transport failure) with patience: under
// an armed net.accept fault or a full connection table the first attempts
// may legitimately die.
bool EnsureConnected(std::optional<Client>& client, uint16_t port,
                     uint64_t* reconnects) {
  if (client.has_value() && client->connected()) return true;
  bool is_reconnect = client.has_value();
  for (int attempt = 0; attempt < 100; ++attempt) {
    Result<Client> fresh = Client::Connect(port, 1'000);
    if (fresh.ok()) {
      client.emplace(std::move(*fresh));
      if (is_reconnect && reconnects != nullptr) ++*reconnects;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

// The heart of the ledger: what does this answer PROVE about durable state?
Outcome Classify(const Result<Response>& answer, bool storage_faults,
                 ChaosReport* report) {
  if (!answer.ok()) return Outcome::kIndeterminate;  // died mid-request
  switch (answer->kind) {
    case ResponseKind::kOk:
      return Outcome::kAcked;
    case ResponseKind::kRetryAfter:
      ++report->shed;
      return Outcome::kNacked;  // shed at admission: catalog untouched
    case ResponseKind::kDeadlineExceeded:
      ++report->deadline_exceeded;
      return Outcome::kNacked;  // expired at dequeue: catalog untouched
    case ResponseKind::kDegraded:
      ++report->degraded_refusals;
      return Outcome::kNacked;  // refused by the read-only gate
    case ResponseKind::kErr: {
      std::string_view message = answer->message();
      // These wordings are the storage layer's DEFINITIVE refusals (see
      // tests/storage/degraded_mode_test.cc's seam test).
      if (message.find("degraded") != std::string_view::npos ||
          message.find("stalled") != std::string_view::npos ||
          message.find("never written") != std::string_view::npos)
        return Outcome::kNacked;
      // Any other mutation error while a durability fault may be armed is
      // a poisoned-batch candidate: its bytes may sit in the WAL and be
      // replayed by the next recovery.
      return storage_faults ? Outcome::kIndeterminate : Outcome::kNacked;
    }
  }
  return Outcome::kIndeterminate;  // unreachable
}

void WorkerThread(const ChaosOptions& options, int index, Clock::time_point end,
                  WorkerState* state) {
  std::mt19937 rng(options.seed * 1000003u + static_cast<unsigned>(index));
  std::optional<Client> client;
  ChaosReport& report = state->report;

  for (int j = 0; j < options.ops_per_client && Clock::now() < end; ++j) {
    if (!EnsureConnected(client, options.port, &report.reconnects)) return;
    unsigned roll = rng() % 10;

    if (roll < 2) {
      // Read traffic: must keep answering even degraded; no ledger entry.
      ++report.attempted;
      auto answer = client->Call(roll == 0 ? "ping" : "query",
                                 roll == 0 ? std::vector<std::string>{}
                                           : std::vector<std::string>{"views"},
                                 options.deadline_ms);
      switch (Classify(answer, options.storage_faults, &report)) {
        case Outcome::kAcked: ++report.acked; break;
        case Outcome::kNacked: ++report.nacked; break;
        case Outcome::kIndeterminate: ++report.indeterminate; break;
      }
      continue;
    }

    if (roll < 8 || state->present.empty()) {
      // Create a uniquely-named view.
      std::string name = options.name_prefix + "_" + std::to_string(index) +
                         "_" + std::to_string(j);
      ++report.attempted;
      auto answer =
          client->Call("project", {name, options.source_type,
                                   options.attributes},
                       options.deadline_ms);
      switch (Classify(answer, options.storage_faults, &report)) {
        case Outcome::kAcked:
          ++report.acked;
          report.ledger[name] = Expect::kPresent;
          state->present.push_back(name);
          break;
        case Outcome::kNacked:
          ++report.nacked;
          report.ledger[name] = Expect::kAbsent;
          break;
        case Outcome::kIndeterminate:
          ++report.indeterminate;
          report.ledger[name] = Expect::kUnknown;
          break;
      }
      continue;
    }

    // Drop one of our own acked views.
    size_t pick = rng() % state->present.size();
    std::string name = state->present[pick];
    ++report.attempted;
    auto answer = client->Call("drop", {name}, options.deadline_ms);
    switch (Classify(answer, options.storage_faults, &report)) {
      case Outcome::kAcked:
        ++report.acked;
        report.ledger[name] = Expect::kAbsent;
        state->present.erase(state->present.begin() +
                             static_cast<long>(pick));
        break;
      case Outcome::kNacked:
        ++report.nacked;  // still present; may retry the drop later
        break;
      case Outcome::kIndeterminate:
        ++report.indeterminate;
        report.ledger[name] = Expect::kUnknown;
        state->present.erase(state->present.begin() +
                             static_cast<long>(pick));
        break;
    }
  }
}

// Arms faults and heals degradation over the admin channel while the
// workers run.
void SaboteurThread(const ChaosOptions& options, const std::atomic<bool>* done,
                    ChaosReport* report) {
  std::optional<Client> admin;
  size_t tick = 0;
  while (!done->load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ++tick;
    // An armed net fault is as happy to eat the saboteur's own responses as
    // a worker's — arming net.write.response routinely tears THIS connection
    // the moment the ack is written (the arm itself still executed). So:
    // probe health before arming anything, and re-establish the connection
    // before every single admin action rather than once per tick.
    if (!EnsureConnected(admin, options.port, nullptr)) continue;
    auto health = admin->Call("health", {}, 1'000);
    if (health.ok() && health->ok() && !health->body.empty() &&
        health->body[0] == "status degraded") {
      auto reopened = admin->Call("reopen", {}, 5'000);
      if (reopened.ok() && reopened->ok()) ++report->degrade_cycles;
    }
    if (!options.fault_points.empty()) {
      if (!EnsureConnected(admin, options.port, nullptr)) continue;
      const std::string& point =
          options.fault_points[tick % options.fault_points.size()];
      (void)admin->Call("fault", {point, "1"}, 1'000);
    }
    if (options.storage_faults && tick % 4 == 0) {
      if (!EnsureConnected(admin, options.port, nullptr)) continue;
      (void)admin->Call("fault", {"storage.env.sync", "1"}, 1'000);
    }
  }
}

// Post-campaign settle: disarm everything, heal any residual degradation.
// Retries absorb a still-armed fault eating one of our own round trips.
Status Settle(const ChaosOptions& options) {
  std::optional<Client> admin;
  std::vector<std::string> points = options.fault_points;
  if (options.storage_faults) points.push_back("storage.env.sync");

  for (const std::string& point : points) {
    bool disarmed = false;
    for (int attempt = 0; attempt < 50 && !disarmed; ++attempt) {
      if (!EnsureConnected(admin, options.port, nullptr))
        return Status::Internal("chaos settle: cannot reconnect to server");
      auto answer = admin->Call("fault", {point, "0"}, 1'000);
      disarmed = answer.ok() && answer->ok();
    }
    if (!disarmed)
      return Status::Internal("chaos settle: cannot disarm '" + point + "'");
  }

  for (int attempt = 0; attempt < 100; ++attempt) {
    if (!EnsureConnected(admin, options.port, nullptr))
      return Status::Internal("chaos settle: cannot reconnect to server");
    auto health = admin->Call("health", {}, 1'000);
    if (health.ok() && health->ok() && !health->body.empty()) {
      if (health->body[0] == "status ok") return Status::OK();
      (void)admin->Call("reopen", {}, 5'000);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return Status::Internal("chaos settle: store stuck degraded after reopens");
}

}  // namespace

Result<ChaosReport> RunChaosCampaign(const ChaosOptions& options) {
  if (options.port == 0)
    return Status::InvalidArgument("chaos: a server port is required");
  if (options.clients < 1)
    return Status::InvalidArgument("chaos: need at least one client");

  Clock::time_point end =
      Clock::now() + std::chrono::milliseconds(options.duration_ms);
  std::vector<WorkerState> states(static_cast<size_t>(options.clients));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.clients));
  for (int i = 0; i < options.clients; ++i) {
    workers.emplace_back(WorkerThread, std::cref(options), i, end,
                         &states[static_cast<size_t>(i)]);
  }

  std::atomic<bool> done{false};
  ChaosReport saboteur_report;
  std::thread saboteur(SaboteurThread, std::cref(options), &done,
                       &saboteur_report);

  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  saboteur.join();

  TYDER_RETURN_IF_ERROR(Settle(options));

  ChaosReport merged = std::move(saboteur_report);
  for (WorkerState& state : states) {
    ChaosReport& r = state.report;
    merged.attempted += r.attempted;
    merged.acked += r.acked;
    merged.nacked += r.nacked;
    merged.indeterminate += r.indeterminate;
    merged.shed += r.shed;
    merged.deadline_exceeded += r.deadline_exceeded;
    merged.degraded_refusals += r.degraded_refusals;
    merged.reconnects += r.reconnects;
    merged.ledger.insert(r.ledger.begin(), r.ledger.end());
  }
  return merged;
}

namespace {

// Right after a campaign the door can still be busy — seats drain only as
// the reaper notices closed peers, and queued requests from dead clients
// take a moment to flush. A verifier is a well-behaved client: it honors
// RETRY_AFTER (and transient transport losses) with bounded patience.
Result<Response> CallWithRetry(std::optional<Client>& client, uint16_t port,
                               const std::string& command,
                               const std::vector<std::string>& args,
                               uint64_t deadline_ms) {
  Result<Response> answer = Status::Internal("chaos verify: never attempted");
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (!EnsureConnected(client, port, nullptr))
      return Status::Internal("chaos verify: cannot connect to server");
    answer = client->Call(command, args, deadline_ms);
    if (answer.ok() && answer->kind == ResponseKind::kRetryAfter) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<uint64_t>(
              answer->retry_after_ms, 10)));
      continue;
    }
    if (answer.ok()) return answer;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return answer;
}

}  // namespace

Status VerifyOverWire(uint16_t port, const ChaosReport& report) {
  std::optional<Client> client;

  auto health = CallWithRetry(client, port, "health", {}, 2'000);
  if (!health.ok()) return health.status();
  if (!health->ok() || health->body.empty() || health->body[0] != "status ok")
    return Status::Internal("chaos verify: server is not healthy: " +
                            std::string(health->message()));

  auto oracle = CallWithRetry(client, port, "verify", {}, 10'000);
  if (!oracle.ok()) return oracle.status();
  if (!oracle->ok())
    return Status::Internal("chaos verify: differential oracle rejected the "
                            "served schema: " +
                            std::string(oracle->message()));

  auto views = CallWithRetry(client, port, "query", {"views"}, 5'000);
  if (!views.ok()) return views.status();
  if (!views->ok())
    return Status::Internal("chaos verify: query views failed: " +
                            std::string(views->message()));
  std::set<std::string> served(views->body.begin(), views->body.end());

  for (const auto& [name, expect] : report.ledger) {
    bool present = served.count(name) > 0;
    if (expect == Expect::kPresent && !present)
      return Status::Internal("chaos verify: acked view '" + name +
                              "' is missing from the served catalog");
    if (expect == Expect::kAbsent && present)
      return Status::Internal("chaos verify: nacked view '" + name +
                              "' is present in the served catalog");
  }
  return Status::OK();
}

Status VerifyAgainstCatalog(const Catalog& catalog,
                            const ChaosReport& report) {
  for (const auto& [name, expect] : report.ledger) {
    bool present = catalog.FindView(name).ok();
    if (expect == Expect::kPresent && !present)
      return Status::Internal("chaos verify: acked view '" + name +
                              "' did not survive recovery");
    if (expect == Expect::kAbsent && present)
      return Status::Internal("chaos verify: nacked view '" + name +
                              "' reappeared after recovery");
  }
  return Status::OK();
}

}  // namespace tyder::net
