// tyder_chaos: standalone chaos driver for an out-of-process tyderd.
//
//   tyder_chaos --port <n> [--clients <n>] [--duration-ms <n>] [--ops <n>]
//               [--deadline-ms <n>] [--seed <n>] [--net-faults]
//               [--storage-faults] [--prefix <Name>] [--source <Type>]
//               [--attrs <a,b,c>]
//
// Runs a time-boxed campaign (tests/net/chaos.h) against a tyderd started
// with --admin, then verifies the acked/nacked ledger and the differential
// oracle over the wire. scripts/run_all.sh serve drives this.
//
// Exit codes: 0 campaign ran and the ledger verified; 1 campaign or
// verification failure; 2 usage error.

#include <cstdlib>
#include <iostream>
#include <string>

#include "net/chaos.h"

namespace tyder::net {
namespace {

int Usage() {
  std::cerr << "usage: tyder_chaos --port <n> [--clients <n>] "
               "[--duration-ms <n>] [--ops <n>]\n"
               "                   [--deadline-ms <n>] [--seed <n>] "
               "[--net-faults] [--storage-faults]\n"
               "                   [--prefix <Name>] [--source <Type>] "
               "[--attrs <a,b,c>]\n";
  return 2;
}

int Run(int argc, char** argv) {
  ChaosOptions options;
  int port = 0;

  auto int_flag = [&](int& i, int* out) {
    if (i + 1 >= argc) return false;
    *out = std::atoi(argv[++i]);
    return *out >= 0;
  };
  auto string_flag = [&](int& i, std::string* out) {
    if (i + 1 >= argc) return false;
    *out = argv[++i];
    return !out->empty();
  };

  int clients = options.clients, ops = options.ops_per_client;
  int duration = static_cast<int>(options.duration_ms);
  int deadline = static_cast<int>(options.deadline_ms);
  int seed = static_cast<int>(options.seed);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port") {
      if (!int_flag(i, &port) || port < 1 || port > 65535) return Usage();
    } else if (arg == "--clients") {
      if (!int_flag(i, &clients) || clients < 1) return Usage();
    } else if (arg == "--duration-ms") {
      if (!int_flag(i, &duration) || duration < 1) return Usage();
    } else if (arg == "--ops") {
      if (!int_flag(i, &ops) || ops < 1) return Usage();
    } else if (arg == "--deadline-ms") {
      if (!int_flag(i, &deadline)) return Usage();
    } else if (arg == "--seed") {
      if (!int_flag(i, &seed)) return Usage();
    } else if (arg == "--net-faults") {
      options.fault_points = {"net.accept", "net.conn.drop_mid_request",
                              "net.read.eintr", "net.read.short",
                              "net.write.response"};
    } else if (arg == "--storage-faults") {
      options.storage_faults = true;
    } else if (arg == "--prefix") {
      if (!string_flag(i, &options.name_prefix)) return Usage();
    } else if (arg == "--source") {
      if (!string_flag(i, &options.source_type)) return Usage();
    } else if (arg == "--attrs") {
      if (!string_flag(i, &options.attributes)) return Usage();
    } else {
      return Usage();
    }
  }
  if (port == 0) return Usage();
  options.port = static_cast<uint16_t>(port);
  options.clients = clients;
  options.ops_per_client = ops;
  options.duration_ms = static_cast<uint64_t>(duration);
  options.deadline_ms = static_cast<uint64_t>(deadline);
  options.seed = static_cast<unsigned>(seed);

  std::cerr << "tyder_chaos: " << options.clients << " clients x "
            << options.duration_ms << "ms against 127.0.0.1:" << port
            << (options.fault_points.empty() ? "" : ", net faults")
            << (options.storage_faults ? ", storage faults" : "") << "\n";

  Result<ChaosReport> report = RunChaosCampaign(options);
  if (!report.ok()) {
    std::cerr << "tyder_chaos: campaign failed: " << report.status() << "\n";
    return 1;
  }
  std::cerr << "tyder_chaos: attempted " << report->attempted << " (acked "
            << report->acked << ", nacked " << report->nacked
            << ", indeterminate " << report->indeterminate << "), shed "
            << report->shed << ", deadline_exceeded "
            << report->deadline_exceeded << ", degraded_refusals "
            << report->degraded_refusals << ", reconnects "
            << report->reconnects << ", degrade_cycles "
            << report->degrade_cycles << ", ledger "
            << report->ledger.size() << " names\n";

  Status verified = VerifyOverWire(options.port, *report);
  if (!verified.ok()) {
    std::cerr << "tyder_chaos: VERIFICATION FAILED: " << verified << "\n";
    return 1;
  }
  std::cerr << "tyder_chaos: ledger and oracle verified clean\n";
  return 0;
}

}  // namespace
}  // namespace tyder::net

int main(int argc, char** argv) { return tyder::net::Run(argc, argv); }
