// In-process chaos campaigns against a live tyderd serving core: concurrent
// clients define/drop views while the saboteur arms network and durability
// faults, then the ledger is verified over the wire AND against a freshly
// recovered catalog (acks must be durable, not merely visible).

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>

#include "common/failpoint.h"
#include "net/chaos.h"
#include "net/server.h"
#include "storage/durable_catalog.h"
#include "testing/fixtures.h"

namespace tyder::net {
namespace {

namespace fs = std::filesystem;

class ChaosTest : public ::testing::Test {
 protected:
  void Boot(const std::string& name) {
    dir_ = (fs::temp_directory_path() / ("tyder_chaos_test_" + name)).string();
    fs::remove_all(dir_);
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    auto opened = storage::DurableCatalog::Open(dir_);
    ASSERT_TRUE(opened.ok()) << opened.status();
    db_.emplace(std::move(*opened));
    ASSERT_TRUE(db_->Seed(Catalog(std::move(fx->schema))).ok());
    ServerOptions options;
    options.admin = true;
    auto server = Server::Start(&*db_, options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  // Stops the server, drops the live catalog, and re-runs recovery from
  // disk — what a restart of tyderd would see.
  Result<storage::DurableCatalog> Restart() {
    server_->Stop();
    server_.reset();
    db_.reset();
    return storage::DurableCatalog::Open(dir_);
  }

  void TearDown() override {
    failpoint::DeactivateAll();
    if (server_ != nullptr) server_->Stop();
  }

  std::string dir_;
  std::optional<storage::DurableCatalog> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ChaosTest, NetworkFaultCampaignKeepsTheLedgerExact) {
  Boot("net");
  ChaosOptions options;
  options.port = server_->port();
  options.clients = 4;
  options.duration_ms = 2'500;
  options.deadline_ms = 2'000;
  options.seed = 7;
  options.fault_points = {"net.accept", "net.conn.drop_mid_request",
                          "net.read.eintr", "net.read.short",
                          "net.write.response"};
  options.name_prefix = "NetC";

  auto report = RunChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->attempted, 0u);
  EXPECT_GT(report->acked, 0u);
  ASSERT_TRUE(VerifyOverWire(server_->port(), *report).ok());

  auto recovered = Restart();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  Status durable = VerifyAgainstCatalog(recovered->catalog(), *report);
  EXPECT_TRUE(durable.ok()) << durable;
}

TEST_F(ChaosTest, DurabilityFaultCampaignDegradesHealsAndStaysExact) {
  Boot("storage");
  ChaosOptions options;
  options.port = server_->port();
  options.clients = 4;
  options.duration_ms = 3'000;
  options.deadline_ms = 2'000;
  options.seed = 11;
  options.storage_faults = true;
  options.fault_points = {"net.write.response"};  // compound the two layers
  options.name_prefix = "StC";

  auto report = RunChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->acked, 0u);
  // The store really went down into degraded mode and was healed (possibly
  // several times) while traffic flowed.
  EXPECT_GE(report->degrade_cycles, 1u);
  ASSERT_TRUE(VerifyOverWire(server_->port(), *report).ok());

  auto recovered = Restart();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  Status durable = VerifyAgainstCatalog(recovered->catalog(), *report);
  EXPECT_TRUE(durable.ok()) << durable;
}

TEST_F(ChaosTest, OverloadCampaignShedsInsteadOfStalling) {
  Boot("overload");
  // A deliberately tiny server: one worker, a 2-deep queue, few seats.
  server_->Stop();
  server_.reset();
  ServerOptions small;
  small.admin = true;
  small.workers = 1;
  small.queue_capacity = 2;
  small.max_connections = 3;
  auto server = Server::Start(&*db_, small);
  ASSERT_TRUE(server.ok()) << server.status();
  server_ = std::move(*server);

  ChaosOptions options;
  options.port = server_->port();
  options.clients = 6;  // twice the seats
  options.duration_ms = 2'000;
  options.deadline_ms = 1'000;
  options.seed = 13;
  options.name_prefix = "OvC";

  auto report = RunChaosCampaign(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->acked, 0u);
  // Overload surfaced as answers, not hangs: at least some requests were
  // shed with RETRY_AFTER at the door or the queue.
  EXPECT_GT(report->shed, 0u);
  ASSERT_TRUE(VerifyOverWire(server_->port(), *report).ok());
}

}  // namespace
}  // namespace tyder::net
