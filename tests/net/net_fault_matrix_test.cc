// The net.* fault matrix: every network fault point, with and without
// concurrent load. The invariants, from ISSUE/docs/ROBUSTNESS.md:
//   * the server never crashes — it keeps serving new connections;
//   * a mutation acked OK is durable;
//   * a mutation that never started executing is absent;
//   * a response-write failure after commit leaves the mutation durable
//     (the one acked-but-unobserved window);
//   * after the fault the catalog still passes the differential oracle.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>

#include "common/failpoint.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/durable_catalog.h"
#include "testing/fixtures.h"

namespace tyder::net {
namespace {

namespace fs = std::filesystem;

constexpr const char* kNetPoints[] = {
    "net.accept",       "net.conn.drop_mid_request", "net.read.eintr",
    "net.read.short",   "net.write.response",
};

class NetFaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string dir = (fs::temp_directory_path() /
                       ("tyder_net_fault_" + std::string(
                            ::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name())))
                          .string();
    fs::remove_all(dir);
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    auto opened = storage::DurableCatalog::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    db_.emplace(std::move(*opened));
    ASSERT_TRUE(db_->Seed(Catalog(std::move(fx->schema))).ok());
    ServerOptions options;
    options.admin = true;
    auto server = Server::Start(&*db_, options);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);
  }

  void TearDown() override {
    failpoint::DeactivateAll();
    if (server_ != nullptr) server_->Stop();
  }

  Client MustConnect() {
    auto client = Client::Connect(server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(*client);
  }

  // The server must still answer a fresh connection — "never crashes".
  void ExpectServerAlive() {
    Client probe = MustConnect();
    auto pong = probe.Call("ping");
    ASSERT_TRUE(pong.ok()) << pong.status();
    EXPECT_TRUE(pong->ok());
    auto oracle = probe.Call("verify");
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    EXPECT_TRUE(oracle->ok()) << oracle->message();
  }

  bool ViewServed(const std::string& name) {
    Client probe = MustConnect();
    auto views = probe.Call("query", {"views"});
    EXPECT_TRUE(views.ok() && views->ok());
    for (const std::string& view : views->body)
      if (view == name) return true;
    return false;
  }

  std::optional<storage::DurableCatalog> db_;
  std::unique_ptr<Server> server_;
};

// --- without load: one client, one targeted fault, exact assertions -------

TEST_F(NetFaultMatrixTest, AcceptFaultDropsTheSocketNotTheServer) {
  failpoint::Activate("net.accept", 1);
  auto doomed = Client::Connect(server_->port());
  ASSERT_TRUE(doomed.ok()) << doomed.status();  // TCP accepts via backlog
  auto answer = doomed->Call("ping");
  EXPECT_FALSE(answer.ok());  // the accepted socket died unserviced
  ExpectServerAlive();
}

TEST_F(NetFaultMatrixTest, ShortReadTearsOneConnectionOnly) {
  Client victim = MustConnect();
  failpoint::Activate("net.read.short", 1);
  auto answer = victim.Call("ping");
  EXPECT_FALSE(answer.ok());
  EXPECT_TRUE(victim.SentWithoutAnswer());
  ExpectServerAlive();
}

TEST_F(NetFaultMatrixTest, EintrIsAbsorbedTransparently) {
  Client client = MustConnect();
  failpoint::Activate("net.read.eintr", 1);
  auto answer = client.Call("ping");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->ok());
}

TEST_F(NetFaultMatrixTest, DropMidRequestNeverExecutesTheMutation) {
  Client victim = MustConnect();
  failpoint::Activate("net.conn.drop_mid_request", 1);
  auto answer = victim.Call("project", {"NeverRan", "Person", "SSN"});
  EXPECT_FALSE(answer.ok());  // connection died, no response
  // The request was read but dropped BEFORE execution: definitively absent.
  EXPECT_FALSE(ViewServed("NeverRan"));
  ExpectServerAlive();
}

TEST_F(NetFaultMatrixTest, ResponseWriteFaultLeavesTheCommitDurable) {
  Client victim = MustConnect();
  failpoint::Activate("net.write.response", 1);
  auto answer = victim.Call("project", {"AckedUnheard", "Person", "SSN"});
  EXPECT_FALSE(answer.ok());             // the ack never crossed the wire...
  EXPECT_TRUE(victim.SentWithoutAnswer());
  EXPECT_TRUE(ViewServed("AckedUnheard"));  // ...but the commit is real
  EXPECT_GE(server_->stats().response_write_failures, 1u);
  ExpectServerAlive();
}

// --- with load: each point armed repeatedly under a concurrent campaign ---

TEST_F(NetFaultMatrixTest, EveryPointHoldsTheLedgerUnderLoad) {
  for (const char* point : kNetPoints) {
    ChaosOptions options;
    options.port = server_->port();
    options.clients = 3;
    options.duration_ms = 1'000;
    options.deadline_ms = 2'000;
    options.fault_points = {point};
    options.name_prefix = std::string("Mx_") + (point + 4);  // skip "net."
    for (char& c : options.name_prefix)
      if (c == '.') c = '_';
    auto report = RunChaosCampaign(options);
    ASSERT_TRUE(report.ok()) << point << ": " << report.status();
    EXPECT_GT(report->attempted, 0u) << point;
    Status verified = VerifyOverWire(server_->port(), *report);
    EXPECT_TRUE(verified.ok()) << point << ": " << verified;
  }
}

}  // namespace
}  // namespace tyder::net
