// Forwarder: the seeded random-schema generator moved to
// src/workload/random_schema.h so the macro-workload harness (src/workload,
// linked into libtyder) can drive it without depending on test code. Test
// sources keep their historical tyder::testing spelling via these aliases.

#ifndef TYDER_TESTS_TESTING_RANDOM_SCHEMA_H_
#define TYDER_TESTS_TESTING_RANDOM_SCHEMA_H_

#include "workload/random_schema.h"

namespace tyder::testing {

using workload::GenerateRandomSchema;
using workload::PickRandomProjection;
using workload::RandomSchemaOptions;

}  // namespace tyder::testing

#endif  // TYDER_TESTS_TESTING_RANDOM_SCHEMA_H_
