#include "testing/fixtures.h"

#include "methods/accessor_gen.h"
#include "mir/builder.h"
#include "mir/type_check.h"

namespace tyder::testing {

namespace {

// Registers a general Void-returning method.
Result<MethodId> AddGeneral(Schema& schema, std::string_view label,
                            std::string_view gf_name,
                            std::vector<TypeId> params,
                            std::vector<std::string> param_names,
                            ExprPtr body, TypeId result = kInvalidType) {
  TYDER_ASSIGN_OR_RETURN(
      GfId gf, schema.FindOrDeclareGenericFunction(
                   gf_name, static_cast<int>(params.size())));
  Method m;
  m.label = Symbol::Intern(label);
  m.gf = gf;
  m.kind = MethodKind::kGeneral;
  m.sig.params = std::move(params);
  m.sig.result = result == kInvalidType ? schema.builtins().void_type : result;
  for (const std::string& name : param_names) {
    m.param_names.push_back(Symbol::Intern(name));
  }
  m.body = std::move(body);
  return schema.AddMethod(std::move(m));
}

Result<GfId> GfOf(const Schema& schema, std::string_view name) {
  return schema.FindGenericFunction(name);
}

}  // namespace

Result<PersonEmployeeFixture> BuildPersonEmployee() {
  PersonEmployeeFixture fx;
  TYDER_ASSIGN_OR_RETURN(fx.schema, Schema::Create());
  Schema& s = fx.schema;
  const BuiltinTypes& b = s.builtins();

  TYDER_ASSIGN_OR_RETURN(fx.person, s.types().DeclareType("Person", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.employee, s.types().DeclareType("Employee", TypeKind::kUser));
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.employee, fx.person));

  TYDER_ASSIGN_OR_RETURN(fx.ssn, s.types().DeclareAttribute(fx.person, "SSN", b.string_type));
  TYDER_ASSIGN_OR_RETURN(fx.name, s.types().DeclareAttribute(fx.person, "name", b.string_type));
  TYDER_ASSIGN_OR_RETURN(fx.date_of_birth, s.types().DeclareAttribute(fx.person, "date_of_birth", b.date_type));
  TYDER_ASSIGN_OR_RETURN(fx.pay_rate, s.types().DeclareAttribute(fx.employee, "pay_rate", b.float_type));
  TYDER_ASSIGN_OR_RETURN(fx.hrs_worked, s.types().DeclareAttribute(fx.employee, "hrs_worked", b.float_type));

  TYDER_RETURN_IF_ERROR(GenerateAllAccessors(s));

  TYDER_ASSIGN_OR_RETURN(GfId get_dob, GfOf(s, "get_date_of_birth"));
  TYDER_ASSIGN_OR_RETURN(GfId get_pay, GfOf(s, "get_pay_rate"));
  TYDER_ASSIGN_OR_RETURN(GfId get_hrs, GfOf(s, "get_hrs_worked"));

  // age(p: Person) = { return 2026 - get_date_of_birth(p); }
  TYDER_ASSIGN_OR_RETURN(
      fx.age,
      AddGeneral(s, "age", "age", {fx.person}, {"p"},
                 mir::Seq({mir::Return(mir::BinOp(
                     BinOpKind::kSub, mir::IntLit(2026),
                     mir::Call(get_dob, {mir::Param(0)})))}),
                 b.int_type));

  // income(e: Employee) = { return get_pay_rate(e) * get_hrs_worked(e); }
  TYDER_ASSIGN_OR_RETURN(
      fx.income,
      AddGeneral(s, "income", "income", {fx.employee}, {"e"},
                 mir::Seq({mir::Return(mir::BinOp(
                     BinOpKind::kMul, mir::Call(get_pay, {mir::Param(0)}),
                     mir::Call(get_hrs, {mir::Param(0)})))}),
                 b.float_type));

  // promote(e: Employee) uses date_of_birth and pay_rate.
  TYDER_ASSIGN_OR_RETURN(
      fx.promote,
      AddGeneral(
          s, "promote", "promote", {fx.employee}, {"e"},
          mir::Seq({mir::Return(mir::BinOp(
              BinOpKind::kAnd,
              mir::BinOp(BinOpKind::kLt,
                         mir::BinOp(BinOpKind::kSub, mir::IntLit(2026),
                                    mir::Call(get_dob, {mir::Param(0)})),
                         mir::IntLit(65)),
              mir::BinOp(BinOpKind::kLt, mir::Call(get_pay, {mir::Param(0)}),
                         mir::FloatLit(100.0))))}),
          b.bool_type));

  TYDER_RETURN_IF_ERROR(s.Validate());
  TYDER_RETURN_IF_ERROR(TypeCheckSchema(s));
  return fx;
}

Result<Example1Fixture> BuildExample1(bool with_z_methods) {
  Example1Fixture fx;
  TYDER_ASSIGN_OR_RETURN(fx.schema, Schema::Create());
  Schema& s = fx.schema;
  TypeId int_t = s.builtins().int_type;

  // Figure 3 hierarchy. Supertype lists are in precedence order.
  TYDER_ASSIGN_OR_RETURN(fx.h, s.types().DeclareType("H", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.g, s.types().DeclareType("G", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.d, s.types().DeclareType("D", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.e, s.types().DeclareType("E", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.f, s.types().DeclareType("F", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.c, s.types().DeclareType("C", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.b, s.types().DeclareType("B", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(fx.a, s.types().DeclareType("A", TypeKind::kUser));
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.e, fx.g));  // E: G(1), H(2)
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.e, fx.h));
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.f, fx.h));  // F: H(1)
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.c, fx.f));  // C: F(1), E(2)
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.c, fx.e));
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.b, fx.d));  // B: D(1), E(2)
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.b, fx.e));
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.a, fx.c));  // A: C(1), B(2)
  TYDER_RETURN_IF_ERROR(s.types().AddSupertype(fx.a, fx.b));

  TYDER_ASSIGN_OR_RETURN(fx.h1, s.types().DeclareAttribute(fx.h, "h1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.h2, s.types().DeclareAttribute(fx.h, "h2", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.g1, s.types().DeclareAttribute(fx.g, "g1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.d1, s.types().DeclareAttribute(fx.d, "d1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.e1, s.types().DeclareAttribute(fx.e, "e1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.e2, s.types().DeclareAttribute(fx.e, "e2", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.f1, s.types().DeclareAttribute(fx.f, "f1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.c1, s.types().DeclareAttribute(fx.c, "c1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.b1, s.types().DeclareAttribute(fx.b, "b1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.a1, s.types().DeclareAttribute(fx.a, "a1", int_t));
  TYDER_ASSIGN_OR_RETURN(fx.a2, s.types().DeclareAttribute(fx.a, "a2", int_t));

  // The paper's four accessors, with the formals it gives them.
  TYDER_ASSIGN_OR_RETURN(fx.get_a1, GenerateReader(s, fx.a1, fx.a));
  TYDER_ASSIGN_OR_RETURN(fx.get_b1, GenerateReader(s, fx.b1, fx.b));
  TYDER_ASSIGN_OR_RETURN(fx.get_h2, GenerateReader(s, fx.h2, fx.b));
  TYDER_ASSIGN_OR_RETURN(fx.get_g1, GenerateReader(s, fx.g1, fx.c));

  GfId get_a1_gf = s.method(fx.get_a1).gf;
  GfId get_b1_gf = s.method(fx.get_b1).gf;
  GfId get_h2_gf = s.method(fx.get_h2).gf;
  GfId get_g1_gf = s.method(fx.get_g1).gf;

  // Declare all generic functions up front so bodies can call forward.
  TYDER_ASSIGN_OR_RETURN(GfId u, s.DeclareGenericFunction("u", 1));
  TYDER_ASSIGN_OR_RETURN(GfId v, s.DeclareGenericFunction("v", 2));
  TYDER_ASSIGN_OR_RETURN(GfId w, s.DeclareGenericFunction("w", 1));
  TYDER_ASSIGN_OR_RETURN(GfId x, s.DeclareGenericFunction("x", 2));
  TYDER_ASSIGN_OR_RETURN(GfId y, s.DeclareGenericFunction("y", 2));

  auto stmt_call = [](GfId gf, std::vector<ExprPtr> args) {
    return mir::ExprStmt(mir::Call(gf, std::move(args)));
  };

  // u1(A) = {get_a1(A)}
  TYDER_ASSIGN_OR_RETURN(
      fx.u1, AddGeneral(s, "u1", "u", {fx.a}, {"arg"},
                        mir::Seq({stmt_call(get_a1_gf, {mir::Param(0)})})));
  // u2(A) = {get_g1(A)}  (A ≼ C, so get_g1's C formal admits it)
  TYDER_ASSIGN_OR_RETURN(
      fx.u2, AddGeneral(s, "u2", "u", {fx.a}, {"arg"},
                        mir::Seq({stmt_call(get_g1_gf, {mir::Param(0)})})));
  // u3(B) = {get_h2(B)}
  TYDER_ASSIGN_OR_RETURN(
      fx.u3, AddGeneral(s, "u3", "u", {fx.b}, {"arg"},
                        mir::Seq({stmt_call(get_h2_gf, {mir::Param(0)})})));
  // v1(A, C) = {u(A); w(C)}
  TYDER_ASSIGN_OR_RETURN(
      fx.v1, AddGeneral(s, "v1", "v", {fx.a, fx.c}, {"pa", "pc"},
                        mir::Seq({stmt_call(u, {mir::Param(0)}),
                                  stmt_call(w, {mir::Param(1)})})));
  // v2(B, C) = {get_b1(B); u(C)}
  TYDER_ASSIGN_OR_RETURN(
      fx.v2, AddGeneral(s, "v2", "v", {fx.b, fx.c}, {"pb", "pc"},
                        mir::Seq({stmt_call(get_b1_gf, {mir::Param(0)}),
                                  stmt_call(u, {mir::Param(1)})})));
  // w1(A) = {get_a1(A)}
  TYDER_ASSIGN_OR_RETURN(
      fx.w1, AddGeneral(s, "w1", "w", {fx.a}, {"arg"},
                        mir::Seq({stmt_call(get_a1_gf, {mir::Param(0)})})));
  // w2(C) = {u(C)}
  TYDER_ASSIGN_OR_RETURN(
      fx.w2, AddGeneral(s, "w2", "w", {fx.c}, {"arg"},
                        mir::Seq({stmt_call(u, {mir::Param(0)})})));
  // x1(A, B) = {y(A, B); v(B, A)}
  TYDER_ASSIGN_OR_RETURN(
      fx.x1,
      AddGeneral(s, "x1", "x", {fx.a, fx.b}, {"pa", "pb"},
                 mir::Seq({stmt_call(y, {mir::Param(0), mir::Param(1)}),
                           stmt_call(v, {mir::Param(1), mir::Param(0)})})));
  // y1(A, B) = {x(A, B)}
  TYDER_ASSIGN_OR_RETURN(
      fx.y1,
      AddGeneral(s, "y1", "y", {fx.a, fx.b}, {"pa", "pb"},
                 mir::Seq({stmt_call(x, {mir::Param(0), mir::Param(1)})})));

  if (with_z_methods) {
    // z1(C) -> G = { g: G; g = c; u(c); return g; }  — Section 6.3's example.
    TYDER_ASSIGN_OR_RETURN(
        fx.z1,
        AddGeneral(s, "z1", "z", {fx.c}, {"pc"},
                   mir::Seq({mir::Decl("gv", fx.g),
                             mir::Assign("gv", mir::Param(0)),
                             stmt_call(u, {mir::Param(0)}),
                             mir::Return(mir::Var("gv"))}),
                   fx.g));
    // z2(B) = { dv: D; dv = b; get_h2(b); } — makes D enter Y.
    TYDER_ASSIGN_OR_RETURN(
        fx.z2,
        AddGeneral(s, "z2", "zz", {fx.b}, {"pb"},
                   mir::Seq({mir::Decl("dv", fx.d),
                             mir::Assign("dv", mir::Param(0)),
                             stmt_call(get_h2_gf, {mir::Param(0)})})));
  }

  TYDER_RETURN_IF_ERROR(s.Validate());
  TYDER_RETURN_IF_ERROR(TypeCheckSchema(s));
  return fx;
}

}  // namespace tyder::testing
