// Shared schema fixtures reproducing the paper's running examples. Used by
// unit tests, integration tests, and the figure-reproduction benches.

#ifndef TYDER_TESTS_TESTING_FIXTURES_H_
#define TYDER_TESTS_TESTING_FIXTURES_H_

#include <set>

#include "common/result.h"
#include "methods/schema.h"

namespace tyder::testing {

// Section 3.1 / Figures 1–2: Person/Employee with age, income, promote and
// full accessors.
struct PersonEmployeeFixture {
  Schema schema;
  TypeId person = kInvalidType;
  TypeId employee = kInvalidType;
  AttrId ssn = kInvalidAttr, name = kInvalidAttr, date_of_birth = kInvalidAttr;
  AttrId pay_rate = kInvalidAttr, hrs_worked = kInvalidAttr;
  MethodId age = kInvalidMethod, income = kInvalidMethod,
           promote = kInvalidMethod;

  // The paper's projection list: SSN, date_of_birth, pay_rate.
  std::set<AttrId> Projection() const { return {ssn, date_of_birth, pay_rate}; }
};
Result<PersonEmployeeFixture> BuildPersonEmployee();

// Section 4.2 / Figure 3: the 8-type multiple-inheritance hierarchy with
// methods u1..u3, v1, v2, w1, w2, x1, y1 and accessors get_a1, get_b1,
// get_h2, get_g1. `with_z_methods` additionally defines the Section 6.5
// methods that make Z = {D, G} (z1 returns a G reached from its C parameter;
// z2 assigns its B parameter into a D local).
struct Example1Fixture {
  Schema schema;
  TypeId a{}, b{}, c{}, d{}, e{}, f{}, g{}, h{};
  AttrId a1{}, a2{}, b1{}, c1{}, d1{}, e1{}, e2{}, f1{}, g1{}, h1{}, h2{};
  MethodId u1{}, u2{}, u3{}, v1{}, v2{}, w1{}, w2{}, x1{}, y1{};
  MethodId get_a1{}, get_b1{}, get_h2{}, get_g1{};
  MethodId z1 = kInvalidMethod, z2 = kInvalidMethod;

  // The paper's projection list: a2, e2, h2.
  std::set<AttrId> Projection() const { return {a2, e2, h2}; }
};
Result<Example1Fixture> BuildExample1(bool with_z_methods = false);

}  // namespace tyder::testing

#endif  // TYDER_TESTS_TESTING_FIXTURES_H_
