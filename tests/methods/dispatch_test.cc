#include "methods/dispatch.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(DispatchTest, InheritedMethodDispatchesForSubtype) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  // age is defined on Person; an Employee argument selects it.
  auto m = DispatchByName(fx->schema, "age", {fx->employee});
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, fx->age);
  auto on_person = DispatchByName(fx->schema, "age", {fx->person});
  ASSERT_TRUE(on_person.ok());
  EXPECT_EQ(*on_person, fx->age);
}

TEST(DispatchTest, MethodOnSubtypeNotApplicableToSupertype) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  EXPECT_FALSE(DispatchByName(fx->schema, "income", {fx->person}).ok());
  EXPECT_TRUE(DispatchByName(fx->schema, "income", {fx->employee}).ok());
}

TEST(DispatchTest, WrongArgumentCountRejected) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  EXPECT_EQ(
      DispatchByName(fx->schema, "age", {fx->person, fx->person}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(DispatchTest, UnknownGenericFunction) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  EXPECT_EQ(DispatchByName(fx->schema, "no_such", {fx->person}).status().code(),
            StatusCode::kNotFound);
}

TEST(DispatchTest, MultiMethodUsesAllArguments) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  // v(A, C) -> v1; v(B, C) -> v2; v(B, A) -> v2 (A ≼ C).
  auto v_ac = DispatchByName(fx->schema, "v", {fx->a, fx->c});
  ASSERT_TRUE(v_ac.ok());
  EXPECT_EQ(*v_ac, fx->v1);
  auto v_bc = DispatchByName(fx->schema, "v", {fx->b, fx->c});
  ASSERT_TRUE(v_bc.ok());
  EXPECT_EQ(*v_bc, fx->v2);
  auto v_ba = DispatchByName(fx->schema, "v", {fx->b, fx->a});
  ASSERT_TRUE(v_ba.ok());
  EXPECT_EQ(*v_ba, fx->v2);
  // v(A, A): both v1 (A≼A, A≼C) and v2 (A≼B, A≼C) apply; v1 wins on the
  // first argument (A before B in CPL(A)).
  auto v_aa = DispatchByName(fx->schema, "v", {fx->a, fx->a});
  ASSERT_TRUE(v_aa.ok());
  EXPECT_EQ(*v_aa, fx->v1);
}

TEST(DispatchTest, DispatchOrderMostSpecificFirst) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  auto u = fx->schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  std::vector<MethodId> order = DispatchOrder(fx->schema, *u, {fx->a});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.front(), fx->u1);
  EXPECT_EQ(order.back(), fx->u3);
}

}  // namespace
}  // namespace tyder
