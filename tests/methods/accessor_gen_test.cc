#include "methods/accessor_gen.h"

#include <gtest/gtest.h>

namespace tyder {
namespace {

class AccessorGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = Schema::Create();
    ASSERT_TRUE(s.ok());
    schema_ = std::move(s).value();
    auto person = schema_.types().DeclareType("Person", TypeKind::kUser);
    auto employee = schema_.types().DeclareType("Employee", TypeKind::kUser);
    ASSERT_TRUE(person.ok());
    ASSERT_TRUE(employee.ok());
    person_ = *person;
    employee_ = *employee;
    ASSERT_TRUE(schema_.types().AddSupertype(employee_, person_).ok());
    auto ssn = schema_.types().DeclareAttribute(person_, "ssn",
                                                schema_.builtins().string_type);
    ASSERT_TRUE(ssn.ok());
    ssn_ = *ssn;
  }

  Schema schema_;
  TypeId person_ = kInvalidType, employee_ = kInvalidType;
  AttrId ssn_ = kInvalidAttr;
};

TEST_F(AccessorGenTest, ReaderShape) {
  auto reader = GenerateReader(schema_, ssn_);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const Method& m = schema_.method(*reader);
  EXPECT_EQ(m.kind, MethodKind::kReader);
  EXPECT_EQ(m.label.view(), "get_ssn");
  EXPECT_EQ(m.sig.params, (std::vector<TypeId>{person_}));
  EXPECT_EQ(m.sig.result, schema_.builtins().string_type);
  EXPECT_EQ(m.attr, ssn_);
  EXPECT_EQ(schema_.ReaderOf(ssn_), *reader);
}

TEST_F(AccessorGenTest, MutatorShape) {
  auto mutator = GenerateMutator(schema_, ssn_);
  ASSERT_TRUE(mutator.ok()) << mutator.status();
  const Method& m = schema_.method(*mutator);
  EXPECT_EQ(m.kind, MethodKind::kMutator);
  EXPECT_EQ(m.label.view(), "set_ssn");
  EXPECT_EQ(m.sig.params,
            (std::vector<TypeId>{person_, schema_.builtins().string_type}));
  EXPECT_EQ(m.sig.result, schema_.builtins().void_type);
  EXPECT_EQ(schema_.MutatorOf(ssn_), *mutator);
}

TEST_F(AccessorGenTest, ReaderOnSubtypeFormal) {
  // The paper declares get_h2 on B while h2 lives at H; same pattern here.
  auto reader = GenerateReader(schema_, ssn_, employee_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(schema_.method(*reader).sig.params,
            (std::vector<TypeId>{employee_}));
}

TEST_F(AccessorGenTest, SecondReaderGetsDisambiguatedLabel) {
  ASSERT_TRUE(GenerateReader(schema_, ssn_).ok());
  auto second = GenerateReader(schema_, ssn_, employee_);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(schema_.method(*second).label.view(), "get_ssn_Employee");
  // Both methods live on the same generic function.
  EXPECT_EQ(schema_.method(*second).gf, schema_.method(*second).gf);
  auto gf = schema_.FindGenericFunction("get_ssn");
  ASSERT_TRUE(gf.ok());
  EXPECT_EQ(schema_.gf(*gf).methods.size(), 2u);
}

TEST_F(AccessorGenTest, ReaderOnTypeLackingAttributeFails) {
  auto unrelated = schema_.types().DeclareType("Unrelated", TypeKind::kUser);
  ASSERT_TRUE(unrelated.ok());
  EXPECT_FALSE(GenerateReader(schema_, ssn_, *unrelated).ok());
}

TEST_F(AccessorGenTest, GenerateAllAccessorsCoversEveryAttribute) {
  auto pay = schema_.types().DeclareAttribute(employee_, "pay",
                                              schema_.builtins().float_type);
  ASSERT_TRUE(pay.ok());
  ASSERT_TRUE(GenerateAllAccessors(schema_).ok());
  EXPECT_NE(schema_.ReaderOf(ssn_), kInvalidMethod);
  EXPECT_NE(schema_.ReaderOf(*pay), kInvalidMethod);
  EXPECT_NE(schema_.MutatorOf(ssn_), kInvalidMethod);
  EXPECT_NE(schema_.MutatorOf(*pay), kInvalidMethod);
  EXPECT_TRUE(schema_.Validate().ok());
}

TEST_F(AccessorGenTest, GenerateForTypeOnlyLocalAttrs) {
  auto pay = schema_.types().DeclareAttribute(employee_, "pay",
                                              schema_.builtins().float_type);
  ASSERT_TRUE(pay.ok());
  ASSERT_TRUE(GenerateAccessorsForType(schema_, employee_, false).ok());
  EXPECT_NE(schema_.ReaderOf(*pay), kInvalidMethod);
  EXPECT_EQ(schema_.ReaderOf(ssn_), kInvalidMethod);   // not local to Employee
  EXPECT_EQ(schema_.MutatorOf(*pay), kInvalidMethod);  // mutators disabled
}

}  // namespace
}  // namespace tyder
