#include "methods/precedence.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/fixtures.h"

namespace tyder {
namespace {

class PrecedenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }
  std::vector<std::string> CplNames(TypeId t) {
    std::vector<std::string> names;
    for (TypeId s : ClassPrecedenceList(fx_.schema.types(), t)) {
      names.push_back(fx_.schema.types().TypeName(s));
    }
    return names;
  }
  testing::Example1Fixture fx_;
};

TEST_F(PrecedenceTest, CplStartsWithSelf) {
  EXPECT_EQ(CplNames(fx_.h), (std::vector<std::string>{"H"}));
  EXPECT_EQ(CplNames(fx_.f), (std::vector<std::string>{"F", "H"}));
}

TEST_F(PrecedenceTest, CplRespectsLocalPrecedenceOrder) {
  // E: G before H (local precedence).
  EXPECT_EQ(CplNames(fx_.e), (std::vector<std::string>{"E", "G", "H"}));
  // C: F before E (local precedence), then E's tail.
  EXPECT_EQ(CplNames(fx_.c),
            (std::vector<std::string>{"C", "F", "E", "G", "H"}));
}

TEST_F(PrecedenceTest, CplOfAIsC3Linearization) {
  EXPECT_EQ(CplNames(fx_.a), (std::vector<std::string>{"A", "C", "F", "B",
                                                       "D", "E", "G", "H"}));
}

TEST_F(PrecedenceTest, CplContainsEachSupertypeOnce) {
  std::vector<TypeId> cpl = ClassPrecedenceList(fx_.schema.types(), fx_.a);
  std::vector<TypeId> sorted = cpl;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  // Exactly the supertype closure.
  EXPECT_EQ(cpl.size(), fx_.schema.types().SupertypeClosure(fx_.a).size());
}

TEST_F(PrecedenceTest, MoreSpecificPrefersTighterFormal) {
  // For the call u(A): u1(A) is more specific than u3(B).
  EXPECT_TRUE(MoreSpecific(fx_.schema, fx_.u1, fx_.u3, {fx_.a}));
  EXPECT_FALSE(MoreSpecific(fx_.schema, fx_.u3, fx_.u1, {fx_.a}));
}

TEST_F(PrecedenceTest, MoreSpecificIsIrreflexiveOnTies) {
  // u1 and u2 have identical formals (A): neither is more specific.
  EXPECT_FALSE(MoreSpecific(fx_.schema, fx_.u1, fx_.u2, {fx_.a}));
  EXPECT_FALSE(MoreSpecific(fx_.schema, fx_.u2, fx_.u1, {fx_.a}));
}

TEST_F(PrecedenceTest, LeftmostArgumentDominates) {
  // For x(A, B): compare v1-style signatures by first differing position.
  // v1(A, C) vs v2(B, C) on call v(A, A): first formals A vs B — A wins.
  EXPECT_TRUE(MoreSpecific(fx_.schema, fx_.v1, fx_.v2, {fx_.a, fx_.a}));
}

TEST_F(PrecedenceTest, SortBySpecificityOrdersAllApplicable) {
  auto u = fx_.schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  std::vector<MethodId> order = SortBySpecificity(fx_.schema, *u, {fx_.a});
  ASSERT_EQ(order.size(), 3u);
  // u1 and u2 (formal A) precede u3 (formal B); u1 before u2 by stability.
  EXPECT_EQ(order[0], fx_.u1);
  EXPECT_EQ(order[1], fx_.u2);
  EXPECT_EQ(order[2], fx_.u3);
}

TEST_F(PrecedenceTest, MostSpecificApplicableSelectsWinner) {
  auto u = fx_.schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  auto winner = MostSpecificApplicable(fx_.schema, *u, {fx_.a});
  ASSERT_TRUE(winner.ok());
  EXPECT_EQ(*winner, fx_.u1);
  // u(B): only u3.
  auto only = MostSpecificApplicable(fx_.schema, *u, {fx_.b});
  ASSERT_TRUE(only.ok());
  EXPECT_EQ(*only, fx_.u3);
}

TEST_F(PrecedenceTest, MostSpecificApplicableFailsWhenNoneApply) {
  auto u = fx_.schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(MostSpecificApplicable(fx_.schema, *u, {fx_.c}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace tyder
