// Tests for the hot-path dispatch engine (methods/dispatch_table.h): the
// per-gf applicability masks must agree bit-for-bit with the brute-force
// scan, the call-site cache must never survive a schema mutation, and both
// structures must tolerate concurrent readers (run under `run_all.sh tsan`).

#include "methods/dispatch_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "methods/applicability.h"
#include "methods/dispatch.h"
#include "methods/precedence.h"
#include "testing/fixtures.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

// The brute-force definition the masks must reproduce: scan the gf's methods
// in registration order, keep those applicable to the call.
std::vector<MethodId> BruteForceApplicable(const Schema& schema, GfId gf,
                                           const std::vector<TypeId>& args) {
  std::vector<MethodId> out;
  for (MethodId m : schema.gf(gf).methods) {
    if (ApplicableToCall(schema, m, args)) out.push_back(m);
  }
  return out;
}

TEST(DispatchTableTest, MasksMatchBruteForceOnRandomSchemas) {
  for (uint32_t seed : {7u, 8u, 9u}) {
    testing::RandomSchemaOptions options;
    options.seed = seed;
    options.num_types = 16;
    options.num_general_methods = 20;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok()) << schema.status();
    std::mt19937 rng(seed);
    size_t num_types = schema->types().NumTypes();
    for (GfId gf = 0; gf < schema->NumGenericFunctions(); ++gf) {
      int arity = schema->gf(gf).arity;
      for (int trial = 0; trial < 32; ++trial) {
        std::vector<TypeId> args;
        for (int i = 0; i < arity; ++i) {
          args.push_back(static_cast<TypeId>(rng() % num_types));
        }
        EXPECT_EQ(ApplicableMethodsFromTables(*schema, gf, args),
                  BruteForceApplicable(*schema, gf, args))
            << "seed " << seed << " gf " << gf;
      }
    }
  }
}

TEST(DispatchTableTest, ArityMismatchYieldsEmptySet) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  auto u = fx->schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(ApplicableMethodsFromTables(fx->schema, *u, {}).empty());
  EXPECT_TRUE(
      ApplicableMethodsFromTables(fx->schema, *u, {fx->a, fx->a}).empty());
}

TEST(DispatchTableTest, DispatchOrderEmptyWhenNothingApplies) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  // income is defined on Employee only; a Person argument has no applicable
  // method — the order is empty and Dispatch reports NotFound.
  auto income = fx->schema.FindGenericFunction("income");
  ASSERT_TRUE(income.ok());
  EXPECT_TRUE(DispatchOrder(fx->schema, *income, {fx->person}).empty());
  EXPECT_EQ(Dispatch(fx->schema, *income, {fx->person}).status().code(),
            StatusCode::kNotFound);
}

// Two methods on unrelated formals, probed with an argument below both:
// neither formal is a subtype of the other, so the order is decided by the
// argument's class precedence list (Left precedes Right in CPL(Both)) — and
// repeated queries (cached) must agree with the uncached sort.
TEST(DispatchTableTest, AmbiguousMethodsFollowArgumentPrecedence) {
  auto schema = Schema::Create();
  ASSERT_TRUE(schema.ok()) << schema.status();
  TypeGraph& g = schema->types();
  auto left = g.DeclareType("Left", TypeKind::kUser);
  auto right = g.DeclareType("Right", TypeKind::kUser);
  auto both = g.DeclareType("Both", TypeKind::kUser);
  ASSERT_TRUE(left.ok() && right.ok() && both.ok());
  ASSERT_TRUE(g.AddSupertype(*both, *left).ok());
  ASSERT_TRUE(g.AddSupertype(*both, *right).ok());
  auto gf = schema->DeclareGenericFunction("amb", 1);
  ASSERT_TRUE(gf.ok());
  auto add = [&](const char* label, TypeId formal) {
    Method m;
    m.label = Symbol::Intern(label);
    m.gf = *gf;
    m.kind = MethodKind::kGeneral;
    m.sig = Signature{{formal}, schema->builtins().void_type};
    m.param_names = {Symbol::Intern("p")};
    return schema->AddMethod(std::move(m));
  };
  auto on_left = add("amb_left", *left);
  auto on_right = add("amb_right", *right);
  ASSERT_TRUE(on_left.ok() && on_right.ok());

  std::vector<MethodId> expected = {*on_left, *on_right};
  EXPECT_EQ(DispatchOrder(*schema, *gf, {*both}), expected);  // cold
  EXPECT_EQ(DispatchOrder(*schema, *gf, {*both}), expected);  // cached
  EXPECT_EQ(SortBySpecificity(*schema, *gf, {*both}), expected);
}

// A specificity order longer than the call-site cache keeps (kMaxOrder)
// must still come back complete from DispatchOrder.
TEST(DispatchTableTest, OrderLongerThanCacheLineIsComplete) {
  auto schema = Schema::Create();
  ASSERT_TRUE(schema.ok()) << schema.status();
  TypeGraph& g = schema->types();
  constexpr int kChain = 12;  // > DispatchCache::kMaxOrder
  std::vector<TypeId> chain;
  for (int i = 0; i < kChain; ++i) {
    auto t = g.DeclareType("C" + std::to_string(i), TypeKind::kUser);
    ASSERT_TRUE(t.ok());
    if (i > 0) ASSERT_TRUE(g.AddSupertype(chain.back(), *t).ok());
    chain.push_back(*t);
  }
  auto gf = schema->DeclareGenericFunction("deep", 1);
  ASSERT_TRUE(gf.ok());
  std::vector<MethodId> expected;  // most specific (C0) first
  for (int i = 0; i < kChain; ++i) {
    Method m;
    m.label = Symbol::Intern("deep_" + std::to_string(i));
    m.gf = *gf;
    m.kind = MethodKind::kGeneral;
    m.sig = Signature{{chain[i]}, schema->builtins().void_type};
    m.param_names = {Symbol::Intern("p")};
    auto id = schema->AddMethod(std::move(m));
    ASSERT_TRUE(id.ok());
    expected.push_back(*id);
  }
  static_assert(kChain > static_cast<int>(DispatchCache::kMaxOrder));
  // Twice: the first call primes the cache with a truncated entry, the
  // second must notice the truncation and recompute the full order.
  EXPECT_EQ(DispatchOrder(*schema, *gf, {chain[0]}), expected);
  EXPECT_EQ(DispatchOrder(*schema, *gf, {chain[0]}), expected);
  // Dispatch only needs the front, which the truncated entry serves.
  auto best = Dispatch(*schema, *gf, {chain[0]});
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, expected.front());
}

// A schema mutation must retire every cached call-site entry: adding a more
// specific method after a dispatch has been cached changes the winner.
TEST(DispatchCacheTest, SchemaMutationInvalidatesCachedCallSites) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  auto age = fx->schema.FindGenericFunction("age");
  ASSERT_TRUE(age.ok());
  auto before = Dispatch(fx->schema, *age, {fx->employee});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, fx->age);  // inherited from Person; now cached

  Method m;
  m.label = Symbol::Intern("age_employee");
  m.gf = *age;
  m.kind = MethodKind::kGeneral;
  m.sig = Signature{{fx->employee}, fx->schema.method(fx->age).sig.result};
  m.param_names = {Symbol::Intern("self")};
  auto specialized = fx->schema.AddMethod(std::move(m));
  ASSERT_TRUE(specialized.ok()) << specialized.status();

  auto after = Dispatch(fx->schema, *age, {fx->employee});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *specialized);
  // The Person call site is unaffected in outcome, only recomputed.
  auto person_call = Dispatch(fx->schema, *age, {fx->person});
  ASSERT_TRUE(person_call.ok());
  EXPECT_EQ(*person_call, fx->age);
}

// Hierarchy edits (not just method registration) must also invalidate: the
// type-graph version feeds Schema::version(), and even a cached *empty*
// applicable set must be retired by the edit.
TEST(DispatchCacheTest, HierarchyEditInvalidatesCachedCallSites) {
  auto schema = Schema::Create();
  ASSERT_TRUE(schema.ok()) << schema.status();
  TypeGraph& g = schema->types();
  auto top = g.DeclareType("Top", TypeKind::kUser);
  auto mid = g.DeclareType("Mid", TypeKind::kUser);
  auto leaf = g.DeclareType("Leaf", TypeKind::kUser);
  ASSERT_TRUE(top.ok() && mid.ok() && leaf.ok());
  ASSERT_TRUE(g.AddSupertype(*mid, *top).ok());
  ASSERT_TRUE(g.AddSupertype(*leaf, *top).ok());
  auto gf = schema->DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  Method m;
  m.label = Symbol::Intern("f_mid");
  m.gf = *gf;
  m.kind = MethodKind::kGeneral;
  m.sig = Signature{{*mid}, schema->builtins().void_type};
  m.param_names = {Symbol::Intern("p")};
  auto f_mid = schema->AddMethod(std::move(m));
  ASSERT_TRUE(f_mid.ok());

  // Leaf is not under Mid yet: no applicable method, and that empty verdict
  // is now sitting in the call-site cache.
  EXPECT_EQ(Dispatch(*schema, *gf, {*leaf}).status().code(),
            StatusCode::kNotFound);
  // Graft Leaf under Mid; the cached empty entry must not survive.
  ASSERT_TRUE(g.AddSupertype(*leaf, *mid).ok());
  auto after = Dispatch(*schema, *gf, {*leaf});
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*after, *f_mid);
}

// A chain schema with one gf carrying `num_methods` methods, one per chain
// type (most specific first). Probing with chain[0] makes every method
// applicable.
struct ChainGf {
  Schema schema;
  GfId gf = kInvalidGf;
  std::vector<TypeId> chain;
  std::vector<MethodId> methods;  // registration order == specificity order
};

Result<ChainGf> BuildChainGf(int num_methods) {
  ChainGf out;
  TYDER_ASSIGN_OR_RETURN(out.schema, Schema::Create());
  TypeGraph& g = out.schema.types();
  for (int i = 0; i < num_methods; ++i) {
    TYDER_ASSIGN_OR_RETURN(
        TypeId t, g.DeclareType("K" + std::to_string(i), TypeKind::kUser));
    if (i > 0) TYDER_RETURN_IF_ERROR(g.AddSupertype(out.chain.back(), t));
    out.chain.push_back(t);
  }
  TYDER_ASSIGN_OR_RETURN(out.gf, out.schema.DeclareGenericFunction("k", 1));
  for (int i = 0; i < num_methods; ++i) {
    Method m;
    m.label = Symbol::Intern("k_" + std::to_string(i));
    m.gf = out.gf;
    m.kind = MethodKind::kGeneral;
    m.sig = Signature{{out.chain[i]}, out.schema.builtins().void_type};
    m.param_names = {Symbol::Intern("p")};
    TYDER_ASSIGN_OR_RETURN(MethodId id, out.schema.AddMethod(std::move(m)));
    out.methods.push_back(id);
  }
  return out;
}

// The two size regimes around kDirectScanMax: a gf with exactly
// kDirectScanMax methods always takes the direct scan, one method more makes
// it table-eligible. Querying 1..kBuildThreshold+2 times walks the same call
// through cold scan, threshold crossing, and warm tables — every answer must
// equal the brute-force scan.
TEST(DispatchTableBoundaryTest, DirectScanAndTableRegimesAgreeAcrossUses) {
  for (size_t num_methods :
       {DispatchTables::kDirectScanMax, DispatchTables::kDirectScanMax + 1}) {
    auto chain = BuildChainGf(static_cast<int>(num_methods));
    ASSERT_TRUE(chain.ok()) << chain.status();
    std::vector<TypeId> args = {chain->chain[0]};
    std::vector<MethodId> brute =
        BruteForceApplicable(chain->schema, chain->gf, args);
    ASSERT_EQ(brute.size(), num_methods);
    for (uint32_t use = 0; use < DispatchTables::kBuildThreshold + 2; ++use) {
      EXPECT_EQ(ApplicableMethodsFromTables(chain->schema, chain->gf, args),
                brute)
          << num_methods << " methods, use " << use;
      EXPECT_EQ(DispatchOrder(chain->schema, chain->gf, args), brute)
          << num_methods << " methods, use " << use;
    }
    // A type in the middle of the chain prunes the applicable set the same
    // way on both paths.
    std::vector<TypeId> mid = {chain->chain[num_methods / 2]};
    EXPECT_EQ(ApplicableMethodsFromTables(chain->schema, chain->gf, mid),
              BruteForceApplicable(chain->schema, chain->gf, mid));
  }
}

// More methods than one mask word holds (70 > 64): the bit for method 64+
// lives in the second word, where a word-count bug would truncate or read
// past the row.
TEST(DispatchTableBoundaryTest, MultiWordMasksMatchBruteForce) {
  constexpr int kMethods = 70;
  auto chain = BuildChainGf(kMethods);
  ASSERT_TRUE(chain.ok()) << chain.status();
  // Heat the gf past the threshold so the masks actually get built.
  std::vector<TypeId> leaf = {chain->chain[0]};
  for (uint32_t use = 0; use <= DispatchTables::kBuildThreshold; ++use) {
    (void)ApplicableMethodsFromTables(chain->schema, chain->gf, leaf);
  }
  for (int i = 0; i < kMethods; ++i) {
    std::vector<TypeId> args = {chain->chain[static_cast<size_t>(i)]};
    std::vector<MethodId> brute =
        BruteForceApplicable(chain->schema, chain->gf, args);
    ASSERT_EQ(brute.size(), static_cast<size_t>(kMethods - i));
    EXPECT_EQ(ApplicableMethodsFromTables(chain->schema, chain->gf, args),
              brute)
        << "probe at chain position " << i;
  }
}

// A mutation right at the build threshold retires the half-heated use
// counter with the tables: the next query runs against the new version (cold
// scan again) and must see the new method immediately.
TEST(DispatchTableBoundaryTest, MutationAtThresholdResetsUseCounter) {
  auto chain = BuildChainGf(3);
  ASSERT_TRUE(chain.ok()) << chain.status();
  std::vector<TypeId> args = {chain->chain[0]};
  // Heat to exactly one use below the threshold.
  for (uint32_t use = 0; use + 1 < DispatchTables::kBuildThreshold; ++use) {
    (void)ApplicableMethodsFromTables(chain->schema, chain->gf, args);
  }
  // Mutate: one more method at the leaf (most specific, registered last).
  Method m;
  m.label = Symbol::Intern("k_leaf");
  m.gf = chain->gf;
  m.kind = MethodKind::kGeneral;
  m.sig = Signature{{chain->chain[0]}, chain->schema.builtins().void_type};
  m.param_names = {Symbol::Intern("p")};
  auto added = chain->schema.AddMethod(std::move(m));
  ASSERT_TRUE(added.ok()) << added.status();
  // Cross the threshold at the new version: every answer includes the new
  // method, whichever path serves it.
  std::vector<MethodId> brute =
      BruteForceApplicable(chain->schema, chain->gf, args);
  ASSERT_EQ(brute.back(), *added);
  for (uint32_t use = 0; use < DispatchTables::kBuildThreshold + 2; ++use) {
    EXPECT_EQ(ApplicableMethodsFromTables(chain->schema, chain->gf, args),
              brute)
        << "use " << use;
  }
}

// Arity mismatches must yield the empty set in every size regime — above
// kDirectScanMax the mask path handles them, at or below it the direct scan
// does.
TEST(DispatchTableBoundaryTest, ArityMismatchEmptyOnBothPaths) {
  for (size_t num_methods :
       {DispatchTables::kDirectScanMax, DispatchTables::kDirectScanMax + 1}) {
    auto chain = BuildChainGf(static_cast<int>(num_methods));
    ASSERT_TRUE(chain.ok()) << chain.status();
    std::vector<TypeId> wide = {chain->chain[0], chain->chain[0]};
    for (uint32_t use = 0; use < DispatchTables::kBuildThreshold + 2; ++use) {
      EXPECT_TRUE(
          ApplicableMethodsFromTables(chain->schema, chain->gf, {}).empty());
      EXPECT_TRUE(
          ApplicableMethodsFromTables(chain->schema, chain->gf, wide).empty());
      // Heat with a well-formed call so the gf still crosses the threshold.
      (void)ApplicableMethodsFromTables(chain->schema, chain->gf,
                                        {chain->chain[0]});
    }
  }
}

// Many threads dispatching over one frozen schema: exercises the lazily
// built masks, the shared closure, and the mutex-guarded call-site cache.
// Primarily a ThreadSanitizer target (run_all.sh tsan).
TEST(DispatchCacheTest, ConcurrentDispatchOverFrozenSchemaIsSafe) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  const Schema& schema = fx->schema;
  auto u = schema.FindGenericFunction("u");
  auto v = schema.FindGenericFunction("v");
  ASSERT_TRUE(u.ok() && v.ok());
  std::vector<TypeId> all = {fx->a, fx->b, fx->c, fx->d,
                             fx->e, fx->f, fx->g, fx->h};
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> pool;
    for (int w_ix = 0; w_ix < 4; ++w_ix) {
      pool.emplace_back([&, w_ix] {
        for (int round = 0; round < 50; ++round) {
          for (TypeId t : all) {
            // Same probes from every thread — results must be identical and
            // the caches race-free.
            auto direct = Dispatch(schema, *u, {t});
            std::vector<MethodId> order = DispatchOrder(schema, *u, {t});
            if (direct.ok() != !order.empty()) ++failures;
            if (direct.ok() && order.front() != *direct) ++failures;
            TypeId other = all[(w_ix + round) % all.size()];
            auto multi = Dispatch(schema, *v, {t, other});
            std::vector<MethodId> multi_order =
                DispatchOrder(schema, *v, {t, other});
            if (multi.ok() != !multi_order.empty()) ++failures;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tyder
