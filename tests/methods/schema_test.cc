#include "methods/schema.h"

#include <gtest/gtest.h>

#include "methods/accessor_gen.h"
#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class SchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = Schema::Create();
    ASSERT_TRUE(s.ok()) << s.status();
    schema_ = std::move(s).value();
    auto a = schema_.types().DeclareType("A", TypeKind::kUser);
    ASSERT_TRUE(a.ok());
    a_ = *a;
  }

  Method MakeGeneral(std::string_view label, GfId gf,
                     std::vector<TypeId> params) {
    Method m;
    m.label = Symbol::Intern(label);
    m.gf = gf;
    m.kind = MethodKind::kGeneral;
    m.sig.params = std::move(params);
    m.sig.result = schema_.builtins().void_type;
    m.body = mir::Seq({});
    return m;
  }

  Schema schema_;
  TypeId a_ = kInvalidType;
};

TEST_F(SchemaTest, DeclareGenericFunction) {
  auto gf = schema_.DeclareGenericFunction("m", 2);
  ASSERT_TRUE(gf.ok());
  EXPECT_EQ(schema_.gf(*gf).arity, 2);
  EXPECT_EQ(schema_.gf(*gf).name.view(), "m");
}

TEST_F(SchemaTest, DuplicateGenericFunctionRejected) {
  ASSERT_TRUE(schema_.DeclareGenericFunction("m", 1).ok());
  EXPECT_EQ(schema_.DeclareGenericFunction("m", 1).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SchemaTest, NonPositiveArityRejected) {
  EXPECT_FALSE(schema_.DeclareGenericFunction("m", 0).ok());
  EXPECT_FALSE(schema_.DeclareGenericFunction("m", -1).ok());
}

TEST_F(SchemaTest, FindOrDeclareChecksArity) {
  ASSERT_TRUE(schema_.DeclareGenericFunction("m", 1).ok());
  EXPECT_TRUE(schema_.FindOrDeclareGenericFunction("m", 1).ok());
  EXPECT_FALSE(schema_.FindOrDeclareGenericFunction("m", 2).ok());
  EXPECT_TRUE(schema_.FindOrDeclareGenericFunction("fresh", 3).ok());
}

TEST_F(SchemaTest, AddMethodChecksArity) {
  auto gf = schema_.DeclareGenericFunction("m", 2);
  ASSERT_TRUE(gf.ok());
  Method m = MakeGeneral("m1", *gf, {a_});  // only one formal for arity 2
  EXPECT_FALSE(schema_.AddMethod(std::move(m)).ok());
}

TEST_F(SchemaTest, DuplicateLabelRejected) {
  auto gf = schema_.DeclareGenericFunction("m", 1);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(schema_.AddMethod(MakeGeneral("m1", *gf, {a_})).ok());
  auto b = schema_.types().DeclareType("B", TypeKind::kUser);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(schema_.AddMethod(MakeGeneral("m1", *gf, {*b})).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SchemaTest, DuplicateSignatureAllowedWithRegistrationPrecedence) {
  // The paper's Example 1 has u1(A) and u2(A): same formals, disambiguated
  // by the method precedence mechanism (registration order here).
  auto gf = schema_.DeclareGenericFunction("m", 1);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(schema_.AddMethod(MakeGeneral("m1", *gf, {a_})).ok());
  EXPECT_TRUE(schema_.AddMethod(MakeGeneral("m2", *gf, {a_})).ok());
  EXPECT_EQ(schema_.gf(*gf).methods.size(), 2u);
}

TEST_F(SchemaTest, ReaderShapeValidated) {
  auto x = schema_.types().DeclareAttribute(a_, "x", schema_.builtins().int_type);
  ASSERT_TRUE(x.ok());
  auto gf = schema_.DeclareGenericFunction("get_x", 1);
  ASSERT_TRUE(gf.ok());
  Method m;
  m.label = Symbol::Intern("get_x");
  m.gf = *gf;
  m.kind = MethodKind::kReader;
  m.attr = *x;
  m.sig = Signature{{a_}, schema_.builtins().float_type};  // wrong result
  EXPECT_FALSE(schema_.AddMethod(std::move(m)).ok());
}

TEST_F(SchemaTest, ReaderOnTypeWithoutAttributeRejected) {
  auto b = schema_.types().DeclareType("B", TypeKind::kUser);
  ASSERT_TRUE(b.ok());
  auto x = schema_.types().DeclareAttribute(a_, "x", schema_.builtins().int_type);
  ASSERT_TRUE(x.ok());
  auto gf = schema_.DeclareGenericFunction("get_x", 1);
  ASSERT_TRUE(gf.ok());
  Method m;
  m.label = Symbol::Intern("get_x");
  m.gf = *gf;
  m.kind = MethodKind::kReader;
  m.attr = *x;
  m.sig = Signature{{*b}, schema_.builtins().int_type};  // B has no x
  EXPECT_FALSE(schema_.AddMethod(std::move(m)).ok());
}

TEST_F(SchemaTest, ReaderAndMutatorRegistries) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  EXPECT_NE(fx->schema.ReaderOf(fx->ssn), kInvalidMethod);
  EXPECT_NE(fx->schema.MutatorOf(fx->ssn), kInvalidMethod);
  EXPECT_EQ(fx->schema.method(fx->schema.ReaderOf(fx->ssn)).kind,
            MethodKind::kReader);
}

TEST_F(SchemaTest, FindMethodByLabel) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto m = fx->schema.FindMethod("age");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, fx->age);
  EXPECT_FALSE(fx->schema.FindMethod("nonexistent").ok());
}

TEST_F(SchemaTest, SchemaCopyIsIndependentSnapshot) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Schema snapshot = fx->schema;
  size_t pre = snapshot.types().NumTypes();
  ASSERT_TRUE(fx->schema.types().DeclareType("New", TypeKind::kUser).ok());
  EXPECT_EQ(snapshot.types().NumTypes(), pre);
  EXPECT_EQ(fx->schema.types().NumTypes(), pre + 1);
}

TEST_F(SchemaTest, ValidateDetectsGfArityDrift) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  // Forcing a bad signature through the mutator should be caught.
  fx->schema.SetMethodSignature(fx->age, Signature{{}, kInvalidType});
  EXPECT_FALSE(fx->schema.Validate().ok());
}

}  // namespace
}  // namespace tyder
