#include "methods/applicability.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace tyder {
namespace {

class ApplicabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }
  testing::Example1Fixture fx_;
};

TEST_F(ApplicabilityTest, ApplicableToTypeViaAnyFormal) {
  // u3(B) is applicable to A because A ≼ B.
  EXPECT_TRUE(ApplicableToType(fx_.schema, fx_.u3, fx_.a));
  // u1(A) is not applicable to B (B is a supertype of A).
  EXPECT_FALSE(ApplicableToType(fx_.schema, fx_.u1, fx_.b));
  // v2(B, C): applicable to C via the second formal.
  EXPECT_TRUE(ApplicableToType(fx_.schema, fx_.v2, fx_.c));
}

TEST_F(ApplicabilityTest, AllPaperMethodsApplicableToA) {
  // "First, we note that all the methods given are applicable to the source
  // type A." (Section 4.2)
  for (MethodId m :
       {fx_.u1, fx_.u2, fx_.u3, fx_.v1, fx_.v2, fx_.w1, fx_.w2, fx_.x1, fx_.y1,
        fx_.get_a1, fx_.get_b1, fx_.get_h2, fx_.get_g1}) {
    EXPECT_TRUE(ApplicableToType(fx_.schema, m, fx_.a))
        << fx_.schema.method(m).label.view();
  }
}

TEST_F(ApplicabilityTest, ApplicableToCallRequiresAllPositions) {
  // v1(A, C): applicable to v(A, A) since A ≼ A and A ≼ C.
  EXPECT_TRUE(ApplicableToCall(fx_.schema, fx_.v1, {fx_.a, fx_.a}));
  // v1(A, C) is not applicable to v(B, A): B is not ≼ A.
  EXPECT_FALSE(ApplicableToCall(fx_.schema, fx_.v1, {fx_.b, fx_.a}));
  // v2(B, C) is applicable to v(B, A).
  EXPECT_TRUE(ApplicableToCall(fx_.schema, fx_.v2, {fx_.b, fx_.a}));
}

TEST_F(ApplicabilityTest, WrongArityNeverApplicable) {
  EXPECT_FALSE(ApplicableToCall(fx_.schema, fx_.v1, {fx_.a}));
  EXPECT_FALSE(ApplicableToCall(fx_.schema, fx_.u1, {fx_.a, fx_.a}));
}

TEST_F(ApplicabilityTest, ApplicableMethodsForCall) {
  auto u = fx_.schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  // u(A): all of u1(A), u2(A), u3(B) apply (A ≼ A, A ≼ B).
  EXPECT_EQ(ApplicableMethods(fx_.schema, *u, {fx_.a}).size(), 3u);
  // u(C): no method applies statically (C is above A, unrelated to B).
  EXPECT_TRUE(ApplicableMethods(fx_.schema, *u, {fx_.c}).empty());
  // u(B): only u3(B).
  EXPECT_EQ(ApplicableMethods(fx_.schema, *u, {fx_.b}),
            (std::vector<MethodId>{fx_.u3}));
}

TEST_F(ApplicabilityTest, MethodsApplicableToUnrelatedTypeIsAccessorOnly) {
  // D relates to no method formal except nothing — D is only a supertype of B
  // and A; methods with formals B or A are NOT applicable to D.
  std::vector<MethodId> ms = MethodsApplicableToType(fx_.schema, fx_.d);
  EXPECT_TRUE(ms.empty());
}

TEST_F(ApplicabilityTest, MethodsApplicableToIntermediateType) {
  // For C: methods with a formal ⪰ C: v1 (2nd formal C), v2 (2nd formal C),
  // w2(C), get_g1(C). u3(B)? C is not ≼ B. u1(A)? C not ≼ A.
  std::vector<MethodId> ms = MethodsApplicableToType(fx_.schema, fx_.c);
  std::set<MethodId> got(ms.begin(), ms.end());
  EXPECT_EQ(got, (std::set<MethodId>{fx_.v1, fx_.v2, fx_.w2, fx_.get_g1}));
}

}  // namespace
}  // namespace tyder
