#include "methods/consistency.h"

#include <gtest/gtest.h>

#include "core/projection.h"
#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class ConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = Schema::Create();
    ASSERT_TRUE(s.ok());
    schema_ = std::move(s).value();
    auto b = schema_.types().DeclareType("B", TypeKind::kUser);
    auto a = schema_.types().DeclareType("A", TypeKind::kUser);
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = *a;
    b_ = *b;
    ASSERT_TRUE(schema_.types().AddSupertype(a_, b_).ok());  // A ≼ B
  }

  Result<MethodId> Add(std::string_view label, GfId gf,
                       std::vector<TypeId> params, TypeId result) {
    Method m;
    m.label = Symbol::Intern(label);
    m.gf = gf;
    m.kind = MethodKind::kGeneral;
    m.sig.params = std::move(params);
    m.sig.result = result;
    m.body = mir::Seq({});
    return schema_.AddMethod(std::move(m));
  }

  Schema schema_;
  TypeId a_ = kInvalidType, b_ = kInvalidType;
};

TEST_F(ConsistencyTest, CleanSchemaHasNoIssues) {
  auto gf = schema_.DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(Add("f_a", *gf, {a_}, schema_.builtins().void_type).ok());
  ASSERT_TRUE(Add("f_b", *gf, {b_}, schema_.builtins().void_type).ok());
  EXPECT_TRUE(CheckMethodConsistency(schema_).empty());
}

TEST_F(ConsistencyTest, IdenticalFormalsReported) {
  auto gf = schema_.DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(Add("f1", *gf, {a_}, schema_.builtins().void_type).ok());
  ASSERT_TRUE(Add("f2", *gf, {a_}, schema_.builtins().void_type).ok());
  auto issues = CheckMethodConsistency(schema_);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConsistencyIssueKind::kAmbiguity);
  EXPECT_NE(issues[0].description.find("identical formal types"),
            std::string::npos);
}

TEST_F(ConsistencyTest, PaperExample1DuplicateFormalsAreFlagged) {
  // u1(A) and u2(A) — the paper's own duplicate pair — rely on the
  // precedence mechanism; the consistency lint surfaces exactly that.
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  auto issues = CheckMethodConsistency(fx->schema);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].first, fx->u1);
  EXPECT_EQ(issues[0].second, fx->u2);
}

TEST_F(ConsistencyTest, CrossingFormalsReported) {
  // f1(A, B) and f2(B, A): at a call with two A arguments both apply and the
  // winner flips with which position you look at first.
  auto gf = schema_.DeclareGenericFunction("f", 2);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(Add("f1", *gf, {a_, b_}, schema_.builtins().void_type).ok());
  ASSERT_TRUE(Add("f2", *gf, {b_, a_}, schema_.builtins().void_type).ok());
  auto issues = CheckMethodConsistency(schema_);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConsistencyIssueKind::kAmbiguity);
  EXPECT_NE(issues[0].description.find("cross"), std::string::npos);
}

TEST_F(ConsistencyTest, UnrelatedFormalsNeverShareCalls) {
  auto island = schema_.types().DeclareType("Island", TypeKind::kUser);
  ASSERT_TRUE(island.ok());
  auto gf = schema_.DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(Add("f1", *gf, {a_}, schema_.builtins().void_type).ok());
  ASSERT_TRUE(Add("f2", *gf, {*island}, schema_.builtins().void_type).ok());
  EXPECT_TRUE(CheckMethodConsistency(schema_).empty());
}

TEST_F(ConsistencyTest, CovariantResultAccepted) {
  auto gf = schema_.DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  // Overriding method returns the subtype: fine.
  ASSERT_TRUE(Add("f_b", *gf, {b_}, b_).ok());
  ASSERT_TRUE(Add("f_a", *gf, {a_}, a_).ok());
  EXPECT_TRUE(CheckMethodConsistency(schema_).empty());
}

TEST_F(ConsistencyTest, NonCovariantResultReported) {
  auto gf = schema_.DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  // The more specific method widens the result: unsound for static typing.
  ASSERT_TRUE(Add("f_b", *gf, {b_}, a_).ok());
  ASSERT_TRUE(Add("f_a", *gf, {a_}, b_).ok());
  auto issues = CheckMethodConsistency(schema_);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConsistencyIssueKind::kResultCovariance);
  EXPECT_EQ(schema_.method(issues[0].first).label.view(), "f_a");
}

TEST_F(ConsistencyTest, UnrelatedResultsReported) {
  auto island = schema_.types().DeclareType("Island", TypeKind::kUser);
  ASSERT_TRUE(island.ok());
  auto gf = schema_.DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(Add("f_b", *gf, {b_}, b_).ok());
  ASSERT_TRUE(Add("f_a", *gf, {a_}, *island).ok());
  auto issues = CheckMethodConsistency(schema_);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConsistencyIssueKind::kResultCovariance);
}

TEST_F(ConsistencyTest, ReportRendersOneLinePerIssue) {
  auto gf = schema_.DeclareGenericFunction("f", 1);
  ASSERT_TRUE(gf.ok());
  ASSERT_TRUE(Add("f1", *gf, {a_}, schema_.builtins().void_type).ok());
  ASSERT_TRUE(Add("f2", *gf, {a_}, schema_.builtins().void_type).ok());
  auto issues = CheckMethodConsistency(schema_);
  std::string report = ConsistencyReport(schema_, issues);
  EXPECT_NE(report.find("f: methods f1 / f2"), std::string::npos);
}

TEST_F(ConsistencyTest, DerivationCanIntroduceCrossingPairs) {
  // Before factoring, the paper's schema has exactly one finding (the
  // u1/u2 duplicate). Factoring lifts v1(A, C) to v1(ProjA, ~C); since
  // ProjA and B are ≼-unrelated (the surrogate hierarchy is parallel to the
  // original one), v1 no longer pointwise-dominates v2(B, C): the pair
  // becomes a *crossing* finding. Run-time dispatch is still preserved —
  // CPLs order ProjA before B for actual A arguments — so this is a static
  // analysis regression inherent to the paper's scheme, worth surfacing.
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  auto before = CheckMethodConsistency(fx->schema);
  ASSERT_EQ(before.size(), 1u);
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());
  auto after = CheckMethodConsistency(fx->schema);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].first, fx->u1);  // the original duplicate survives
  EXPECT_EQ(after[0].second, fx->u2);
  EXPECT_EQ(after[1].first, fx->v1);  // the new crossing pair
  EXPECT_EQ(after[1].second, fx->v2);
  EXPECT_NE(after[1].description.find("cross"), std::string::npos);
}

}  // namespace
}  // namespace tyder
