#include "core/algebra.h"

#include <gtest/gtest.h>

#include "methods/applicability.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(SelectionTest, ViewIsDirectSubtypeWithFullState) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  auto view = DeriveSelection(fx->schema, fx->employee, "HighlyPaid");
  ASSERT_TRUE(view.ok()) << view.status();
  const TypeGraph& g = fx->schema.types();
  EXPECT_TRUE(g.IsProperSubtype(*view, fx->employee));
  // Full cumulative state inherited.
  EXPECT_EQ(g.CumulativeAttributes(*view).size(),
            g.CumulativeAttributes(fx->employee).size());
}

TEST(SelectionTest, AllSourceMethodsApplicableToSelectionView) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto view = DeriveSelection(fx->schema, fx->employee, "HighlyPaid");
  ASSERT_TRUE(view.ok());
  for (MethodId m : {fx->age, fx->income, fx->promote}) {
    EXPECT_TRUE(ApplicableToType(fx->schema, m, *view));
  }
}

TEST(SelectionTest, DuplicateNameRejected) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  ASSERT_TRUE(DeriveSelection(fx->schema, fx->employee, "V").ok());
  EXPECT_FALSE(DeriveSelection(fx->schema, fx->employee, "V").ok());
}

TEST(CommonAttributesTest, IntersectionOfCumulativeState) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  // B and C share the attributes of their common supertypes E, G and H
  // (both reach G through E) but not each other's locals or D/F attributes.
  std::vector<AttrId> common = CommonAttributes(fx->schema, fx->b, fx->c);
  std::set<AttrId> got(common.begin(), common.end());
  EXPECT_EQ(got,
            (std::set<AttrId>{fx->e1, fx->e2, fx->g1, fx->h1, fx->h2}));
}

TEST(GeneralizationTest, DerivesCommonSupertypeView) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  auto result = DeriveGeneralization(fx->schema, fx->b, fx->c, "BCCommon");
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::string> attrs;
  for (AttrId a : fx->schema.types().CumulativeAttributes(result->derived)) {
    attrs.insert(fx->schema.types().attribute(a).name.str());
  }
  EXPECT_EQ(attrs,
            (std::set<std::string>{"e1", "e2", "g1", "h1", "h2"}));
  // Both B and C are (transitively) subtypes of the generalization's
  // component surrogates through their own factoring; at minimum the view is
  // a supertype of its primary source B.
  EXPECT_TRUE(fx->schema.types().IsSubtype(fx->b, result->derived));
}

TEST(GeneralizationTest, NoCommonAttributesFails) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  // D{d1} and G{g1} share nothing.
  auto result = DeriveGeneralization(fx->schema, fx->d, fx->g, "DG");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tyder
