#include "core/revert.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/serialize.h"
#include "core/verify.h"
#include "mir/printer.h"
#include "objmodel/schema_printer.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class RevertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1(/*with_z_methods=*/true);
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    original_hierarchy_ = PrintHierarchy(fx_.schema.types());
    original_methods_ = PrintAllMethods(fx_.schema);
    snapshot_ = fx_.schema;
  }

  DerivationResult Derive() {
    ProjectionSpec spec;
    spec.source = fx_.a;
    spec.attributes = {fx_.a2, fx_.e2, fx_.h2};
    spec.view_name = "ProjA";
    auto result = DeriveProjection(fx_.schema, spec);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  testing::Example1Fixture fx_;
  Schema snapshot_;
  std::string original_hierarchy_;
  std::string original_methods_;
};

TEST_F(RevertTest, RoundTripRestoresHierarchyAndMethods) {
  DerivationResult derivation = Derive();
  ASSERT_NE(PrintHierarchy(fx_.schema.types()), original_hierarchy_);
  Status reverted = RevertDerivation(fx_.schema, derivation);
  ASSERT_TRUE(reverted.ok()) << reverted;
  EXPECT_EQ(PrintHierarchy(fx_.schema.types()), original_hierarchy_);
  EXPECT_EQ(PrintAllMethods(fx_.schema), original_methods_);
}

TEST_F(RevertTest, RevertedSchemaBehavesLikeTheOriginal) {
  DerivationResult derivation = Derive();
  ASSERT_TRUE(RevertDerivation(fx_.schema, derivation).ok());
  std::vector<std::string> issues;
  CheckDispatchPreserved(snapshot_, fx_.schema, &issues);
  // Dispatch identical over every pre-existing type... except calls probing
  // the (now detached) surrogate ids, which did not exist in the snapshot,
  // so the snapshot comparison only covers snapshot-era types — exactly what
  // we want.
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST_F(RevertTest, SurrogatesDetachedAndSourceStateRestored) {
  DerivationResult derivation = Derive();
  ASSERT_TRUE(RevertDerivation(fx_.schema, derivation).ok());
  for (TypeId surrogate : derivation.surrogates.created) {
    EXPECT_TRUE(fx_.schema.types().type(surrogate).detached());
    EXPECT_TRUE(fx_.schema.types().type(surrogate).local_attributes().empty());
  }
  // a2 home again, in declaration order.
  EXPECT_EQ(fx_.schema.types().attribute(fx_.a2).owner, fx_.a);
  EXPECT_EQ(fx_.schema.types().type(fx_.a).local_attributes(),
            (std::vector<AttrId>{fx_.a1, fx_.a2}));
}

TEST_F(RevertTest, DoubleRevertRefused) {
  DerivationResult derivation = Derive();
  ASSERT_TRUE(RevertDerivation(fx_.schema, derivation).ok());
  EXPECT_EQ(RevertDerivation(fx_.schema, derivation).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RevertTest, RefusedWhenLaterDerivationObservesSurrogates) {
  DerivationResult first = Derive();
  // Project the derived view again: the second derivation's surrogates hang
  // off the first one's.
  ProjectionSpec second;
  second.source = first.derived;
  second.attributes = {fx_.a2};
  second.view_name = "ProjA2";
  auto r2 = DeriveProjection(fx_.schema, second);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(RevertDerivation(fx_.schema, first).code(),
            StatusCode::kFailedPrecondition);
  // Reverting in reverse order works.
  EXPECT_TRUE(RevertDerivation(fx_.schema, *r2).ok());
  EXPECT_TRUE(RevertDerivation(fx_.schema, first).ok());
  EXPECT_EQ(PrintHierarchy(fx_.schema.types()), original_hierarchy_);
}

TEST_F(RevertTest, ReDerivationAfterRevertMatchesPaperAgain) {
  DerivationResult derivation = Derive();
  ASSERT_TRUE(RevertDerivation(fx_.schema, derivation).ok());
  // The name ProjA is still taken by the detached husk, so a fresh name.
  ProjectionSpec spec;
  spec.source = fx_.a;
  spec.attributes = {fx_.a2, fx_.e2, fx_.h2};
  spec.view_name = "ProjA_again";
  auto again = DeriveProjection(fx_.schema, spec);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->augment_z, (std::set<TypeId>{fx_.d, fx_.g}));
}

TEST(CatalogDropViewTest, DropProjectionViewRestoresSchema) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  std::string original = PrintHierarchy(fx->schema.types());
  Catalog catalog(std::move(fx->schema));
  ASSERT_TRUE(catalog
                  .DefineProjectionView("V", "Employee",
                                        {"SSN", "date_of_birth", "pay_rate"})
                  .ok());
  ASSERT_TRUE(catalog.DropView("V").ok());
  EXPECT_EQ(PrintHierarchy(catalog.schema().types()), original);
  EXPECT_FALSE(catalog.FindView("V").ok());
}

TEST(CatalogDropViewTest, DropSelectionView) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Catalog catalog(std::move(fx->schema));
  ASSERT_TRUE(catalog.DefineSelectionView("Sel", "Employee").ok());
  ASSERT_TRUE(catalog.DropView("Sel").ok());
  auto sel = catalog.schema().types().FindType("Sel");
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(catalog.schema().types().type(*sel).detached());
}

TEST(CatalogDropViewTest, RenameViewCannotBeDropped) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Catalog catalog(std::move(fx->schema));
  ASSERT_TRUE(catalog
                  .DefineRenameView("R", "Employee",
                                    {{"pay_rate", "hourly_wage"}})
                  .ok());
  EXPECT_EQ(catalog.DropView("R").code(), StatusCode::kFailedPrecondition);
}

TEST(CatalogDropViewTest, UnknownViewReported) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Catalog catalog(std::move(fx->schema));
  EXPECT_EQ(catalog.DropView("Ghost").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tyder
