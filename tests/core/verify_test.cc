#include "core/verify.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace tyder {
namespace {

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    before_ = fx_.schema;
    ProjectionOptions options;
    options.verify = false;  // tests call the verifier explicitly
    auto result = DeriveProjectionByName(
        fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
        "EmployeeView", options);
    ASSERT_TRUE(result.ok()) << result.status();
    result_ = std::move(result).value();
  }

  testing::PersonEmployeeFixture fx_;
  Schema before_;
  DerivationResult result_;
};

TEST_F(VerifyTest, CleanDerivationPasses) {
  VerifyReport report = VerifyDerivation(before_, fx_.schema, result_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.ToString(), "OK");
}

TEST_F(VerifyTest, DetectsStolenAttribute) {
  ASSERT_TRUE(
      fx_.schema.types().MoveAttribute(fx_.name, result_.derived).ok());
  VerifyReport report = VerifyDerivation(before_, fx_.schema, result_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("cumulative state"), std::string::npos);
}

TEST_F(VerifyTest, DetectsDispatchHijack) {
  // Re-pointing income's formal at Person makes income applicable to calls
  // that previously had no method — dispatch changed.
  Signature hijacked = fx_.schema.method(fx_.income).sig;
  hijacked.params[0] = fx_.person;
  fx_.schema.SetMethodSignature(fx_.income, hijacked);
  VerifyReport report = VerifyDerivation(before_, fx_.schema, result_);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("dispatch of income(Person) changed"),
            std::string::npos);
}

TEST_F(VerifyTest, DetectsBrokenTyping) {
  // Widening a reader's result type breaks accessor well-formedness and the
  // static typing of bodies that use it.
  MethodId reader = fx_.schema.ReaderOf(fx_.pay_rate);
  ASSERT_NE(reader, kInvalidMethod);
  Signature bad = fx_.schema.method(reader).sig;
  bad.result = fx_.schema.builtins().string_type;
  fx_.schema.SetMethodSignature(reader, bad);
  VerifyReport report = VerifyDerivation(before_, fx_.schema, result_);
  EXPECT_FALSE(report.ok());
}

TEST_F(VerifyTest, DetectsMisreportedApplicability) {
  // Claim income (not applicable) as applicable: the derived-type behavior
  // check must flag it.
  DerivationResult lied = result_;
  lied.applicability.applicable.push_back(fx_.income);
  std::sort(lied.applicability.applicable.begin(),
            lied.applicability.applicable.end());
  VerifyReport report = VerifyDerivation(before_, fx_.schema, lied);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("inferred applicable"), std::string::npos);
}

TEST_F(VerifyTest, CheckDispatchPreservedAloneIsCallable) {
  std::vector<std::string> issues;
  CheckDispatchPreserved(before_, fx_.schema, &issues);
  EXPECT_TRUE(issues.empty());
}

}  // namespace
}  // namespace tyder
