// Epoch-based reclamation (core/epoch.h): a pinned old epoch keeps its
// snapshot — and the analysis caches hanging off its schema — alive and
// correct while writers publish past it; unpinning the last reader frees
// it (observed through the reclamation counter, leak-free under the asan
// mode of scripts/run_all.sh).

#include "core/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "storage/durable_catalog.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

namespace fs = std::filesystem;

Catalog PersonEmployeeCatalog() {
  auto fx = testing::BuildPersonEmployee();
  EXPECT_TRUE(fx.ok()) << fx.status().ToString();
  return Catalog(std::move(fx->schema));
}

Catalog WithView(Catalog catalog, const std::string& name) {
  auto view = catalog.DefineProjectionView(
      name, "Employee", {"SSN", "date_of_birth", "pay_rate"});
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return catalog;
}

TEST(EpochCatalogTest, PublishRetireReclaimLifecycle) {
  EpochCatalog epochs;
  epochs.Publish(PersonEmployeeCatalog(), 1);
  EXPECT_EQ(epochs.published_version(), 1u);
  EXPECT_EQ(epochs.retired_pending(), 0u);

  {
    EpochCatalog::Pin pin(epochs);
    ASSERT_NE(pin.get(), nullptr);
    EXPECT_EQ(pin.version(), 1u);
    EXPECT_TRUE(pin->views().empty());

    // Publishing past the pin retires v1 but must not free it.
    epochs.Publish(WithView(PersonEmployeeCatalog(), "EmployeeView"), 2);
    EXPECT_EQ(epochs.published_version(), 2u);
    EXPECT_EQ(epochs.retired_pending(), 1u);
    EXPECT_EQ(epochs.TryReclaim(), 0u);
    EXPECT_EQ(epochs.reclaimed(), 0u);

    // The pinned snapshot still serves its own state, not the new epoch's.
    EXPECT_TRUE(pin->views().empty());

    // A fresh pin lands on the new epoch.
    EpochCatalog::Pin fresh(epochs);
    EXPECT_EQ(fresh.version(), 2u);
    EXPECT_EQ(fresh->views().size(), 1u);
  }

  // Last reader gone: the retired epoch is reclaimable.
  EXPECT_EQ(epochs.TryReclaim(), 1u);
  EXPECT_EQ(epochs.reclaimed(), 1u);
  EXPECT_EQ(epochs.retired_pending(), 0u);
}

TEST(EpochCatalogTest, PinnedSchemaStaysInternallyConsistent) {
  EpochCatalog epochs;
  epochs.Publish(WithView(PersonEmployeeCatalog(), "EmployeeView"), 1);

  EpochCatalog::Pin pin(epochs);
  auto view = pin->FindView("EmployeeView");
  ASSERT_TRUE(view.ok());
  TypeId derived = (*view)->derived;
  TypeId source = (*view)->source;
  // Warm the subtype caches on the pinned snapshot, record the answers.
  bool source_le_derived = pin->schema().types().IsSubtype(source, derived);
  bool derived_le_source = pin->schema().types().IsSubtype(derived, source);

  // Writers storm past the pin: new epochs with the view dropped again.
  for (uint64_t v = 2; v < 10; ++v) {
    epochs.Publish(PersonEmployeeCatalog(), v);
  }

  // The pinned epoch (and its caches) must answer exactly as before.
  EXPECT_EQ(pin->schema().types().IsSubtype(source, derived),
            source_le_derived);
  EXPECT_EQ(pin->schema().types().IsSubtype(derived, source),
            derived_le_source);
  EXPECT_TRUE(pin->FindView("EmployeeView").ok());
  EXPECT_EQ(pin.version(), 1u);
}

TEST(EpochCatalogTest, StalePublishIsDropped) {
  EpochCatalog epochs;
  epochs.Publish(WithView(PersonEmployeeCatalog(), "V5"), 5);
  epochs.Publish(PersonEmployeeCatalog(), 3);  // stale: must not regress
  EXPECT_EQ(epochs.published_version(), 5u);
  EpochCatalog::Pin pin(epochs);
  EXPECT_TRUE(pin->FindView("V5").ok());
}

TEST(EpochCatalogTest, NestedPinsShareTheSlotConservatively) {
  EpochCatalog epochs;
  epochs.Publish(PersonEmployeeCatalog(), 1);

  EpochCatalog::Pin outer(epochs);
  EXPECT_EQ(outer.version(), 1u);
  epochs.Publish(WithView(PersonEmployeeCatalog(), "V2"), 2);
  {
    // The inner pin sees the newest epoch but must not overwrite the
    // thread's (older, more conservative) announce.
    EpochCatalog::Pin inner(epochs);
    EXPECT_EQ(inner.version(), 2u);
  }
  epochs.Publish(WithView(PersonEmployeeCatalog(), "V3"), 3);

  // Both retired epochs are still protected by the outer pin's announce.
  EXPECT_EQ(epochs.retired_pending(), 2u);
  EXPECT_EQ(epochs.TryReclaim(), 0u);
  EXPECT_EQ(outer.version(), 1u);
  EXPECT_TRUE(outer->views().empty());
}

TEST(EpochCatalogTest, UnpinningLastOfManyReadersFrees) {
  EpochCatalog epochs;
  epochs.Publish(PersonEmployeeCatalog(), 1);

  constexpr int kReaders = 8;
  std::atomic<int> pinned{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      EpochCatalog::Pin pin(epochs);
      EXPECT_EQ(pin.version(), 1u);
      pinned.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      EXPECT_TRUE(pin->views().empty());
    });
  }
  while (pinned.load() < kReaders) std::this_thread::yield();

  epochs.Publish(WithView(PersonEmployeeCatalog(), "V2"), 2);
  EXPECT_EQ(epochs.retired_pending(), 1u);
  EXPECT_EQ(epochs.TryReclaim(), 0u);  // every reader still pins v1

  release.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(epochs.TryReclaim(), 1u);
  EXPECT_EQ(epochs.reclaimed(), 1u);
}

// Integration with the durable commit path: every acknowledged commit
// publishes an epoch, old epochs reclaim once unpinned, and a pin taken
// before a commit keeps serving the pre-commit state.
TEST(EpochCatalogTest, DurableCatalogPublishesPerCommitEpochs) {
  std::string dir =
      (fs::temp_directory_path() / "tyder_epoch_durable_test").string();
  fs::remove_all(dir);
  auto db = storage::DurableCatalog::Open(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->Seed(PersonEmployeeCatalog()).ok());

  {
    auto seeded = db->PinSnapshot();
    EXPECT_EQ(seeded.version(), 0u);
    EXPECT_TRUE(seeded->views().empty());

    ASSERT_TRUE(
        db->DefineProjectionView("EmployeeView", "Employee", {"SSN"}).ok());
    EXPECT_EQ(db->last_lsn(), 1u);
    EXPECT_EQ(db->epochs().published_version(), 1u);

    // The pre-commit pin is unaffected; a fresh pin sees the commit.
    EXPECT_TRUE(seeded->views().empty());
    {
      auto pin = db->PinSnapshot();
      EXPECT_EQ(pin.version(), 1u);
      EXPECT_EQ(pin->views().size(), 1u);
    }

    ASSERT_TRUE(db->DropView("EmployeeView").ok());
    EXPECT_EQ(db->epochs().published_version(), 2u);

    // seeded still pins the version-0 epoch: nothing retired at or after
    // its announce may be freed while it lives.
    EXPECT_GT(db->epochs().retired_pending(), 0u);
  }
  // Last pin gone: every retired epoch reclaims.
  db->epochs().TryReclaim();
  EXPECT_GE(db->epochs().reclaimed(), 1u);
  EXPECT_EQ(db->epochs().retired_pending(), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tyder
