#include "core/augment.h"

#include <gtest/gtest.h>

#include "core/is_applicable.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class AugmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1(/*with_z_methods=*/true);
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    // Run the pipeline up to (but not including) Augment.
    auto verdicts =
        ComputeApplicableMethods(fx_.schema, fx_.a, fx_.Projection());
    ASSERT_TRUE(verdicts.ok()) << verdicts.status();
    applicable_ = verdicts->applicable;
    auto derived = FactorState(fx_.schema, fx_.a, fx_.Projection(), "ProjA",
                               &surrogates_, nullptr);
    ASSERT_TRUE(derived.ok()) << derived.status();
    derived_ = *derived;
  }

  std::string Name(TypeId t) { return fx_.schema.types().TypeName(t); }
  std::vector<std::string> SuperNames(TypeId t) {
    std::vector<std::string> out;
    for (TypeId s : fx_.schema.types().type(t).supertypes()) {
      out.push_back(Name(s));
    }
    return out;
  }

  testing::Example1Fixture fx_;
  SurrogateSet surrogates_;
  std::vector<MethodId> applicable_;
  TypeId derived_ = kInvalidType;
};

TEST_F(AugmentTest, ComputeAugmentSetIsPaperZ) {
  auto z = ComputeAugmentSet(fx_.schema, fx_.a, applicable_, surrogates_);
  ASSERT_TRUE(z.ok()) << z.status();
  EXPECT_EQ(*z, (std::set<TypeId>{fx_.d, fx_.g}));
}

TEST_F(AugmentTest, Figure5StructureAfterAugment) {
  auto z = ComputeAugmentSet(fx_.schema, fx_.a, applicable_, surrogates_);
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(Augment(fx_.schema, fx_.a, *z, &surrogates_, nullptr).ok());

  // Stateless surrogates ~G and ~D created and flagged.
  TypeId g_s = surrogates_.Of(fx_.g);
  TypeId d_s = surrogates_.Of(fx_.d);
  ASSERT_NE(g_s, kInvalidType);
  ASSERT_NE(d_s, kInvalidType);
  EXPECT_TRUE(surrogates_.augment_created.count(g_s) > 0);
  EXPECT_TRUE(surrogates_.augment_created.count(d_s) > 0);
  EXPECT_TRUE(fx_.schema.types().type(g_s).local_attributes().empty());
  EXPECT_TRUE(fx_.schema.types().type(d_s).local_attributes().empty());

  // Sources got their surrogate at highest precedence.
  EXPECT_EQ(SuperNames(fx_.g), (std::vector<std::string>{"~G"}));
  EXPECT_EQ(SuperNames(fx_.d), (std::vector<std::string>{"~D"}));

  // Figure 5: ~E gains ~G before ~H (G had precedence 1, H precedence 2);
  // ~B gains ~D before ~E.
  EXPECT_EQ(SuperNames(surrogates_.Of(fx_.e)),
            (std::vector<std::string>{"~G", "~H"}));
  EXPECT_EQ(SuperNames(surrogates_.Of(fx_.b)),
            (std::vector<std::string>{"~D", "~E"}));
  // ~C and ~F untouched.
  EXPECT_EQ(SuperNames(surrogates_.Of(fx_.c)),
            (std::vector<std::string>{"~F", "~E"}));
  EXPECT_EQ(SuperNames(surrogates_.Of(fx_.f)),
            (std::vector<std::string>{"~H"}));

  EXPECT_TRUE(fx_.schema.Validate().ok());
}

TEST_F(AugmentTest, XSourcesExcludesAugmentSurrogates) {
  auto z = ComputeAugmentSet(fx_.schema, fx_.a, applicable_, surrogates_);
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(Augment(fx_.schema, fx_.a, *z, &surrogates_, nullptr).ok());
  std::set<TypeId> x = surrogates_.XSources();
  EXPECT_EQ(x, (std::set<TypeId>{fx_.a, fx_.b, fx_.c, fx_.e, fx_.f, fx_.h}));
}

TEST_F(AugmentTest, EmptyZIsNoop) {
  size_t before = fx_.schema.types().NumTypes();
  ASSERT_TRUE(Augment(fx_.schema, fx_.a, {}, &surrogates_, nullptr).ok());
  EXPECT_EQ(fx_.schema.types().NumTypes(), before);
}

TEST_F(AugmentTest, SubtypePathToAugmentSurrogateExists) {
  // After Augment, the retyped z1 body (gv: ~G = pc: ~C) must type-check,
  // which needs ~C ≼ ~G.
  auto z = ComputeAugmentSet(fx_.schema, fx_.a, applicable_, surrogates_);
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(Augment(fx_.schema, fx_.a, *z, &surrogates_, nullptr).ok());
  EXPECT_TRUE(fx_.schema.types().IsSubtype(surrogates_.Of(fx_.c),
                                           surrogates_.Of(fx_.g)));
  EXPECT_TRUE(fx_.schema.types().IsSubtype(surrogates_.Of(fx_.b),
                                           surrogates_.Of(fx_.d)));
  EXPECT_TRUE(fx_.schema.types().IsSubtype(derived_, surrogates_.Of(fx_.g)));
}

TEST_F(AugmentTest, NoZWithoutAssignments) {
  // Without the z methods, no applicable method assigns a parameter into a
  // local, so Z is empty.
  auto fx = testing::BuildExample1(/*with_z_methods=*/false);
  ASSERT_TRUE(fx.ok());
  auto verdicts =
      ComputeApplicableMethods(fx->schema, fx->a, fx->Projection());
  ASSERT_TRUE(verdicts.ok());
  SurrogateSet surrogates;
  ASSERT_TRUE(FactorState(fx->schema, fx->a, fx->Projection(), "ProjA",
                          &surrogates, nullptr)
                  .ok());
  auto z = ComputeAugmentSet(fx->schema, fx->a, verdicts->applicable, surrogates);
  ASSERT_TRUE(z.ok());
  EXPECT_TRUE(z->empty());
}

}  // namespace
}  // namespace tyder
