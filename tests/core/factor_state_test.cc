#include "core/factor_state.h"

#include <gtest/gtest.h>

#include <chrono>

#include "objmodel/schema_printer.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class FactorStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }

  std::string Name(TypeId t) { return fx_.schema.types().TypeName(t); }
  std::vector<std::string> SuperNames(TypeId t) {
    std::vector<std::string> out;
    for (TypeId s : fx_.schema.types().type(t).supertypes()) {
      out.push_back(Name(s));
    }
    return out;
  }
  std::vector<std::string> LocalAttrNames(TypeId t) {
    std::vector<std::string> out;
    for (AttrId a : fx_.schema.types().type(t).local_attributes()) {
      out.push_back(fx_.schema.types().attribute(a).name.str());
    }
    return out;
  }

  testing::Example1Fixture fx_;
};

TEST_F(FactorStateTest, Figure4SurrogateStructure) {
  SurrogateSet surrogates;
  auto derived = FactorState(fx_.schema, fx_.a, fx_.Projection(), "ProjA",
                             &surrogates, nullptr);
  ASSERT_TRUE(derived.ok()) << derived.status();

  // Surrogates created for exactly X = {A, C, F, H, E, B}, in the paper's
  // Example 2 order.
  std::vector<std::string> created;
  for (TypeId t : surrogates.created) created.push_back(Name(t));
  EXPECT_EQ(created, (std::vector<std::string>{"ProjA", "~C", "~F", "~H",
                                               "~E", "~B"}));

  // Attribute movement: a2 -> ProjA, e2 -> ~E, h2 -> ~H; nothing else moves.
  EXPECT_EQ(LocalAttrNames(*derived), (std::vector<std::string>{"a2"}));
  EXPECT_EQ(LocalAttrNames(surrogates.Of(fx_.e)),
            (std::vector<std::string>{"e2"}));
  EXPECT_EQ(LocalAttrNames(surrogates.Of(fx_.h)),
            (std::vector<std::string>{"h2"}));
  EXPECT_EQ(LocalAttrNames(surrogates.Of(fx_.c)), (std::vector<std::string>{}));
  EXPECT_EQ(LocalAttrNames(surrogates.Of(fx_.f)), (std::vector<std::string>{}));
  EXPECT_EQ(LocalAttrNames(surrogates.Of(fx_.b)), (std::vector<std::string>{}));
  EXPECT_EQ(LocalAttrNames(fx_.a), (std::vector<std::string>{"a1"}));
  EXPECT_EQ(LocalAttrNames(fx_.e), (std::vector<std::string>{"e1"}));
  EXPECT_EQ(LocalAttrNames(fx_.h), (std::vector<std::string>{"h1"}));

  // Figure 4 edges. Each source type gets its surrogate at highest
  // precedence; surrogate-to-surrogate edges mirror the original precedence.
  EXPECT_EQ(SuperNames(fx_.a), (std::vector<std::string>{"ProjA", "C", "B"}));
  EXPECT_EQ(SuperNames(fx_.c), (std::vector<std::string>{"~C", "F", "E"}));
  EXPECT_EQ(SuperNames(fx_.f), (std::vector<std::string>{"~F", "H"}));
  EXPECT_EQ(SuperNames(fx_.h), (std::vector<std::string>{"~H"}));
  EXPECT_EQ(SuperNames(fx_.e), (std::vector<std::string>{"~E", "G", "H"}));
  EXPECT_EQ(SuperNames(fx_.b), (std::vector<std::string>{"~B", "D", "E"}));
  EXPECT_EQ(SuperNames(*derived), (std::vector<std::string>{"~C", "~B"}));
  EXPECT_EQ(SuperNames(surrogates.Of(fx_.c)),
            (std::vector<std::string>{"~F", "~E"}));
  EXPECT_EQ(SuperNames(surrogates.Of(fx_.f)), (std::vector<std::string>{"~H"}));
  EXPECT_EQ(SuperNames(surrogates.Of(fx_.e)), (std::vector<std::string>{"~H"}));
  EXPECT_EQ(SuperNames(surrogates.Of(fx_.b)), (std::vector<std::string>{"~E"}));
  // Untouched types.
  EXPECT_EQ(SuperNames(fx_.d), (std::vector<std::string>{}));
  EXPECT_EQ(SuperNames(fx_.g), (std::vector<std::string>{}));

  EXPECT_TRUE(fx_.schema.Validate().ok());
}

TEST_F(FactorStateTest, Example2TraceMatchesPaperCallSequence) {
  SurrogateSet surrogates;
  std::vector<std::string> trace;
  auto derived = FactorState(fx_.schema, fx_.a, fx_.Projection(), "ProjA",
                             &surrogates, &trace);
  ASSERT_TRUE(derived.ok());
  // The paper's Example 2 recursive call sequence.
  std::vector<std::string> calls;
  for (const std::string& line : trace) {
    if (line.rfind("FactorState(", 0) == 0) calls.push_back(line);
  }
  EXPECT_EQ(calls,
            (std::vector<std::string>{
                "FactorState({a2,e2,h2}, A, -, 0)",
                "FactorState({e2,h2}, C, ProjA, 1)",
                "FactorState({h2}, F, ~C, 1)",
                "FactorState({h2}, H, ~F, 1)",
                "FactorState({e2,h2}, E, ~C, 2)",
                "FactorState({h2}, H, ~E, 2)",
                "FactorState({e2,h2}, B, ProjA, 2)",
                "FactorState({e2,h2}, E, ~B, 2)",
            }));
}

TEST_F(FactorStateTest, DerivedTypeStateIsExactlyProjection) {
  SurrogateSet surrogates;
  auto derived = FactorState(fx_.schema, fx_.a, fx_.Projection(), "ProjA",
                             &surrogates, nullptr);
  ASSERT_TRUE(derived.ok());
  std::set<std::string> names;
  for (AttrId a : fx_.schema.types().CumulativeAttributes(*derived)) {
    names.insert(fx_.schema.types().attribute(a).name.str());
  }
  EXPECT_EQ(names, (std::set<std::string>{"a2", "e2", "h2"}));
}

TEST_F(FactorStateTest, CumulativeStateOfOriginalsUnchanged) {
  std::map<TypeId, std::set<std::string>> before;
  for (TypeId t = 0; t < fx_.schema.types().NumTypes(); ++t) {
    std::set<std::string> names;
    for (AttrId a : fx_.schema.types().CumulativeAttributes(t)) {
      names.insert(fx_.schema.types().attribute(a).name.str());
    }
    before[t] = std::move(names);
  }
  SurrogateSet surrogates;
  ASSERT_TRUE(FactorState(fx_.schema, fx_.a, fx_.Projection(), "ProjA",
                          &surrogates, nullptr)
                  .ok());
  for (const auto& [t, names] : before) {
    std::set<std::string> after;
    for (AttrId a : fx_.schema.types().CumulativeAttributes(t)) {
      after.insert(fx_.schema.types().attribute(a).name.str());
    }
    EXPECT_EQ(after, names) << Name(t);
  }
}

TEST_F(FactorStateTest, ProjectionOfLocalAttributeOnly) {
  // Π_{a1} A: only A itself is factored; no supertype holds a1.
  SurrogateSet surrogates;
  auto derived =
      FactorState(fx_.schema, fx_.a, {fx_.a1}, "OnlyA1", &surrogates, nullptr);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(surrogates.created.size(), 1u);
  EXPECT_TRUE(SuperNames(*derived).empty());
  EXPECT_EQ(LocalAttrNames(*derived), (std::vector<std::string>{"a1"}));
}

TEST_F(FactorStateTest, SurrogateReuseOnDiamond) {
  // h2 reaches A through both F and E: ~H is created once and shared.
  SurrogateSet surrogates;
  ASSERT_TRUE(FactorState(fx_.schema, fx_.a, {fx_.h2}, "OnlyH2", &surrogates,
                          nullptr)
                  .ok());
  int h_surrogates = 0;
  for (TypeId t : surrogates.created) {
    if (fx_.schema.types().type(t).surrogate_source() == fx_.h) {
      ++h_surrogates;
    }
  }
  EXPECT_EQ(h_surrogates, 1);
}

TEST_F(FactorStateTest, EmptyProjectionRejected) {
  SurrogateSet surrogates;
  EXPECT_FALSE(
      FactorState(fx_.schema, fx_.a, {}, "Bad", &surrogates, nullptr).ok());
}

TEST_F(FactorStateTest, UnavailableAttributeRejected) {
  SurrogateSet surrogates;
  EXPECT_FALSE(
      FactorState(fx_.schema, fx_.h, {fx_.a1}, "Bad", &surrogates, nullptr)
          .ok());
}

TEST_F(FactorStateTest, SecondDerivationGetsFreshUniquelyNamedSurrogates) {
  SurrogateSet first;
  ASSERT_TRUE(FactorState(fx_.schema, fx_.a, {fx_.h2}, "V1", &first, nullptr)
                  .ok());
  SurrogateSet second;
  auto v2 = FactorState(fx_.schema, fx_.a, {fx_.e2}, "V2", &second, nullptr);
  ASSERT_TRUE(v2.ok()) << v2.status();
  // Names never collide; every created surrogate is distinct from the first
  // derivation's.
  for (TypeId t : second.created) {
    for (TypeId u : first.created) EXPECT_NE(t, u);
  }
  EXPECT_TRUE(fx_.schema.Validate().ok());
}

// Regression for the chaos-exposed exponential blowup: repeating an
// identical projection must reuse the already-factored surrogate structure
// and add exactly one type (the named view) per repetition. Before the fix
// every repetition re-surrogated the factored region and DOUBLED the type
// count — 50 repetitions would need ~2^50 types; op 15 alone took 40+
// seconds. With reuse, 50 repetitions are near-instant.
TEST_F(FactorStateTest, FiftyIdenticalProjectionsAddOneTypeEach) {
  const std::set<AttrId> attrs = fx_.Projection();
  SurrogateSet first;
  ASSERT_TRUE(
      FactorState(fx_.schema, fx_.a, attrs, "R0", &first, nullptr).ok());
  size_t after_first = fx_.schema.types().NumTypes();

  auto start = std::chrono::steady_clock::now();
  for (int i = 1; i < 50; ++i) {
    SurrogateSet surrogates;
    auto view = FactorState(fx_.schema, fx_.a, attrs,
                            "R" + std::to_string(i), &surrogates, nullptr);
    ASSERT_TRUE(view.ok()) << "repetition " << i << ": " << view.status();
    // Exactly the named view type was created; the factored region (~B, ~C,
    // ~E, ~F, ~H from the first derivation) is shared, not re-surrogated.
    EXPECT_EQ(fx_.schema.types().NumTypes(), after_first + i)
        << "repetition " << i;
    EXPECT_EQ(surrogates.created.size(), 1u) << "repetition " << i;
    // Every repetition's view projects the same cumulative state.
    EXPECT_EQ(fx_.schema.types().CumulativeAttributes(*view).size(),
              attrs.size());
  }
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(fx_.schema.Validate().ok());
  // Generous wall-clock bound: with the doubling bug this loop does not
  // terminate in any practical amount of time; with reuse it takes
  // milliseconds even under sanitizers.
  EXPECT_LT(elapsed, 30.0);
}

}  // namespace
}  // namespace tyder
