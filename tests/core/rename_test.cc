#include "core/algebra.h"

#include <gtest/gtest.h>

#include "instances/interp.h"
#include "instances/view_materialize.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class RenameViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }
  testing::PersonEmployeeFixture fx_;
};

TEST_F(RenameViewTest, ViewKeepsFullStateAndAddsAliases) {
  auto result = DeriveRenameView(
      fx_.schema, fx_.employee,
      {{"SSN", "taxpayer_id"}, {"pay_rate", "hourly_wage"}}, "HrView");
  ASSERT_TRUE(result.ok()) << result.status();
  // Full state on the view.
  EXPECT_EQ(fx_.schema.types().CumulativeAttributes(result->derived).size(),
            5u);
  // Alias generic functions exist; the original accessors survive.
  EXPECT_TRUE(fx_.schema.FindGenericFunction("get_taxpayer_id").ok());
  EXPECT_TRUE(fx_.schema.FindGenericFunction("set_hourly_wage").ok());
  EXPECT_TRUE(fx_.schema.FindGenericFunction("get_SSN").ok());
}

TEST_F(RenameViewTest, AliasReadsAndWritesTheSameSlot) {
  auto result = DeriveRenameView(fx_.schema, fx_.employee,
                                 {{"pay_rate", "hourly_wage"}}, "HrView");
  ASSERT_TRUE(result.ok()) << result.status();
  ObjectStore store;
  auto view_obj = store.CreateObject(fx_.schema, result->derived);
  ASSERT_TRUE(view_obj.ok());
  Interpreter interp(fx_.schema, &store);
  // Write through the alias, read through the original.
  ASSERT_TRUE(interp
                  .CallByName("set_hourly_wage",
                              {Value::Object(*view_obj), Value::Float(99)})
                  .ok());
  auto through_original =
      interp.CallByName("get_pay_rate", {Value::Object(*view_obj)});
  ASSERT_TRUE(through_original.ok()) << through_original.status();
  EXPECT_EQ(*through_original, Value::Float(99));
  auto through_alias =
      interp.CallByName("get_hourly_wage", {Value::Object(*view_obj)});
  ASSERT_TRUE(through_alias.ok());
  EXPECT_EQ(*through_alias, Value::Float(99));
}

TEST_F(RenameViewTest, AliasAccessorsScopedToTheView) {
  auto result = DeriveRenameView(fx_.schema, fx_.employee,
                                 {{"pay_rate", "hourly_wage"}}, "HrView");
  ASSERT_TRUE(result.ok());
  // The alias formal is the view type; a plain Employee object still
  // dispatches (Employee ≼ HrView after factoring)...
  ObjectStore store;
  auto emp = store.CreateObject(fx_.schema, fx_.employee);
  ASSERT_TRUE(emp.ok());
  Interpreter interp(fx_.schema, &store);
  EXPECT_TRUE(
      interp.CallByName("get_hourly_wage", {Value::Object(*emp)}).ok());
  // ...but a bare Person does not (pay_rate is below Person).
  auto person = store.CreateObject(fx_.schema, fx_.person);
  ASSERT_TRUE(person.ok());
  EXPECT_FALSE(
      interp.CallByName("get_hourly_wage", {Value::Object(*person)}).ok());
}

TEST_F(RenameViewTest, ValidationErrors) {
  // Unknown attribute.
  EXPECT_FALSE(
      DeriveRenameView(fx_.schema, fx_.employee, {{"ghost", "g"}}, "V").ok());
  // Alias collides with an existing attribute name.
  EXPECT_FALSE(
      DeriveRenameView(fx_.schema, fx_.employee, {{"SSN", "name"}}, "V").ok());
  // Duplicate alias.
  EXPECT_FALSE(DeriveRenameView(fx_.schema, fx_.employee,
                                {{"SSN", "x"}, {"pay_rate", "x"}}, "V")
                   .ok());
  // Empty rename list.
  EXPECT_FALSE(DeriveRenameView(fx_.schema, fx_.employee, {}, "V").ok());
  // Attribute not available at source.
  EXPECT_FALSE(
      DeriveRenameView(fx_.schema, fx_.person, {{"pay_rate", "w"}}, "V").ok());
}

TEST_F(RenameViewTest, BehaviorOfExistingTypesPreserved) {
  ObjectStore store;
  auto emp = store.CreateObject(fx_.schema, fx_.employee);
  ASSERT_TRUE(emp.ok());
  ASSERT_TRUE(store.SetSlot(*emp, fx_.pay_rate, Value::Float(10)).ok());
  ASSERT_TRUE(store.SetSlot(*emp, fx_.hrs_worked, Value::Float(5)).ok());
  Interpreter before(fx_.schema, &store);
  Value income = *before.CallByName("income", {Value::Object(*emp)});
  auto result = DeriveRenameView(fx_.schema, fx_.employee,
                                 {{"pay_rate", "hourly_wage"}}, "HrView");
  ASSERT_TRUE(result.ok()) << result.status();
  Interpreter after(fx_.schema, &store);
  EXPECT_EQ(*after.CallByName("income", {Value::Object(*emp)}), income);
}

}  // namespace
}  // namespace tyder
