// Proof of the all-or-nothing guarantee (core/transaction.h): for every
// registered fault point, injecting a failure mid-operation must leave the
// schema serializing byte-identically to its pre-call snapshot (checked with
// catalog/serialize and catalog/diff), and a subsequent un-faulted run of the
// same operation must succeed — a failed derivation may not poison the
// schema. Also covers the SchemaTransaction primitive itself, the fail-point
// registry semantics, and the rollback metrics.

#include "core/transaction.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>

#include "catalog/catalog.h"
#include "catalog/diff.h"
#include "catalog/serialize.h"
#include "common/failpoint.h"
#include "core/collapse.h"
#include "core/projection.h"
#include "core/revert.h"
#include "obs/metrics.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

// ---------------------------------------------------------------------------
// SchemaTransaction primitive.

TEST(SchemaTransactionTest, DestructorRollsBackByteIdentical) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  std::string pre = SerializeSchema(fx->schema);
  {
    SchemaTransaction txn(fx->schema);
    // The inner derivation commits its own (nested) transaction; the
    // uncommitted outer one must still restore the pre-call state over it.
    auto derived = DeriveProjectionByName(
        fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V");
    ASSERT_TRUE(derived.ok()) << derived.status();
    ASSERT_NE(SerializeSchema(fx->schema), pre);
  }
  EXPECT_EQ(SerializeSchema(fx->schema), pre);
  EXPECT_FALSE(fx->schema.types().FindType("V").ok());
}

TEST(SchemaTransactionTest, CommitKeepsMutations) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  {
    SchemaTransaction txn(fx->schema);
    ASSERT_TRUE(DeriveProjectionByName(fx->schema, "Employee",
                                       {"SSN", "date_of_birth", "pay_rate"},
                                       "V")
                    .ok());
    EXPECT_TRUE(txn.Commit().ok());
    EXPECT_TRUE(txn.committed());
  }
  EXPECT_TRUE(fx->schema.types().FindType("V").ok());
}

TEST(SchemaTransactionTest, SnapshotIsStablePreCallState) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  std::string pre = SerializeSchema(fx->schema);
  SchemaTransaction txn(fx->schema);
  ASSERT_TRUE(DeriveProjectionByName(fx->schema, "Employee",
                                     {"SSN", "date_of_birth", "pay_rate"}, "V")
                  .ok());
  // The snapshot does not follow the mutation — the verifier relies on this.
  EXPECT_EQ(SerializeSchema(txn.snapshot()), pre);
  EXPECT_TRUE(txn.Commit().ok());
}

TEST(SchemaTransactionTest, RollbackIsCountedInMetrics) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  obs::MetricsRegistry::Global().Reset();
  failpoint::Activate("verify.before", 1);
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V");
  failpoint::DeactivateAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(obs::MetricsRegistry::Global().CounterValue("projection.rollbacks"),
            1u);
}

// ---------------------------------------------------------------------------
// Fail-point registry semantics.

Status HitVerifyBeforePoint() {
  TYDER_FAULT_POINT("verify.before");
  return Status::OK();
}

TEST(FailPointTest, InactivePointIsANoop) {
  failpoint::DeactivateAll();
  EXPECT_TRUE(HitVerifyBeforePoint().ok());
}

TEST(FailPointTest, CountedActivationFiresExactlyNTimes) {
  failpoint::DeactivateAll();
  failpoint::Activate("verify.before", 2);
  EXPECT_FALSE(HitVerifyBeforePoint().ok());
  EXPECT_FALSE(HitVerifyBeforePoint().ok());
  EXPECT_TRUE(HitVerifyBeforePoint().ok());  // shots exhausted
}

TEST(FailPointTest, AlwaysActivationFiresUntilDeactivated) {
  failpoint::Activate("verify.before");
  uint64_t fires = failpoint::FireCount("verify.before");
  for (int i = 0; i < 5; ++i) {
    Status status = HitVerifyBeforePoint();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("verify.before"), std::string::npos);
  }
  EXPECT_EQ(failpoint::FireCount("verify.before"), fires + 5);
  failpoint::Deactivate("verify.before");
  EXPECT_TRUE(HitVerifyBeforePoint().ok());
}

TEST(FailPointTest, RegistryIsSortedUniqueAndNonEmpty) {
  const auto& names = failpoint::AllFaultPointNames();
  ASSERT_FALSE(names.empty());
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]) << "registry not sorted/unique";
  }
  for (const std::string& name : names) {
    EXPECT_NE(failpoint::GetPoint(name), nullptr);
  }
}

// ---------------------------------------------------------------------------
// The tentpole: every registered fault point, when fired, rolls back cleanly.

// Runs `op` with `point` armed and proves the failure left `schema` exactly
// as it was; then proves `retry` (the same operation, un-faulted) succeeds.
void CheckFaultedOpRollsBack(const std::string& point, Schema& schema,
                             const std::function<Status()>& op,
                             const std::function<Status()>& retry) {
  SCOPED_TRACE("fault point: " + point);
  Schema before = schema;
  std::string pre = SerializeSchema(schema);
  uint64_t fires = failpoint::FireCount(point);

  failpoint::Activate(point);
  Status status = op();
  failpoint::DeactivateAll();

  ASSERT_GT(failpoint::FireCount(point), fires)
      << "fault point was never reached by its mapped operation";
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("fault injected"), std::string::npos)
      << status;

  // All-or-nothing: byte-identical serialization and an empty structural
  // diff against the pre-call snapshot.
  EXPECT_EQ(SerializeSchema(schema), pre);
  EXPECT_TRUE(DiffSchemas(before, schema).empty())
      << DiffToString(DiffSchemas(before, schema));

  // The schema is not poisoned: the same operation succeeds afterwards.
  Status again = retry();
  EXPECT_TRUE(again.ok()) << again;
}

TEST(AllOrNothingTest, EveryRegisteredFaultPointRollsBackCleanly) {
  std::set<std::string> covered;
  auto covers = [&covered](const std::string& point) {
    covered.insert(point);
    return point;
  };

  // Pipeline points fire inside DeriveProjection. Example 1 with the Z
  // methods drives every phase: Z = {D, G} is non-empty, so the augment
  // points are reached; the Employee example below covers the catalog side.
  const char* kPipelinePoints[] = {
      "is_applicable.before", "is_applicable.mid", "factor_state.before",
      "factor_state.mid",     "augment.before",    "augment.mid",
      "augment.after_compute", "factor_methods.before", "factor_methods.mid",
      "verify.before",        "verify.force_failure",
  };
  for (const char* point : kPipelinePoints) {
    auto fx = testing::BuildExample1(/*with_z_methods=*/true);
    ASSERT_TRUE(fx.ok()) << fx.status();
    ProjectionSpec spec;
    spec.source = fx->a;
    spec.attributes = {fx->a2, fx->e2, fx->h2};
    spec.view_name = "ProjA";
    auto derive = [&] {
      return DeriveProjection(fx->schema, spec).status();
    };
    CheckFaultedOpRollsBack(covers(point), fx->schema, derive, derive);
  }

  // Revert points fire inside RevertDerivation, after a committed
  // derivation on the paper's Employee example.
  {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    auto derived = DeriveProjectionByName(
        fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V");
    ASSERT_TRUE(derived.ok()) << derived.status();
    Schema with_view = fx->schema;  // post-derivation state
    for (const char* point : {"revert.before", "revert.mid"}) {
      fx->schema = with_view;  // the previous retry reverted for real
      CheckFaultedOpRollsBack(
          covers(point), fx->schema,
          [&] { return RevertDerivation(fx->schema, *derived); },
          [&] { return RevertDerivation(fx->schema, *derived); });
    }
  }

  // Collapse points: deriving ProjA on Example 1 leaves ~F as an empty,
  // unreferenced surrogate, so CollapseEmptySurrogates has a real splice to
  // roll back (collapse_test.cc pins exactly this collapse).
  for (const char* point : {"collapse.before", "collapse.mid"}) {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    ProjectionSpec spec;
    spec.source = fx->a;
    spec.attributes = {fx->a2, fx->e2, fx->h2};
    spec.view_name = "ProjA";
    auto derived = DeriveProjection(fx->schema, spec);
    ASSERT_TRUE(derived.ok()) << derived.status();
    std::set<TypeId> keep = {derived->derived};
    auto collapse = [&] {
      return CollapseEmptySurrogates(fx->schema, keep).status();
    };
    CheckFaultedOpRollsBack(covers(point), fx->schema, collapse, collapse);
  }

  // Catalog points: the registry update and the schema mutation must land
  // (or vanish) together.
  {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    Catalog catalog(std::move(fx->schema));
    auto define = [&] {
      return catalog
          .DefineProjectionView("V", "Employee",
                                {"SSN", "date_of_birth", "pay_rate"})
          .status();
    };
    CheckFaultedOpRollsBack(covers("catalog.define.after_derive"),
                            catalog.schema(), define, define);
    EXPECT_EQ(catalog.views().size(), 1u);  // only the retry landed

    auto drop = [&] { return catalog.DropView("V"); };
    CheckFaultedOpRollsBack(covers("catalog.drop.mid"), catalog.schema(), drop,
                            drop);
    EXPECT_TRUE(catalog.views().empty());  // only the retry landed
  }

  // The loop above must cover the whole registry — adding a fault point to
  // failpoint.cc without mapping it here fails loudly. The storage.* points
  // guard on-disk state, not schema rollback; their pre-or-post recovery
  // contract is proved by tests/storage/crash_matrix_test.cc. The chaos.*
  // points are behavior perturbations, not failures — nothing returns
  // non-OK, so there is no rollback to prove; the differential fuzzer's
  // known-bad test (tests/fuzz/known_bad_test.cc) is their coverage. The
  // net.* points fire on the transport, above the schema transaction; their
  // ack/nack/indeterminate contract is proved by
  // tests/net/net_fault_matrix_test.cc and the chaos harness.
  for (const std::string& name : failpoint::AllFaultPointNames()) {
    if (name.rfind("storage.", 0) == 0) continue;
    if (name.rfind("chaos.", 0) == 0) continue;
    if (name.rfind("net.", 0) == 0) continue;
    EXPECT_TRUE(covered.count(name) > 0)
        << "fault point '" << name
        << "' is registered but has no rollback coverage in this test";
  }
}

// Regression: a phase-5 verifier rejection is a *semantic* failure (the
// report path, not a Status propagated from below) and must restore the
// schema exactly like any other pipeline failure (ProjectionOptions::verify
// failure contract in core/projection.h).
TEST(AllOrNothingTest, VerifyRejectionRestoresSchema) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  std::string pre = SerializeSchema(fx->schema);

  failpoint::Activate("verify.force_failure", 1);
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V");
  failpoint::DeactivateAll();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("broke an invariant"),
            std::string::npos)
      << result.status();
  EXPECT_EQ(SerializeSchema(fx->schema), pre);
  EXPECT_FALSE(fx->schema.types().FindType("V").ok());

  // The rejected derivation left nothing behind: it still works un-faulted.
  auto again = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V");
  EXPECT_TRUE(again.ok()) << again.status();
}

// `tyderc --no-verify` path: rollback does not depend on the verifier — a
// mid-pipeline failure with verification off restores the schema too.
TEST(AllOrNothingTest, RollbackDoesNotDependOnVerifier) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  std::string pre = SerializeSchema(fx->schema);

  ProjectionOptions options;
  options.verify = false;
  failpoint::Activate("factor_methods.mid", 1);
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V",
      options);
  failpoint::DeactivateAll();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(SerializeSchema(fx->schema), pre);
  auto again = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V",
      options);
  EXPECT_TRUE(again.ok()) << again.status();
}

}  // namespace
}  // namespace tyder
