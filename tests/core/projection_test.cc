#include "core/projection.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "methods/applicability.h"
#include "objmodel/schema_printer.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(ProjectionTest, SimpleExampleEndToEnd) {
  // Section 3.1: Π_{SSN, date_of_birth, pay_rate} Employee.
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok()) << result.status();

  // income inapplicable; age and promote applicable.
  EXPECT_FALSE(result->applicability.IsApplicable(fx->income));
  EXPECT_TRUE(result->applicability.IsApplicable(fx->age));
  EXPECT_TRUE(result->applicability.IsApplicable(fx->promote));

  // Figure 2: Person is split into ~Person{SSN, date_of_birth} + Person{name};
  // EmployeeView holds pay_rate and inherits from ~Person.
  const TypeGraph& g = fx->schema.types();
  auto person_s = result->surrogates.Of(fx->person);
  ASSERT_NE(person_s, kInvalidType);
  EXPECT_EQ(PrintType(g, result->derived),
            "EmployeeView [surrogate of Employee] {pay_rate: Float} <- "
            "~Person(0)");
  EXPECT_EQ(PrintType(g, person_s),
            "~Person [surrogate of Person] {SSN: String, date_of_birth: Date}");
  EXPECT_EQ(PrintType(g, fx->person),
            "Person {name: String} <- ~Person(0)");
  EXPECT_EQ(PrintType(g, fx->employee),
            "Employee {hrs_worked: Float} <- EmployeeView(0), Person(1)");
}

TEST(ProjectionTest, DerivedTypeBehaviorMatchesApplicability) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok());
  for (MethodId m : result->applicability.applicable) {
    EXPECT_TRUE(ApplicableToType(fx->schema, m, result->derived))
        << fx->schema.method(m).label.view();
  }
  for (MethodId m : result->applicability.not_applicable) {
    EXPECT_FALSE(ApplicableToType(fx->schema, m, result->derived))
        << fx->schema.method(m).label.view();
  }
}

TEST(ProjectionTest, InternalVerifierAcceptsPaperExamples) {
  // options.verify = true (default) runs the full behavior-preservation
  // check inside DeriveProjection; a failure would surface as an error.
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  auto result = DeriveProjection(fx->schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->augment_z, (std::set<TypeId>{fx->d, fx->g}));
}

TEST(ProjectionTest, TraceCoversAllPhases) {
  auto fx = testing::BuildExample1(true);
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ProjectionOptions options;
  options.record_trace = true;
  auto result = DeriveProjection(fx->schema, spec, options);
  ASSERT_TRUE(result.ok());
  std::string joined;
  for (const std::string& line : result->trace) joined += line + "\n";
  EXPECT_NE(joined.find("-> NotApplicable"), std::string::npos);  // phase 1
  EXPECT_NE(joined.find("FactorState("), std::string::npos);      // phase 2
  EXPECT_NE(joined.find("Augment("), std::string::npos);          // phase 3
  EXPECT_NE(joined.find("=>"), std::string::npos);                // phase 4
}

// Regression: the narration now flows through the obs tracer as instant
// events, but the rendered `trace` lines must stay byte-for-byte what the
// pre-obs string-vector implementation produced.
TEST(ProjectionTest, TraceLinesAreStableAcrossTheObsRewrite) {
  auto fx = testing::BuildExample1(true);
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ProjectionOptions options;
  options.record_trace = true;
  auto result = DeriveProjection(fx->schema, spec, options);
  ASSERT_TRUE(result.ok());
  const std::vector<std::string>& trace = result->trace;
  auto index_of = [&trace](std::string_view line) {
    for (size_t i = 0; i < trace.size(); ++i) {
      if (trace[i] == line) return static_cast<ptrdiff_t>(i);
    }
    return static_cast<ptrdiff_t>(-1);
  };
  // One pinned line per paper phase, exact text.
  ptrdiff_t applicable =
      index_of("accessor get_h2 reads h2 (projected) -> Applicable");
  ptrdiff_t cycle = index_of("cycle: assume x1 applicable");
  ptrdiff_t evict = index_of("evict y1 (assumed x1 applicable)");
  ptrdiff_t factor = index_of("FactorState({e2,h2}, C, ProjA, 1)");
  ptrdiff_t surrogate = index_of("create ProjA [surrogate of A]");
  ptrdiff_t precedence = index_of("make ~C a supertype of ProjA with precedence 1");
  ptrdiff_t augment = index_of("create ~G [stateless surrogate of G]");
  ptrdiff_t rewrite = index_of("z1: z(C) -> G  =>  z(~C) -> ~G");
  EXPECT_GE(applicable, 0);
  EXPECT_GE(cycle, 0);
  EXPECT_GE(evict, 0);
  EXPECT_GE(factor, 0);
  EXPECT_GE(surrogate, 0);
  EXPECT_GE(precedence, 0);
  EXPECT_GE(augment, 0);
  EXPECT_GE(rewrite, 0);
  // And the phases appear in pipeline order.
  EXPECT_LT(applicable, cycle);
  EXPECT_LT(cycle, evict);
  EXPECT_LT(evict, surrogate);
  EXPECT_LT(surrogate, factor);
  EXPECT_LT(factor, precedence);
  EXPECT_LT(precedence, augment);
  EXPECT_LT(augment, rewrite);
}

TEST(ProjectionTest, ValidationErrors) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  // Unknown source type.
  EXPECT_FALSE(
      DeriveProjectionByName(fx->schema, "Nobody", {"SSN"}, "V").ok());
  // Unknown attribute.
  EXPECT_FALSE(
      DeriveProjectionByName(fx->schema, "Employee", {"salary"}, "V").ok());
  // Attribute not available at source (pay_rate is below Person).
  EXPECT_FALSE(
      DeriveProjectionByName(fx->schema, "Person", {"pay_rate"}, "V").ok());
  // Empty projection list.
  EXPECT_FALSE(DeriveProjectionByName(fx->schema, "Employee", {}, "V").ok());
  // Duplicate attribute.
  EXPECT_FALSE(
      DeriveProjectionByName(fx->schema, "Employee", {"SSN", "SSN"}, "V")
          .ok());
  // View name collision.
  EXPECT_FALSE(
      DeriveProjectionByName(fx->schema, "Employee", {"SSN"}, "Person").ok());
  // Builtin source.
  ProjectionSpec spec;
  spec.source = fx->schema.builtins().int_type;
  spec.attributes = {fx->ssn};
  spec.view_name = "V";
  EXPECT_FALSE(DeriveProjection(fx->schema, spec).ok());
}

TEST(ProjectionTest, FailedValidationLeavesSchemaUntouched) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  size_t types = fx->schema.types().NumTypes();
  ASSERT_FALSE(
      DeriveProjectionByName(fx->schema, "Person", {"pay_rate"}, "V").ok());
  EXPECT_EQ(fx->schema.types().NumTypes(), types);
}

TEST(ProjectionTest, ProjectionOverDerivedView) {
  // Views over views (Section 7): project the derived view again.
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto first = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = DeriveProjectionByName(fx->schema, "EmployeeView",
                                       {"SSN", "pay_rate"}, "PayView");
  ASSERT_TRUE(second.ok()) << second.status();
  std::set<std::string> attrs;
  for (AttrId a : fx->schema.types().CumulativeAttributes(second->derived)) {
    attrs.insert(fx->schema.types().attribute(a).name.str());
  }
  EXPECT_EQ(attrs, (std::set<std::string>{"SSN", "pay_rate"}));
  // age needs date_of_birth: not applicable to PayView; accessors for the
  // kept attributes are.
  EXPECT_FALSE(second->applicability.IsApplicable(fx->age));
}

TEST(ProjectionTest, ExplicitVerifyReportCleanForSimpleExample) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Schema before = fx->schema;
  ProjectionOptions options;
  options.verify = false;  // run the verifier manually instead
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView", options);
  ASSERT_TRUE(result.ok());
  VerifyReport report = VerifyDerivation(before, fx->schema, *result);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace tyder
