// Tests for the parallel batch-derivation driver (core/derive_batch.h):
// parallel analysis must agree with serial, apply mode must commit every
// passing projection, per-item failures must stay isolated, and — together
// with the fault-injection machinery — a rolled-back derivation must leave
// every derived cache (subtype closure, dispatch tables, call-site cache)
// consistent with the restored schema. The DeriveBatch* tests are also the
// ThreadSanitizer targets for the analysis pool (run_all.sh tsan).

#include "core/derive_batch.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/serialize.h"
#include "common/failpoint.h"
#include "core/projection.h"
#include "methods/dispatch.h"
#include "obs/obs.h"
#include "testing/fixtures.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

// Deterministic projection batch over a random schema: every type with
// cumulative attributes contributes one spec.
std::vector<ProjectionSpec> AllTypeSpecs(const Schema& schema) {
  std::vector<ProjectionSpec> specs;
  for (TypeId t = 0; t < schema.types().NumTypes(); ++t) {
    std::vector<AttrId> attrs = schema.types().CumulativeAttributes(t);
    if (attrs.empty()) continue;
    ProjectionSpec spec;
    spec.source = t;
    spec.attributes.assign(attrs.begin(),
                           attrs.begin() + (attrs.size() + 1) / 2);
    spec.view_name = "V_" + schema.types().TypeName(t);
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(DeriveBatchTest, ParallelAnalysisMatchesSerial) {
  for (uint32_t seed : {11u, 12u, 13u}) {
    testing::RandomSchemaOptions options;
    options.seed = seed;
    options.num_types = 14;
    options.num_general_methods = 12;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok()) << schema.status();
    std::vector<ProjectionSpec> specs = AllTypeSpecs(*schema);
    ASSERT_FALSE(specs.empty());

    BatchDeriveOptions serial;
    serial.jobs = 1;
    serial.apply = false;
    BatchDeriveReport serial_report = DeriveBatch(*schema, specs, serial);

    BatchDeriveOptions parallel;
    parallel.jobs = 4;
    parallel.apply = false;
    BatchDeriveReport parallel_report = DeriveBatch(*schema, specs, parallel);

    ASSERT_EQ(serial_report.items.size(), parallel_report.items.size());
    for (size_t i = 0; i < serial_report.items.size(); ++i) {
      const BatchItemResult& s = serial_report.items[i];
      const BatchItemResult& p = parallel_report.items[i];
      EXPECT_EQ(s.status.ok(), p.status.ok()) << "item " << i;
      EXPECT_EQ(s.applicability.applicable, p.applicability.applicable)
          << "item " << i << " seed " << seed;
      EXPECT_EQ(s.applicability.not_applicable, p.applicability.not_applicable)
          << "item " << i << " seed " << seed;
    }
    EXPECT_EQ(serial_report.analyzed_ok, parallel_report.analyzed_ok);
  }
}

TEST(DeriveBatchTest, AnalysisOnlyLeavesSchemaUntouched) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  size_t types_before = fx->schema.types().NumTypes();
  uint64_t version_before = fx->schema.version();
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "PA";
  BatchDeriveOptions options;
  options.jobs = 2;
  options.apply = false;
  BatchDeriveReport report = DeriveBatch(fx->schema, {spec, spec}, options);
  EXPECT_EQ(report.analyzed_ok, 2);
  EXPECT_EQ(report.applied, 0);
  EXPECT_EQ(fx->schema.types().NumTypes(), types_before);
  EXPECT_EQ(fx->schema.version(), version_before);
  // The analysis partition matches a direct DeriveProjection's.
  auto direct = DeriveProjection(fx->schema, spec);
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_EQ(report.items[0].applicability.applicable,
            direct->applicability.applicable);
}

TEST(DeriveBatchTest, ApplyCommitsEveryPassingProjection) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  ProjectionSpec first;
  first.source = fx->employee;
  first.attributes = {fx->ssn, fx->date_of_birth, fx->pay_rate};
  first.view_name = "EmpView";
  ProjectionSpec second;
  second.source = fx->person;
  second.attributes = {fx->ssn, fx->name};
  second.view_name = "PersonView";

  BatchDeriveOptions options;
  options.jobs = 2;
  options.apply = true;
  BatchDeriveReport report =
      DeriveBatch(fx->schema, {first, second}, options);
  EXPECT_EQ(report.applied, 2);
  EXPECT_EQ(report.failed, 0);
  for (const BatchItemResult& item : report.items) {
    ASSERT_TRUE(item.applied);
    EXPECT_EQ(fx->schema.types().TypeName(item.derived), item.spec.view_name);
  }
}

TEST(DeriveBatchTest, ItemFailuresAreIsolated) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  ProjectionSpec good;
  good.source = fx->employee;
  good.attributes = {fx->ssn, fx->date_of_birth, fx->pay_rate};
  good.view_name = "GoodView";
  ProjectionSpec bad;
  bad.source = fx->person;
  bad.attributes = {fx->pay_rate};  // Employee state, not available on Person
  bad.view_name = "BadView";

  BatchDeriveOptions options;
  options.jobs = 2;
  options.apply = true;
  BatchDeriveReport report =
      DeriveBatch(fx->schema, {bad, good, bad}, options);
  EXPECT_EQ(report.applied, 1);
  EXPECT_EQ(report.failed, 2);
  EXPECT_FALSE(report.items[0].status.ok());
  EXPECT_TRUE(report.items[1].applied);
  EXPECT_FALSE(report.items[2].status.ok());
  EXPECT_TRUE(fx->schema.types().FindType("GoodView").ok());
  EXPECT_FALSE(fx->schema.types().FindType("BadView").ok());
}

TEST(DeriveBatchTest, ResolveProjectionSpecReportsUnknownNames) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  EXPECT_EQ(ResolveProjectionSpec(fx->schema, "NoSuchType", {"SSN"}, "V")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ResolveProjectionSpec(fx->schema, "Person", {"no_such_attr"}, "V")
                .status()
                .code(),
            StatusCode::kNotFound);
  auto ok = ResolveProjectionSpec(fx->schema, "Person", {"SSN"}, "V");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->source, fx->person);
  EXPECT_EQ(ok->attributes, std::vector<AttrId>{fx->ssn});
}

// More workers than items, and an empty batch: the pool must not touch
// out-of-range indices or deadlock.
TEST(DeriveBatchTest, DegenerateBatchShapes) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  BatchDeriveOptions options;
  options.jobs = 8;
  options.apply = false;
  BatchDeriveReport empty = DeriveBatch(fx->schema, {}, options);
  EXPECT_TRUE(empty.items.empty());

  ProjectionSpec spec;
  spec.source = fx->person;
  spec.attributes = {fx->ssn};
  spec.view_name = "Solo";
  BatchDeriveReport solo = DeriveBatch(fx->schema, {spec}, options);
  ASSERT_EQ(solo.items.size(), 1u);
  EXPECT_TRUE(solo.items[0].status.ok());
  EXPECT_EQ(solo.analyzed_ok, 1);
}

// Duplicate view names inside one batch: analysis sees an unmutated schema,
// so both items analyze clean; the serial apply phase commits the first and
// refuses the second with AlreadyExists — without disturbing items after it.
TEST(DeriveBatchTest, DuplicateViewNameSecondItemFailsCleanly) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  ProjectionSpec dup;
  dup.source = fx->person;
  dup.attributes = {fx->ssn};
  dup.view_name = "DupView";
  ProjectionSpec tail;
  tail.source = fx->employee;
  tail.attributes = {fx->pay_rate};
  tail.view_name = "TailView";

  BatchDeriveOptions options;
  options.jobs = 3;
  options.apply = true;
  BatchDeriveReport report = DeriveBatch(fx->schema, {dup, dup, tail}, options);
  EXPECT_EQ(report.analyzed_ok, 3);
  EXPECT_EQ(report.applied, 2);
  EXPECT_EQ(report.failed, 1);
  EXPECT_TRUE(report.items[0].applied);
  EXPECT_FALSE(report.items[1].applied);
  EXPECT_EQ(report.items[1].status.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(report.items[2].applied);
  // Exactly one DupView exists, and it is the first item's derivation.
  auto found = fx->schema.types().FindType("DupView");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, report.items[0].derived);
  EXPECT_TRUE(fx->schema.types().FindType("TailView").ok());
  EXPECT_TRUE(fx->schema.Validate().ok());
}

// A batch item whose source was just collapsed (DropView detaches the view's
// type; ids stay stable) must fail per-item without touching the schema.
TEST(DeriveBatchTest, ProjectionOfJustCollapsedTypeFailsCleanly) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  const TypeGraph& g = fx->schema.types();
  std::vector<std::string> attr_names;
  for (AttrId a : fx->Projection()) {
    attr_names.push_back(g.attribute(a).name.str());
  }
  Catalog catalog(std::move(fx->schema));
  auto view = catalog.DefineProjectionView(
      "PV", catalog.schema().types().TypeName(fx->a), attr_names);
  ASSERT_TRUE(view.ok()) << view.status();
  TypeId stale = (*view)->derived;
  ASSERT_TRUE(catalog.DropView("PV").ok());
  ASSERT_TRUE(catalog.schema().types().type(stale).detached());

  Schema& schema = catalog.schema();
  // The detached type is refused by the derivation pipeline itself.
  ProjectionSpec direct;
  direct.source = stale;
  direct.attributes = {fx->a2};
  direct.view_name = "Zombie";
  Result<DerivationResult> refused = DeriveProjection(schema, direct);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // And through the batch driver: the stale item fails in isolation while a
  // live item in the same batch still commits.
  ProjectionSpec live;
  live.source = fx->a;
  live.attributes = {fx->a2, fx->e2};
  live.view_name = "LiveView";
  BatchDeriveOptions options;
  options.jobs = 2;
  options.apply = true;
  BatchDeriveReport report = DeriveBatch(schema, {direct, live}, options);
  EXPECT_FALSE(report.items[0].status.ok());
  EXPECT_FALSE(report.items[0].applied);
  EXPECT_TRUE(report.items[1].applied);
  EXPECT_EQ(report.applied, 1);
  EXPECT_EQ(report.failed, 1);
  EXPECT_FALSE(schema.types().FindType("Zombie").ok());
  EXPECT_TRUE(schema.types().FindType("LiveView").ok());

  // A batch of nothing-but-stale items is a no-op, byte for byte.
  Schema untouched = schema;
  std::string pre = SerializeSchema(untouched);
  BatchDeriveReport stale_only =
      DeriveBatch(untouched, {direct, direct}, options);
  EXPECT_EQ(stale_only.applied, 0);
  EXPECT_EQ(stale_only.failed, 2);
  EXPECT_EQ(SerializeSchema(untouched), pre);
}

// The rollback-invalidation satellite: warm every derived cache, force a
// mid-derivation fault so the transaction rolls the schema back, and verify
// the caches answer for the *restored* schema — the derived type's ids must
// not leak out of the closure, the dispatch tables, or the call-site cache.
TEST(DeriveBatchRollbackTest, RolledBackDerivationLeavesCachesConsistent) {
  for (const char* point : {"is_applicable.before", "is_applicable.mid",
                            "factor_state.mid", "factor_methods.mid"}) {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    Schema& schema = fx->schema;
    auto u = schema.FindGenericFunction("u");
    ASSERT_TRUE(u.ok());

    // Warm the closure, the dispatch tables, and a call site.
    EXPECT_TRUE(schema.types().IsSubtype(fx->a, fx->c));
    auto before = Dispatch(schema, *u, {fx->a});
    ASSERT_TRUE(before.ok());
    size_t types_before = schema.types().NumTypes();

    ProjectionSpec spec;
    spec.source = fx->a;
    spec.attributes = {fx->a2, fx->e2, fx->h2};
    spec.view_name = "DoomedView";
    failpoint::Activate(point, 1);
    Result<DerivationResult> derived = DeriveProjection(schema, spec);
    failpoint::DeactivateAll();
    ASSERT_FALSE(derived.ok()) << "fault point " << point << " did not fire";

    // Rolled back: no surrogate types survive, and every cached structure
    // answers for the restored hierarchy.
    EXPECT_EQ(schema.types().NumTypes(), types_before) << point;
    EXPECT_FALSE(schema.types().FindType("DoomedView").ok()) << point;
    EXPECT_TRUE(schema.types().IsSubtype(fx->a, fx->c)) << point;
    EXPECT_FALSE(schema.types().IsSubtype(fx->c, fx->a)) << point;
    auto after = Dispatch(schema, *u, {fx->a});
    ASSERT_TRUE(after.ok()) << point;
    EXPECT_EQ(*after, *before) << point;
    // And a subsequent, un-faulted derivation succeeds from the restored
    // state.
    spec.view_name = "RetryView";
    auto retry = DeriveProjection(schema, spec);
    EXPECT_TRUE(retry.ok()) << point << ": " << retry.status();
  }
}

}  // namespace
}  // namespace tyder
