#include "core/factor_methods.h"

#include <gtest/gtest.h>

#include "core/augment.h"
#include "core/is_applicable.h"
#include "mir/printer.h"
#include "mir/type_check.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class FactorMethodsTest : public ::testing::Test {
 protected:
  // Runs the pipeline through Augment on the with-z fixture.
  void SetUp() override {
    auto fx = testing::BuildExample1(/*with_z_methods=*/true);
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    auto verdicts =
        ComputeApplicableMethods(fx_.schema, fx_.a, fx_.Projection());
    ASSERT_TRUE(verdicts.ok());
    applicable_ = verdicts->applicable;
    auto derived = FactorState(fx_.schema, fx_.a, fx_.Projection(), "ProjA",
                               &surrogates_, nullptr);
    ASSERT_TRUE(derived.ok());
    derived_ = *derived;
    auto z = ComputeAugmentSet(fx_.schema, fx_.a, applicable_, surrogates_);
    ASSERT_TRUE(z.ok());
    ASSERT_TRUE(Augment(fx_.schema, fx_.a, *z, &surrogates_, nullptr).ok());
  }

  std::string Sig(MethodId m) {
    const Method& method = fx_.schema.method(m);
    return SignatureToString(fx_.schema.types(),
                             fx_.schema.gf(method.gf).name.view(), method.sig);
  }

  testing::Example1Fixture fx_;
  SurrogateSet surrogates_;
  std::vector<MethodId> applicable_;
  TypeId derived_ = kInvalidType;
};

TEST_F(FactorMethodsTest, Example3Signatures) {
  auto rewrites = FactorMethods(fx_.schema, fx_.a, applicable_, surrogates_, nullptr);
  ASSERT_TRUE(rewrites.ok()) << rewrites.status();
  // The paper's Example 3: v1(Ã, C̃), u3(B̃), w2(C̃), get_h2(B̃).
  EXPECT_EQ(Sig(fx_.v1), "v(ProjA, ~C) -> Void");
  EXPECT_EQ(Sig(fx_.u3), "u(~B) -> Void");
  EXPECT_EQ(Sig(fx_.w2), "w(~C) -> Void");
  EXPECT_EQ(Sig(fx_.get_h2), "get_h2(~B) -> Int");
}

TEST_F(FactorMethodsTest, NotApplicableMethodsUntouched) {
  auto rewrites = FactorMethods(fx_.schema, fx_.a, applicable_, surrogates_, nullptr);
  ASSERT_TRUE(rewrites.ok());
  EXPECT_EQ(Sig(fx_.u1), "u(A) -> Void");
  EXPECT_EQ(Sig(fx_.v2), "v(B, C) -> Void");
  EXPECT_EQ(Sig(fx_.x1), "x(A, B) -> Void");
  EXPECT_EQ(Sig(fx_.get_a1), "get_a1(A) -> Int");
}

TEST_F(FactorMethodsTest, BodyLocalsRetypedToSurrogates) {
  auto rewrites = FactorMethods(fx_.schema, fx_.a, applicable_, surrogates_, nullptr);
  ASSERT_TRUE(rewrites.ok());
  // z1's local gv: G becomes gv: ~G; result type becomes ~G (Section 6.3).
  EXPECT_EQ(PrintMethod(fx_.schema, fx_.z1),
            "z1: z(~C) -> ~G = { gv: ~G; gv = pc; u(pc); return gv; }");
  // z2's local dv: D becomes dv: ~D.
  EXPECT_EQ(PrintMethod(fx_.schema, fx_.z2),
            "z2: zz(~B) -> Void = { dv: ~D; dv = pb; get_h2(pb); }");
}

TEST_F(FactorMethodsTest, RewrittenSchemaTypeChecks) {
  auto rewrites = FactorMethods(fx_.schema, fx_.a, applicable_, surrogates_, nullptr);
  ASSERT_TRUE(rewrites.ok());
  Status typed = TypeCheckSchema(fx_.schema);
  EXPECT_TRUE(typed.ok()) << typed;
  EXPECT_TRUE(fx_.schema.Validate().ok());
}

TEST_F(FactorMethodsTest, RewriteRecordsOldAndNewSignatures) {
  auto rewrites = FactorMethods(fx_.schema, fx_.a, applicable_, surrogates_, nullptr);
  ASSERT_TRUE(rewrites.ok());
  bool found_v1 = false;
  for (const MethodRewrite& rw : *rewrites) {
    if (rw.method != fx_.v1) continue;
    found_v1 = true;
    EXPECT_EQ(rw.old_sig.params, (std::vector<TypeId>{fx_.a, fx_.c}));
    EXPECT_EQ(rw.new_sig.params,
              (std::vector<TypeId>{derived_, surrogates_.Of(fx_.c)}));
    EXPECT_FALSE(rw.body_changed);  // v1's body has no local declarations
  }
  EXPECT_TRUE(found_v1);
}

TEST_F(FactorMethodsTest, BodiesWithoutTaintedLocalsShared) {
  ExprPtr before = fx_.schema.method(fx_.v1).body;
  auto rewrites = FactorMethods(fx_.schema, fx_.a, applicable_, surrogates_, nullptr);
  ASSERT_TRUE(rewrites.ok());
  EXPECT_EQ(fx_.schema.method(fx_.v1).body, before);  // structurally shared
}

TEST_F(FactorMethodsTest, TraceReportsSignatureChanges) {
  std::vector<std::string> trace;
  auto rewrites = FactorMethods(fx_.schema, fx_.a, applicable_, surrogates_, &trace);
  ASSERT_TRUE(rewrites.ok());
  std::string joined;
  for (const std::string& line : trace) joined += line + "\n";
  EXPECT_NE(joined.find("v1: v(A, C) -> Void  =>  v(ProjA, ~C) -> Void"),
            std::string::npos);
}

}  // namespace
}  // namespace tyder
