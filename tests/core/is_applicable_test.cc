#include "core/is_applicable.h"

#include <gtest/gtest.h>

#include "methods/accessor_gen.h"
#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class IsApplicableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }

  std::set<std::string> Labels(const std::vector<MethodId>& methods) {
    std::set<std::string> out;
    for (MethodId m : methods) out.insert(fx_.schema.method(m).label.str());
    return out;
  }

  testing::Example1Fixture fx_;
};

TEST_F(IsApplicableTest, PaperExample1Verdicts) {
  // Π_{a2,e2,h2} A (Section 4.2): applicable are u3, v1, w2 and get_h2;
  // everything else is not.
  auto result =
      ComputeApplicableMethods(fx_.schema, fx_.a, fx_.Projection());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Labels(result->applicable),
            (std::set<std::string>{"u3", "v1", "w2", "get_h2"}));
  EXPECT_EQ(Labels(result->not_applicable),
            (std::set<std::string>{"u1", "u2", "v2", "w1", "x1", "y1",
                                   "get_a1", "get_b1", "get_g1"}));
}

TEST_F(IsApplicableTest, VerdictsPartitionTheInputSet) {
  auto result =
      ComputeApplicableMethods(fx_.schema, fx_.a, fx_.Projection());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->applicable.size() + result->not_applicable.size(), 13u);
  EXPECT_TRUE(result->IsApplicable(fx_.u3));
  EXPECT_FALSE(result->IsApplicable(fx_.x1));
}

TEST_F(IsApplicableTest, AccessorVerdictFollowsProjectionList) {
  // Projecting only a1: get_a1, u1 and w1 survive; h2/e2-dependent fail.
  auto result = ComputeApplicableMethods(fx_.schema, fx_.a, {fx_.a1});
  ASSERT_TRUE(result.ok());
  std::set<std::string> applicable = Labels(result->applicable);
  EXPECT_TRUE(applicable.count("get_a1") > 0);
  EXPECT_TRUE(applicable.count("u1") > 0);
  EXPECT_TRUE(applicable.count("w1") > 0);
  EXPECT_EQ(applicable.count("u3"), 0u);
  EXPECT_EQ(applicable.count("get_h2"), 0u);
}

TEST_F(IsApplicableTest, FullProjectionKeepsEverythingExceptCycleVictims) {
  // Projecting ALL attributes of A: every accessor survives, so all methods
  // survive — including the mutually recursive x1/y1, whose cycle resolves
  // optimistically and then succeeds.
  std::set<AttrId> all;
  for (AttrId a : fx_.schema.types().CumulativeAttributes(fx_.a)) {
    all.insert(a);
  }
  auto result = ComputeApplicableMethods(fx_.schema, fx_.a, all);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->not_applicable.empty())
      << "unexpected: " << Labels(result->not_applicable).size();
  EXPECT_TRUE(result->IsApplicable(fx_.x1));
  EXPECT_TRUE(result->IsApplicable(fx_.y1));
}

TEST_F(IsApplicableTest, CycleFailurePropagatesThroughDependencyList) {
  // With the paper's projection, x1 fails on v(B, A) (v2 needs b1); y1's
  // optimistic verdict must be revoked and re-derived as not applicable.
  auto result =
      ComputeApplicableMethods(fx_.schema, fx_.a, fx_.Projection());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->IsApplicable(fx_.x1));
  EXPECT_FALSE(result->IsApplicable(fx_.y1));
}

TEST_F(IsApplicableTest, TraceRecordsKeyEvents) {
  auto result = ComputeApplicableMethods(fx_.schema, fx_.a, fx_.Projection(),
                                         /*record_trace=*/true);
  ASSERT_TRUE(result.ok());
  std::string joined;
  for (const std::string& line : result->trace) joined += line + "\n";
  EXPECT_NE(joined.find("accessor get_a1 reads a1 (not projected) -> "
                        "NotApplicable"),
            std::string::npos);
  EXPECT_NE(joined.find("accessor get_h2 reads h2 (projected) -> Applicable"),
            std::string::npos);
  EXPECT_NE(joined.find("cycle: assume x1 applicable"), std::string::npos);
  EXPECT_NE(joined.find("evict y1"), std::string::npos);
}

TEST_F(IsApplicableTest, TraceEmptyWhenDisabled) {
  auto result =
      ComputeApplicableMethods(fx_.schema, fx_.a, fx_.Projection(), false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->trace.empty());
}

TEST_F(IsApplicableTest, ProjectionOverIntermediateType) {
  // Π_{c1} C: methods applicable to C are v1, v2, w2, get_g1. get_g1 reads
  // g1 ∉ {c1} → fails; w2 calls u(C→C substituted) → u's methods all
  // eventually need a1/g1/h2, none projected → w2 fails; v1/v2 likewise.
  auto result = ComputeApplicableMethods(fx_.schema, fx_.c, {fx_.c1});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applicable.empty());
  EXPECT_EQ(result->not_applicable.size(), 4u);
}

TEST_F(IsApplicableTest, ProjectionOfH2OverC) {
  // Π_{h2} C: w2(C) = {u(c)} → candidates for u(C) substituted: u(C): only
  // methods applicable to u(C)... none statically (u's formals are A and B,
  // both below C) — wait: substitution replaces the related argument with the
  // *source* C, so candidates = ApplicableMethods(u, {C}) = ∅ → w2 fails.
  // get_g1 reads g1 → fails. v1/v2 contain u/w calls over A/C — v1's u(a)
  // probe u(C): ∅ → fails; v2's get_b1 fails.
  auto result = ComputeApplicableMethods(fx_.schema, fx_.c, {fx_.h2});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applicable.empty());
}

TEST_F(IsApplicableTest, RejectsAttributeNotAvailableAtSource) {
  // d1 is not available at C.
  auto result = ComputeApplicableMethods(fx_.schema, fx_.c, {fx_.d1});
  EXPECT_FALSE(result.ok());
}

TEST_F(IsApplicableTest, SourceTypeOutOfRangeRejected) {
  auto result = ComputeApplicableMethods(fx_.schema, 10000, {fx_.a1});
  EXPECT_FALSE(result.ok());
}

TEST_F(IsApplicableTest, MutatorCallsInBodiesFollowProjection) {
  // A general method that *writes* an attribute survives iff the attribute
  // is projected, exactly like reads.
  Schema& s = fx_.schema;
  auto set_a2 = GenerateMutator(s, fx_.a2, fx_.a);
  auto set_a1 = GenerateMutator(s, fx_.a1, fx_.a);
  ASSERT_TRUE(set_a2.ok() && set_a1.ok());
  auto add_writer = [&](const char* label, MethodId mutator) -> MethodId {
    Method m;
    m.label = Symbol::Intern(label);
    auto gf = s.DeclareGenericFunction(std::string(label) + "_gf", 1);
    EXPECT_TRUE(gf.ok());
    m.gf = *gf;
    m.kind = MethodKind::kGeneral;
    m.sig = Signature{{fx_.a}, s.builtins().void_type};
    m.body = mir::Seq({mir::ExprStmt(mir::Call(
        s.method(mutator).gf, {mir::Param(0), mir::IntLit(7)}))});
    auto id = s.AddMethod(std::move(m));
    EXPECT_TRUE(id.ok());
    return *id;
  };
  MethodId writes_projected = add_writer("writes_a2", *set_a2);
  MethodId writes_dropped = add_writer("writes_a1", *set_a1);
  auto result = ComputeApplicableMethods(s, fx_.a, fx_.Projection());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->IsApplicable(writes_projected));
  EXPECT_FALSE(result->IsApplicable(writes_dropped));
}

TEST_F(IsApplicableTest, ZMethodsAreApplicableUnderPaperProjection) {
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok());
  auto result =
      ComputeApplicableMethods(fx->schema, fx->a, fx->Projection());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsApplicable(fx->z1));
  EXPECT_TRUE(result->IsApplicable(fx->z2));
}

}  // namespace
}  // namespace tyder
