#include "core/collapse.h"

#include <gtest/gtest.h>

#include "core/projection.h"
#include "core/verify.h"
#include "methods/precedence.h"
#include "mir/type_check.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class CollapseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    ProjectionSpec spec;
    spec.source = fx_.a;
    spec.attributes = {fx_.a2, fx_.e2, fx_.h2};
    spec.view_name = "ProjA";
    auto result = DeriveProjection(fx_.schema, spec);
    ASSERT_TRUE(result.ok()) << result.status();
    result_ = std::move(result).value();
  }

  TypeId Surr(TypeId source) { return result_.surrogates.Of(source); }

  testing::Example1Fixture fx_;
  DerivationResult result_;
};

TEST_F(CollapseTest, OnlyUnreferencedEmptySurrogatesAreCollapsible) {
  std::set<TypeId> keep = {result_.derived};
  // ~F: empty state, never mentioned by a signature — collapsible.
  EXPECT_TRUE(IsCollapsible(fx_.schema, Surr(fx_.f), keep));
  // ~C: empty state but v1/w2 signatures mention it — not collapsible.
  EXPECT_FALSE(IsCollapsible(fx_.schema, Surr(fx_.c), keep));
  // ~H carries h2 — not collapsible.
  EXPECT_FALSE(IsCollapsible(fx_.schema, Surr(fx_.h), keep));
  // ~B: u3/get_h2 signatures mention it — not collapsible.
  EXPECT_FALSE(IsCollapsible(fx_.schema, Surr(fx_.b), keep));
  // The derived view is protected even though projection kept it referenced.
  EXPECT_FALSE(IsCollapsible(fx_.schema, result_.derived, keep));
  // Original user types are never collapsible.
  EXPECT_FALSE(IsCollapsible(fx_.schema, fx_.f, keep));
}

TEST_F(CollapseTest, CollapseSplicesEdgesAtSamePosition) {
  std::set<TypeId> keep = {result_.derived};
  auto report = CollapseEmptySurrogates(fx_.schema, keep);
  ASSERT_TRUE(report.ok()) << report.status();
  // Exactly ~F collapses in this schema.
  ASSERT_EQ(report->collapsed.size(), 1u);
  EXPECT_EQ(report->collapsed[0], Surr(fx_.f));
  EXPECT_TRUE(fx_.schema.types().type(Surr(fx_.f)).detached());
  // F, which had [~F, H], now has ~F's supers spliced in: [~H, H].
  std::vector<std::string> f_supers;
  for (TypeId s : fx_.schema.types().type(fx_.f).supertypes()) {
    f_supers.push_back(fx_.schema.types().TypeName(s));
  }
  EXPECT_EQ(f_supers, (std::vector<std::string>{"~H", "H"}));
  // ~C, which had [~F, ~E], now has [~H, ~E].
  std::vector<std::string> c_supers;
  for (TypeId s : fx_.schema.types().type(Surr(fx_.c)).supertypes()) {
    c_supers.push_back(fx_.schema.types().TypeName(s));
  }
  EXPECT_EQ(c_supers, (std::vector<std::string>{"~H", "~E"}));
}

TEST_F(CollapseTest, CollapsePreservesStateAndTyping) {
  Schema before = fx_.schema;
  std::set<TypeId> keep = {result_.derived};
  ASSERT_TRUE(CollapseEmptySurrogates(fx_.schema, keep).ok());
  // Cumulative state of every non-detached type is unchanged. (Compared as
  // sets: splicing can permute the closure traversal order.)
  for (TypeId t = 0; t < before.types().NumTypes(); ++t) {
    if (fx_.schema.types().type(t).detached()) continue;
    std::vector<AttrId> pre_list = before.types().CumulativeAttributes(t);
    std::vector<AttrId> post_list = fx_.schema.types().CumulativeAttributes(t);
    EXPECT_EQ(std::set<AttrId>(pre_list.begin(), pre_list.end()),
              std::set<AttrId>(post_list.begin(), post_list.end()))
        << before.types().TypeName(t);
    EXPECT_EQ(pre_list.size(), post_list.size());
  }
  EXPECT_TRUE(TypeCheckSchema(fx_.schema).ok());
  EXPECT_TRUE(fx_.schema.Validate().ok());
}

// Dispatch target as an int, -1 when no method applies.
int DispatchProbe(const Schema& s, GfId g, TypeId t) {
  auto m = MostSpecificApplicable(s, g, {t});
  return m.ok() ? static_cast<int>(*m) : -1;
}

TEST_F(CollapseTest, CollapsePreservesDispatchOverLiveTypes) {
  Schema before = fx_.schema;
  std::set<TypeId> keep = {result_.derived};
  ASSERT_TRUE(CollapseEmptySurrogates(fx_.schema, keep).ok());
  // Dispatch over every live (non-detached) type must be unchanged. (The
  // whole-schema checker would also probe the collapsed node itself, whose
  // subtype relations legitimately changed, so restrict manually.)
  for (GfId g = 0; g < before.NumGenericFunctions(); ++g) {
    if (before.gf(g).arity != 1) continue;
    for (TypeId t = 0; t < before.types().NumTypes(); ++t) {
      if (fx_.schema.types().type(t).detached()) continue;
      EXPECT_EQ(DispatchProbe(before, g, t), DispatchProbe(fx_.schema, g, t))
          << before.gf(g).name.view() << "(" << before.types().TypeName(t)
          << ")";
    }
  }
}

}  // namespace
}  // namespace tyder
