// Result<T> misuse must die loudly in every build mode: value() on an error
// Result and Result(OK-status-without-a-value) print the carried status and
// abort instead of silently returning garbage (the checks are hand-rolled,
// not `assert`, so NDEBUG cannot compile them out).

#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace tyder {
namespace {

TEST(ResultTest, OkResultCarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorResultCarriesStatus) {
  Result<int> r(Status::NotFound("no such thing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveValueOutOfResult) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultDeathTest, ValueOnErrorResultDies) {
  Result<int> r(Status::InvalidArgument("boom"));
  EXPECT_DEATH(r.value(), "Result::value\\(\\) called on an error Result");
  // The abort message must surface the carried status, not just the misuse.
  EXPECT_DEATH(r.value(), "boom");
}

TEST(ResultDeathTest, DerefOnErrorResultDies) {
  Result<std::string> r(Status::Internal("mid-pipeline failure"));
  EXPECT_DEATH(*r, "mid-pipeline failure");
  EXPECT_DEATH(r->size(), "called on an error Result");
}

TEST(ResultDeathTest, ConstructingFromOkStatusDies) {
  EXPECT_DEATH(Result<int>(Status::OK()),
               "Result constructed from OK status without a value");
}

}  // namespace
}  // namespace tyder
