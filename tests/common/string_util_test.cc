#include "common/string_util.h"

#include <gtest/gtest.h>

namespace tyder {
namespace {

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(TrimTest, RemovesWhitespaceBothSides) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\tx y\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no_trim"), "no_trim");
}

TEST(SplitAndTrimTest, SplitsAndDropsEmpties) {
  EXPECT_EQ(SplitAndTrim("a, b ,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAndTrim("a,,b", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitAndTrim("", ','), (std::vector<std::string>{}));
  EXPECT_EQ(SplitAndTrim("  ", ','), (std::vector<std::string>{}));
  EXPECT_EQ(SplitAndTrim("one", ','), (std::vector<std::string>{"one"}));
}

TEST(IsIdentifierTest, AcceptsValidIdentifiers) {
  EXPECT_TRUE(IsIdentifier("x"));
  EXPECT_TRUE(IsIdentifier("_private"));
  EXPECT_TRUE(IsIdentifier("Employee2"));
  EXPECT_TRUE(IsIdentifier("snake_case_name"));
}

TEST(IsIdentifierTest, RejectsInvalid) {
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("2abc"));
  EXPECT_FALSE(IsIdentifier("has space"));
  EXPECT_FALSE(IsIdentifier("~Person"));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

}  // namespace
}  // namespace tyder
