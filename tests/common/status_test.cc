#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace tyder {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no type named 'Foo'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no type named 'Foo'");
  EXPECT_EQ(s.ToString(), "NotFound: no type named 'Foo'");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::TypeError("bad");
  Status copy = s;
  EXPECT_EQ(copy.code(), StatusCode::kTypeError);
  EXPECT_EQ(copy.message(), "bad");
  EXPECT_EQ(s.message(), "bad");  // source unchanged
}

TEST(StatusTest, MovePreservesState) {
  Status s = Status::Internal("boom");
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kInternal);
  EXPECT_EQ(moved.message(), "boom");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("missing").WithContext("loading schema");
  EXPECT_EQ(s.message(), "loading schema: missing");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status {
    TYDER_RETURN_IF_ERROR(Status::InvalidArgument("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(fails().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("nope");
    return 5;
  };
  auto chain = [&](bool fail) -> Result<int> {
    TYDER_ASSIGN_OR_RETURN(int v, make(fail));
    return v + 1;
  };
  EXPECT_EQ(*chain(false), 6);
  EXPECT_FALSE(chain(true).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 3);
}

}  // namespace
}  // namespace tyder
