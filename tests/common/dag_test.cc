#include "common/dag.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tyder {
namespace {

Digraph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(DigraphTest, AddNodeGrows) {
  Digraph g;
  EXPECT_EQ(g.AddNode(), 0u);
  EXPECT_EQ(g.AddNode(), 1u);
  EXPECT_EQ(g.NumNodes(), 2u);
}

TEST(DigraphTest, ReachesSelf) {
  Digraph g(2);
  EXPECT_TRUE(g.Reaches(0, 0));
  EXPECT_FALSE(g.Reaches(0, 1));
}

TEST(DigraphTest, ReachesTransitively) {
  Digraph g = Diamond();
  EXPECT_TRUE(g.Reaches(0, 3));
  EXPECT_TRUE(g.Reaches(1, 3));
  EXPECT_FALSE(g.Reaches(3, 0));
  EXPECT_FALSE(g.Reaches(1, 2));
}

TEST(DigraphTest, ReachableFromIncludesStart) {
  Digraph g = Diamond();
  std::vector<uint32_t> r = g.ReachableFrom(0);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.front(), 0u);
}

TEST(DigraphTest, AcyclicHasNoCycle) {
  EXPECT_FALSE(Diamond().HasCycle());
}

TEST(DigraphTest, DetectsCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, SelfLoopIsCycle) {
  Digraph g(1);
  g.AddEdge(0, 0);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DigraphTest, TopologicalOrderRespectsEdges) {
  Digraph g = Diamond();
  std::vector<uint32_t> topo = g.TopologicalOrder();
  ASSERT_EQ(topo.size(), 4u);
  auto pos = [&](uint32_t n) {
    return std::find(topo.begin(), topo.end(), n) - topo.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(DigraphTest, TransitiveClosureMatchesReaches) {
  Digraph g = Diamond();
  auto closure = g.TransitiveClosure();
  for (uint32_t a = 0; a < g.NumNodes(); ++a) {
    for (uint32_t b = 0; b < g.NumNodes(); ++b) {
      EXPECT_EQ(closure[a][b], g.Reaches(a, b)) << a << " -> " << b;
    }
  }
}

TEST(DigraphTest, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(g.TopologicalOrder().empty());
}

}  // namespace
}  // namespace tyder
