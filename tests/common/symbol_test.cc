#include "common/symbol.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace tyder {
namespace {

TEST(SymbolTest, InternIsIdempotent) {
  Symbol a = Symbol::Intern("hello");
  Symbol b = Symbol::Intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
}

TEST(SymbolTest, DistinctNamesDistinctSymbols) {
  EXPECT_NE(Symbol::Intern("alpha"), Symbol::Intern("beta"));
}

TEST(SymbolTest, ViewReturnsInternedText) {
  Symbol s = Symbol::Intern("date_of_birth");
  EXPECT_EQ(s.view(), "date_of_birth");
  EXPECT_EQ(s.str(), "date_of_birth");
}

TEST(SymbolTest, DefaultIsEmpty) {
  Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.view(), "");
  EXPECT_EQ(Symbol::Intern(""), s);
}

TEST(SymbolTest, UsableInHashContainers) {
  std::unordered_set<Symbol, SymbolHash> set;
  set.insert(Symbol::Intern("x"));
  set.insert(Symbol::Intern("x"));
  set.insert(Symbol::Intern("y"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Symbol::Intern("x")) > 0);
}

TEST(SymbolTest, OrderingIsStableWithinRun) {
  Symbol first = Symbol::Intern("zzz_order_first");
  Symbol second = Symbol::Intern("zzz_order_second");
  EXPECT_LT(first, second);  // intern order, not lexicographic
}

}  // namespace
}  // namespace tyder
