// Tests for the lock-free log-bucketed histogram (obs/histogram.h): bucket
// scheme exactness, the documented quantile error bound against exact
// sorted samples, aggregate exactness, and reset semantics.

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tyder::obs {
namespace {

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (int64_t v = 0; v < static_cast<int64_t>(Histogram::kSubBuckets); ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<size_t>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<size_t>(v)), v);
  }
}

TEST(Histogram, NegativeValuesClampToZero) {
  EXPECT_EQ(Histogram::BucketIndex(-1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MIN), 0u);
}

TEST(Histogram, BucketLowerBoundsAreMonotone) {
  int64_t prev = -1;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    int64_t lb = Histogram::BucketLowerBound(b);
    EXPECT_GT(lb, prev) << "bucket " << b;
    prev = lb;
  }
}

// Core scheme property: a value lands in a bucket whose lower bound is at
// most the value, and whose width is at most max(1, lower_bound / 32) — the
// source of the documented 1/32 max relative quantile error.
TEST(Histogram, BucketWidthObeysRelativeErrorBound) {
  std::vector<int64_t> probes;
  for (int64_t v = 0; v < 2000; ++v) probes.push_back(v);
  for (int shift = 11; shift < 62; ++shift) {
    int64_t base = int64_t{1} << shift;
    probes.insert(probes.end(),
                  {base - 1, base, base + 1, base + base / 3, 2 * base - 1});
  }
  for (int64_t v : probes) {
    size_t index = Histogram::BucketIndex(v);
    int64_t lb = Histogram::BucketLowerBound(index);
    int64_t next_lb = Histogram::BucketLowerBound(index + 1);
    EXPECT_LE(lb, v) << "value " << v;
    EXPECT_LT(v, next_lb) << "value " << v;
    int64_t width = next_lb - lb;
    int64_t allowed = std::max<int64_t>(int64_t{1}, lb / 32);
    EXPECT_LE(width, allowed) << "value " << v << " bucket " << index;
  }
}

TEST(Histogram, AggregatesAreExact) {
  Histogram h;
  int64_t sum = 0;
  for (int64_t v : {7, 123, 9999, 0, 31, 32, 1 << 20}) {
    h.Record(v);
    sum += v;
  }
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 1 << 20);
  EXPECT_EQ(snap.sum, sum);
}

// The quantile contract: reported quantiles are the containing bucket's
// lower bound, so reported <= exact and exact - reported is within one
// bucket width (max(1, reported/32)).
TEST(Histogram, QuantilesWithinDocumentedErrorOfExact) {
  Histogram h;
  std::vector<int64_t> samples;
  uint64_t lcg = 12345;
  for (int i = 0; i < 20000; ++i) {
    lcg = lcg * 6364136223846793005u + 1442695040888963407u;
    // Mix magnitudes: microsecond-ish to second-ish "durations".
    int64_t v = static_cast<int64_t>((lcg >> 33) % 1000000000);
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  Histogram::Snapshot snap = h.Snap();
  const double targets[] = {0.50, 0.95, 0.99};
  const int64_t reported[] = {snap.p50, snap.p95, snap.p99};
  for (int i = 0; i < 3; ++i) {
    size_t rank = static_cast<size_t>(
        targets[i] * static_cast<double>(samples.size() - 1) + 0.5);
    int64_t exact = samples[rank];
    EXPECT_LE(reported[i], exact) << "q" << targets[i];
    int64_t allowed = std::max<int64_t>(int64_t{1}, reported[i] / 32);
    EXPECT_LE(exact - reported[i], allowed) << "q" << targets[i];
  }
}

TEST(Histogram, QuantilesExactForSmallValues) {
  // Values below kSubBuckets have exact single-value buckets, so quantiles
  // over them are exact under the rank = q*(count-1)+0.5 convention.
  Histogram h;
  for (int64_t v = 1; v <= 20; ++v) h.Record(v);
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.p50, 11);  // rank 10 of 1..20
  EXPECT_EQ(snap.p95, 19);
  EXPECT_EQ(snap.p99, 20);
}

TEST(Histogram, ZeroSampleSnapshotIsAllZero) {
  Histogram h;
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.p50, 0);
  EXPECT_EQ(snap.p95, 0);
  EXPECT_EQ(snap.p99, 0);
}

TEST(Histogram, MergeFromCombinesExactly) {
  Histogram a, b;
  for (int64_t v = 1; v <= 500; ++v) a.Record(v);
  for (int64_t v = 1'000'000; v <= 1'000'300; ++v) b.Record(v);
  a.MergeFrom(b);
  Histogram::Snapshot merged = a.Snap();
  EXPECT_EQ(merged.count, 801u);
  EXPECT_EQ(merged.min, 1);
  EXPECT_EQ(merged.max, 1'000'300);
  int64_t expect_sum = 0;
  for (int64_t v = 1; v <= 500; ++v) expect_sum += v;
  for (int64_t v = 1'000'000; v <= 1'000'300; ++v) expect_sum += v;
  EXPECT_EQ(merged.sum, expect_sum);
  // The merged distribution is bimodal: the median sits in the low mode,
  // p95/p99 in the high mode (within bucket resolution).
  EXPECT_LE(merged.p50, 500);
  EXPECT_GT(merged.p95, 500'000);

  // Merging matches recording the same values into one histogram,
  // bucket-for-bucket (identical layouts make the merge exact).
  Histogram direct;
  for (int64_t v = 1; v <= 500; ++v) direct.Record(v);
  for (int64_t v = 1'000'000; v <= 1'000'300; ++v) direct.Record(v);
  Histogram::Snapshot one = direct.Snap();
  EXPECT_EQ(merged.count, one.count);
  EXPECT_EQ(merged.sum, one.sum);
  EXPECT_EQ(merged.p50, one.p50);
  EXPECT_EQ(merged.p95, one.p95);
  EXPECT_EQ(merged.p99, one.p99);
}

TEST(Histogram, MergeFromEmptyIsANoOp) {
  Histogram a, empty;
  a.Record(7);
  a.MergeFrom(empty);
  Histogram::Snapshot snap = a.Snap();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 7);
  EXPECT_EQ(snap.max, 7);

  // Merging into an empty histogram adopts the source's aggregates.
  empty.MergeFrom(a);
  Histogram::Snapshot adopted = empty.Snap();
  EXPECT_EQ(adopted.count, 1u);
  EXPECT_EQ(adopted.min, 7);
  EXPECT_EQ(adopted.max, 7);
  EXPECT_EQ(adopted.sum, 7);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  for (int64_t v = 0; v < 1000; ++v) h.Record(v);
  h.Reset();
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0);
  h.Record(42);
  snap = h.Snap();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 42);
  EXPECT_EQ(snap.max, 42);
  EXPECT_EQ(snap.p50, 42);
}

}  // namespace
}  // namespace tyder::obs
