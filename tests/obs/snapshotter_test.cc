// Tests for the background stats snapshotter (obs/snapshotter.h): JSONL
// emission cadence, line schema, and the static SnapshotLine builder.

#include "obs/snapshotter.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tyder::obs {
namespace {

std::vector<std::string> ReadLines(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(StatsSnapshotter, SnapshotLineCarriesSchemaCountersAndRecorder) {
  TYDER_COUNT("snap_test.counter");
  TYDER_COUNT("snap_test.counter");
  {
    TYDER_TIMED("snap_test.ns");
  }
  std::string line = StatsSnapshotter::SnapshotLine(7);
  EXPECT_NE(line.find("\"schema\":\"tyder-stats-v1\""), std::string::npos);
  EXPECT_NE(line.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"snap_test.counter\":"), std::string::npos);
  EXPECT_NE(line.find("\"snap_test.ns\":{\"count\":"), std::string::npos);
  EXPECT_NE(line.find("\"p99\":"), std::string::npos);
  EXPECT_NE(line.find("\"recorder\":{\"threads\":"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(StatsSnapshotter, EmitsPeriodicLinesAndFinalLineOnStop) {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "tyder_snap_test.jsonl";
  std::filesystem::remove(path);

  SnapshotterOptions options;
  options.path = path.string();
  options.period_ms = 10;
  StatsSnapshotter snapshotter(options);
  ASSERT_TRUE(snapshotter.Start());
  EXPECT_TRUE(snapshotter.running());
  EXPECT_FALSE(snapshotter.Start());  // already running

  TYDER_COUNT("snap_test.periodic");
  // Single-CPU CI: generous but bounded wait for at least two ticks.
  for (int i = 0; i < 200 && snapshotter.lines_written() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  snapshotter.Stop();
  EXPECT_FALSE(snapshotter.running());
  uint64_t written = snapshotter.lines_written();
  EXPECT_GE(written, 2u);

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), written);
  uint64_t seq = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("{\"schema\":\"tyder-stats-v1\"", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"seq\":" + std::to_string(seq) + ","),
              std::string::npos)
        << line;
    ++seq;
  }
  std::filesystem::remove(path);
}

TEST(StatsSnapshotter, StopWithoutStartIsANoOp) {
  SnapshotterOptions options;
  options.path = "/nonexistent-dir/never-opened.jsonl";
  StatsSnapshotter snapshotter(options);
  snapshotter.Stop();  // must not crash or hang
  EXPECT_EQ(snapshotter.lines_written(), 0u);
}

TEST(StatsSnapshotter, StartFailsOnUnwritablePath) {
  SnapshotterOptions options;
  options.path = "/nonexistent-dir/never-opened.jsonl";
  StatsSnapshotter snapshotter(options);
  EXPECT_FALSE(snapshotter.Start());
  EXPECT_FALSE(snapshotter.running());
}

}  // namespace
}  // namespace tyder::obs
