// Exporter edge cases: empty registries, metrics that were registered but
// never hit, zero-sample histograms, and traces dumped while spans are
// still open (a crash dump takes the trace mid-flight).

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace tyder::obs {
namespace {

TEST(ExporterEdge, EmptyRegistryExportsAreWellFormed) {
  MetricsRegistry registry;  // local: truly empty, unlike Global()
  EXPECT_EQ(MetricsToText(registry), "");
  EXPECT_EQ(MetricsToJson(registry), "{\"counters\":{},\"histograms\":{}}");
}

TEST(ExporterEdge, UntouchedCounterExportsAsZero) {
  MetricsRegistry registry;
  registry.GetCounter("edge.never_hit");
  EXPECT_EQ(MetricsToText(registry), "edge.never_hit = 0\n");
  EXPECT_EQ(MetricsToJson(registry),
            "{\"counters\":{\"edge.never_hit\":0},\"histograms\":{}}");
}

TEST(ExporterEdge, ZeroSampleHistogramExportsAllZeroes) {
  MetricsRegistry registry;
  registry.GetHistogram("edge.empty_ns");
  EXPECT_EQ(MetricsToText(registry),
            "edge.empty_ns: count=0 min=0 max=0 sum=0 p50=0 p95=0 p99=0\n");
  EXPECT_EQ(MetricsToJson(registry),
            "{\"counters\":{},\"histograms\":{\"edge.empty_ns\":"
            "{\"count\":0,\"min\":0,\"max\":0,\"sum\":0,"
            "\"p50\":0,\"p95\":0,\"p99\":0}}}");
}

TEST(ExporterEdge, HistogramExportCarriesP99) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("edge.p99_ns");
  for (int64_t v = 1; v <= 20; ++v) h->Record(v);
  std::string text = MetricsToText(registry);
  EXPECT_NE(text.find(" p95=19 p99=20"), std::string::npos) << text;
  std::string json = MetricsToJson(registry);
  EXPECT_NE(json.find("\"p95\":19,\"p99\":20"), std::string::npos) << json;
}

TEST(ExporterEdge, UnclosedSpansExportWithoutEndEvents) {
  Tracer tracer;
  tracer.BeginSpan("outer");
  tracer.Instant("mid-flight narration");
  tracer.BeginSpan("inner");
  // No EndSpan: this is what a trace looks like when dumped from a crash
  // handler while work is still in flight.
  EXPECT_EQ(tracer.depth(), 2);

  std::string text = TraceToText(tracer.events());
  EXPECT_NE(text.find("[outer"), std::string::npos);
  EXPECT_NE(text.find("mid-flight narration"), std::string::npos);
  EXPECT_NE(text.find("[inner"), std::string::npos);
  EXPECT_EQ(text.find("] outer"), std::string::npos);

  std::string json = TraceToJson(tracer.events());
  EXPECT_NE(json.find("\"kind\":\"begin\",\"name\":\"outer\""),
            std::string::npos);
  EXPECT_EQ(json.find("\"kind\":\"end\""), std::string::npos);

  // Chrome viewers tolerate unbalanced B events; the exporter just must not
  // fabricate an E or emit broken JSON.
  std::string chrome = TraceToChromeJson(tracer.events());
  EXPECT_NE(chrome.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_EQ(chrome.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_EQ(chrome.back(), '}');
}

TEST(ExporterEdge, EmptyTraceExports) {
  std::vector<TraceEvent> events;
  EXPECT_EQ(TraceToText(events), "");
  EXPECT_EQ(TraceToJson(events), "{\"events\":[]}");
  EXPECT_EQ(TraceToChromeJson(events), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace tyder::obs
