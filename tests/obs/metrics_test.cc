#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/obs.h"

namespace tyder::obs {
namespace {

TEST(MetricsTest, CountersAccumulateAndReset) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  c->Add(1);
  c->Add(41);
  EXPECT_EQ(registry.CounterValue("test.counter"), 42u);
  EXPECT_EQ(registry.CounterValue("test.untouched"), 0u);
  // Same name -> same counter.
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("test.counter"), 0u);
}

TEST(MetricsTest, HistogramStats) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.latency");
  for (int64_t v = 1; v <= 100; ++v) h->Record(v);
  Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 100);
  EXPECT_EQ(snap.sum, 5050);
  EXPECT_NEAR(static_cast<double>(snap.p50), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(snap.p95), 95.0, 2.0);
  h->Reset();
  EXPECT_EQ(h->Snap().count, 0u);
}

TEST(MetricsTest, SnapshotsAreNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  auto snapshot = registry.CounterSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "alpha");
  EXPECT_EQ(snapshot[1].first, "mid");
  EXPECT_EQ(snapshot[2].first, "zeta");
}

TEST(MetricsTest, TextAndJsonExport) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(7);
  registry.GetHistogram("b.ns")->Record(10);
  registry.GetHistogram("b.ns")->Record(30);
  std::string text = MetricsToText(registry);
  EXPECT_NE(text.find("a.count = 7"), std::string::npos);
  EXPECT_NE(text.find("b.ns: count=2 min=10 max=30 sum=40"),
            std::string::npos);
  std::string json = MetricsToJson(registry);
  EXPECT_NE(json.find("\"a.count\":7"), std::string::npos);
  EXPECT_NE(json.find("\"b.ns\":{\"count\":2,\"min\":10,\"max\":30,"
                      "\"sum\":40"),
            std::string::npos);
}

TEST(MetricsTest, MacrosHitTheGlobalRegistry) {
  MetricsRegistry& global = MetricsRegistry::Global();
  uint64_t before = global.CounterValue("test.macro_counter");
  TYDER_COUNT("test.macro_counter");
  TYDER_COUNT_N("test.macro_counter", 4);
#if TYDER_OBS_ENABLED
  EXPECT_EQ(global.CounterValue("test.macro_counter"), before + 5);
#else
  EXPECT_EQ(global.CounterValue("test.macro_counter"), before);
#endif
}

TEST(MetricsTest, TimedMacroRecordsDurations) {
  MetricsRegistry& global = MetricsRegistry::Global();
  uint64_t before = global.GetHistogram("test.macro_timer")->Snap().count;
  {
    TYDER_TIMED("test.macro_timer");
  }
#if TYDER_OBS_ENABLED
  Histogram::Snapshot snap = global.GetHistogram("test.macro_timer")->Snap();
  EXPECT_EQ(snap.count, before + 1);
  EXPECT_GE(snap.max, 0);
#else
  EXPECT_EQ(global.GetHistogram("test.macro_timer")->Snap().count, before);
#endif
}

TEST(MetricsTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

}  // namespace
}  // namespace tyder::obs
