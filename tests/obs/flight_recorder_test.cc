// Tests for the per-thread flight recorder (obs/flight_recorder.h): ring
// semantics (wrap, truncation to the last kRingSize events), retired-thread
// persistence, JSON dump shape, and the $TYDER_FLIGHT_DIR dump-on-demand
// hook.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace tyder::obs {
namespace {

// The recorder is process-global and other tests in this binary record
// events too, so assertions pin down this test's own markers rather than
// global totals.
FlightRecorder::ThreadDump* FindThreadWith(
    std::vector<FlightRecorder::ThreadDump>& dumps, const std::string& name) {
  for (auto& dump : dumps) {
    for (const FlightEvent& e : dump.events) {
      if (name == e.name) return &dump;
    }
  }
  return nullptr;
}

TEST(FlightRecorder, RecordsAppearInSnapshot) {
  FlightRecorder::Record(FlightEventKind::kMark, "frt.basic", 41);
  FlightRecorder::Record(FlightEventKind::kOp, "frt.basic2", 42);
  auto dumps = FlightRecorder::Snapshot();
  auto* dump = FindThreadWith(dumps, "frt.basic");
  ASSERT_NE(dump, nullptr);
  EXPECT_FALSE(dump->retired);
  bool found = false;
  for (const FlightEvent& e : dump->events) {
    if (std::string("frt.basic2") == e.name) {
      found = true;
      EXPECT_EQ(e.kind, FlightEventKind::kOp);
      EXPECT_EQ(e.value, 42);
      EXPECT_GE(e.ts_ns, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlightRecorder, LongNamesAreTruncatedNotCorrupted) {
  std::string long_name(100, 'x');
  FlightRecorder::Record(FlightEventKind::kMark, long_name, 1);
  auto dumps = FlightRecorder::Snapshot();
  auto* dump = FindThreadWith(dumps, std::string(31, 'x'));
  ASSERT_NE(dump, nullptr);
}

TEST(FlightRecorder, RingKeepsOnlyTheLastEventsAfterWrap) {
  const int kTotal = static_cast<int>(FlightRecorder::kRingSize) * 3 + 17;
  // A dedicated thread gets a fresh ring, so total_events is exact.
  std::thread writer([&] {
    for (int i = 0; i < kTotal; ++i) {
      FlightRecorder::Record(FlightEventKind::kMark, "frt.wrap", i);
    }
  });
  writer.join();
  auto dumps = FlightRecorder::Snapshot();
  auto* dump = FindThreadWith(dumps, "frt.wrap");
  ASSERT_NE(dump, nullptr);
  EXPECT_TRUE(dump->retired);
  EXPECT_EQ(dump->total_events, static_cast<uint64_t>(kTotal));
  ASSERT_EQ(dump->events.size(), FlightRecorder::kRingSize);
  // Oldest-first: the surviving window is the last kRingSize values.
  int64_t expect = kTotal - static_cast<int>(FlightRecorder::kRingSize);
  for (const FlightEvent& e : dump->events) {
    EXPECT_EQ(e.value, expect) << "ring order broken";
    ++expect;
  }
}

TEST(FlightRecorder, RetiredThreadRingSurvives) {
  std::thread worker([] {
    FlightRecorder::Record(FlightEventKind::kOp, "frt.retired", 7);
  });
  worker.join();
  auto dumps = FlightRecorder::Snapshot();
  auto* dump = FindThreadWith(dumps, "frt.retired");
  ASSERT_NE(dump, nullptr);
  EXPECT_TRUE(dump->retired);
}

TEST(FlightRecorder, DumpJsonCarriesSchemaReasonAndEvents) {
  FlightRecorder::Record(FlightEventKind::kFailpoint, "frt.json", 3);
  std::string json = FlightRecorder::DumpJson("unit \"test\"");
  EXPECT_NE(json.find("\"schema\":\"tyder-flight-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_size\":256"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"failpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"frt.json\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser
  // (scripts/run_all.sh crash json.load()s real dump files).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(FlightRecorder, DumpIfConfiguredIsSilentWithoutEnv) {
  ::unsetenv("TYDER_FLIGHT_DIR");
  EXPECT_EQ(FlightRecorder::DumpIfConfigured("no_dir"), "");
}

TEST(FlightRecorder, DumpIfConfiguredWritesIntoFlightDir) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tyder_frt_dumps";
  std::filesystem::remove_all(dir);
  ::setenv("TYDER_FLIGHT_DIR", dir.c_str(), 1);
  FlightRecorder::Record(FlightEventKind::kMark, "frt.envdump", 9);
  std::string path = FlightRecorder::DumpIfConfigured("env_test");
  ::unsetenv("TYDER_FLIGHT_DIR");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"schema\":\"tyder-flight-v1\""),
            std::string::npos);
  EXPECT_NE(content.str().find("\"reason\":\"env_test\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, ThreadAndEventGaugesGrow) {
  size_t threads_before = FlightRecorder::NumThreads();
  uint64_t events_before = FlightRecorder::TotalEvents();
  std::thread worker([] {
    FlightRecorder::Record(FlightEventKind::kMark, "frt.gauge", 0);
  });
  worker.join();
  EXPECT_GE(FlightRecorder::NumThreads(), threads_before + 1);
  EXPECT_GE(FlightRecorder::TotalEvents(), events_before + 1);
}

}  // namespace
}  // namespace tyder::obs
