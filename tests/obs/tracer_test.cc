#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "obs/export.h"

namespace tyder::obs {
namespace {

// Minimal recursive-descent JSON syntax checker, enough to prove the
// exporters emit well-formed JSON (the script-side consumer re-validates
// with a real parser).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Consume('"');
  }

  bool Number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Consume(char c) { return Peek(c); }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(TracerTest, SpansNestAndCarryDurations) {
  Tracer tracer;
  {
    ScopedTracer install(&tracer);
    ScopedSpan outer("outer");
    outer.Attr("key", "value");
    Emit("hello");
    {
      ScopedSpan inner("inner");
      Emit("nested");
    }
  }
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kBegin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  ASSERT_EQ(events[0].attrs.size(), 1u);
  EXPECT_EQ(events[0].attrs[0].first, "key");
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(events[1].name, "hello");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[3].name, "nested");
  EXPECT_EQ(events[3].depth, 2);
  EXPECT_EQ(events[4].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(events[4].name, "inner");
  EXPECT_EQ(events[5].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(events[5].name, "outer");
  // Durations are monotone: outer covers inner.
  EXPECT_GE(events[5].dur_ns, events[4].dur_ns);
  EXPECT_GE(events[4].ts_ns, events[2].ts_ns);
}

TEST(TracerTest, NoInstalledTracerIsInert) {
  EXPECT_EQ(CurrentTracer(), nullptr);
  ScopedSpan span("ignored");  // must not crash
  Emit("dropped");
  Narrate(nullptr, "dropped too");
  std::vector<std::string> sink;
  Narrate(&sink, "kept");
  EXPECT_EQ(sink, std::vector<std::string>{"kept"});
}

TEST(TracerTest, ScopedTracerRestoresPrevious) {
  Tracer a, b;
  ScopedTracer install_a(&a);
  {
    ScopedTracer install_b(&b);
    EXPECT_EQ(CurrentTracer(), &b);
    Emit("to b");
  }
  EXPECT_EQ(CurrentTracer(), &a);
  Emit("to a");
  EXPECT_EQ(b.NumEvents(), 1u);
  EXPECT_EQ(a.NumEvents(), 1u);
}

TEST(TracerTest, NarrationMirrorsToSinkAndTracer) {
  Tracer tracer;
  std::vector<std::string> sink;
  {
    ScopedTracer install(&tracer);
    Narrate(&sink, "line one");
    Narrate(nullptr, "line two");
  }
  EXPECT_EQ(sink, std::vector<std::string>{"line one"});
  auto lines = RenderNarration(tracer.events());
  EXPECT_EQ(lines, (std::vector<std::string>{"line one", "line two"}));
}

TEST(TracerTest, TextExportIndentsByDepth) {
  Tracer tracer;
  {
    ScopedTracer install(&tracer);
    ScopedSpan outer("outer");
    Emit("message");
  }
  std::string text = TraceToText(tracer.events());
  EXPECT_NE(text.find("[outer"), std::string::npos);
  EXPECT_NE(text.find("\n  message"), std::string::npos);
  EXPECT_NE(text.find("] outer"), std::string::npos);
}

TEST(TracerTest, JsonExportsAreWellFormed) {
  Tracer tracer;
  {
    ScopedTracer install(&tracer);
    ScopedSpan outer("outer \"quoted\"\nname");
    outer.Attr("attr", "va\\lue");
    Emit("instant");
    ScopedSpan inner("inner");
  }
  std::string json = TraceToJson(tracer.events());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  std::string chrome = TraceToChromeJson(tracer.events());
  EXPECT_TRUE(JsonChecker(chrome).Valid()) << chrome;
  // Chrome trace_event essentials: the container key, phase markers, and
  // microsecond timestamps.
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":"), std::string::npos);
}

TEST(TracerTest, JsonRoundTripPreservesEventStructure) {
  Tracer tracer;
  {
    ScopedTracer install(&tracer);
    ScopedSpan s("phase");
    Emit("step");
  }
  std::string json = TraceToJson(tracer.events());
  // Round-trip at the structural level: every event appears exactly once
  // with its kind tag.
  auto count = [&json](std::string_view needle) {
    size_t n = 0;
    for (size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"kind\":\"begin\",\"name\":\"phase\""), 1u);
  EXPECT_EQ(count("\"kind\":\"end\",\"name\":\"phase\""), 1u);
  EXPECT_EQ(count("\"kind\":\"instant\",\"name\":\"step\""), 1u);
}

}  // namespace
}  // namespace tyder::obs
