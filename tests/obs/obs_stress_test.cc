// Concurrency stress for the lock-free observability primitives. These
// suites are named ObsStress* so `scripts/run_all.sh tsan` picks them up:
// the sharded counter, the bucketed histogram, the flight recorder, and the
// stats snapshot line must all be clean under ThreadSanitizer while readers
// and writers overlap.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/sharded_counter.h"
#include "obs/snapshotter.h"

namespace tyder::obs {
namespace {

constexpr int kThreads = 4;
constexpr int kIters = 20000;

TEST(ObsStressCounter, ConcurrentAddsAllLand) {
  ShardedCounter counter;
  std::atomic<bool> stop{false};
  // A racing reader: value() must be safe (and monotone) mid-traffic.
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t now = counter.value();
      EXPECT_GE(now, last);
      last = now;
    }
  });
  {
    std::vector<std::jthread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) counter.Add(1);
      });
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ObsStressHistogram, ConcurrentRecordsWithRacingSnap) {
  Histogram histogram;
  std::atomic<bool> stop{false};
  std::thread snapper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Histogram::Snapshot snap = histogram.Snap();
      EXPECT_LE(snap.min, snap.max);
      EXPECT_LE(snap.p50, snap.p95);
      EXPECT_LE(snap.p95, snap.p99);
    }
  });
  {
    std::vector<std::jthread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          histogram.Record((i + t * 37) & 0xFFFF);
        }
      });
    }
  }
  stop.store(true, std::memory_order_release);
  snapper.join();
  Histogram::Snapshot final_snap = histogram.Snap();
  EXPECT_EQ(final_snap.count, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ObsStressFlightRecorder, ConcurrentRecordsWithRacingDump) {
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto dumps = FlightRecorder::Snapshot();
      for (const auto& dump : dumps) {
        EXPECT_LE(dump.events.size(), FlightRecorder::kRingSize);
      }
      std::string json = FlightRecorder::DumpJson("stress");
      EXPECT_NE(json.find("tyder-flight-v1"), std::string::npos);
    }
  });
  {
    std::vector<std::jthread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kIters / 4; ++i) {
          FlightRecorder::Record(FlightEventKind::kMark, "stress.flight",
                                 t * kIters + i);
        }
      });
    }
  }
  stop.store(true, std::memory_order_release);
  dumper.join();
}

TEST(ObsStressSnapshotLine, ConcurrentWithRegistryTraffic) {
  std::atomic<bool> stop{false};
  std::thread snapper([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::string line = StatsSnapshotter::SnapshotLine(seq++);
      EXPECT_NE(line.find("tyder-stats-v1"), std::string::npos);
    }
  });
  {
    std::vector<std::jthread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&] {
        MetricsRegistry& registry = MetricsRegistry::Global();
        Counter* counter = registry.GetCounter("stress.line_counter");
        Histogram* histogram = registry.GetHistogram("stress.line_ns");
        for (int i = 0; i < kIters / 4; ++i) {
          counter->Add(1);
          histogram->Record(i);
          FlightRecorder::Record(FlightEventKind::kOp, "stress.line", i);
        }
      });
    }
  }
  stop.store(true, std::memory_order_release);
  snapper.join();
}

}  // namespace
}  // namespace tyder::obs
