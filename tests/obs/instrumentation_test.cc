// End-to-end checks that the instrumented library paths produce
// deterministic counters and well-nested spans on the paper's fixed schemas.

#include <gtest/gtest.h>

#include "core/projection.h"
#include "instances/store.h"
#include "methods/dispatch.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "query/query.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

using obs::MetricsRegistry;
using obs::TraceEvent;

#if TYDER_OBS_ENABLED

TEST(InstrumentationTest, SubtypeCacheHitMissIsDeterministic) {
  // Build a private graph so no other code has warmed its ancestor closure;
  // every mutation invalidates the closure, so it is provably cold after the
  // last edge insertion.
  TypeGraph graph;
  auto base = graph.DeclareType("ObsBase", TypeKind::kUser);
  ASSERT_TRUE(base.ok());
  auto mid = graph.DeclareType("ObsMid", TypeKind::kUser);
  ASSERT_TRUE(mid.ok());
  auto leaf = graph.DeclareType("ObsLeaf", TypeKind::kUser);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(graph.AddSupertype(*mid, *base).ok());
  ASSERT_TRUE(graph.AddSupertype(*leaf, *mid).ok());
  // Build every closure row for the final hierarchy outside the measured
  // window, so the queries below are pure warm-path reads.
  graph.PrewarmClosure();

  MetricsRegistry::Global().Reset();
  // Every query against the unchanged graph hits the prewarmed closure,
  // whatever row it touches.
  EXPECT_TRUE(graph.IsSubtype(*leaf, *base));
  EXPECT_TRUE(graph.IsSubtype(*leaf, *mid));
  EXPECT_FALSE(graph.IsSubtype(*base, *leaf));
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("subtype.queries"), 3u);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("subtype.cache_hit"), 3u);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("subtype.cache_miss"), 0u);

  // Reflexive queries short-circuit before the cache.
  EXPECT_TRUE(graph.IsSubtype(*leaf, *leaf));
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("subtype.queries"), 4u);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("subtype.cache_hit"), 3u);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("subtype.cache_miss"), 0u);

  // Mutating the graph invalidates the whole closure; the next query
  // rebuilds it (a miss that replaces a previous build counts as an
  // invalidation).
  auto extra = graph.DeclareType("ObsExtra", TypeKind::kUser);
  ASSERT_TRUE(extra.ok());
  EXPECT_TRUE(graph.IsSubtype(*leaf, *base));  // rebuild -> miss
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("subtype.cache_miss"), 1u);
  EXPECT_EQ(
      MetricsRegistry::Global().CounterValue("subtype.cache_invalidations"),
      1u);
}

TEST(InstrumentationTest, DispatchCountersOnExample1AreDeterministic) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  auto u = fx->schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());

  // Warm both call sites once, then require identical dispatch sweeps to
  // produce identical counter deltas: every warm dispatch is a call-site
  // cache hit, so it touches neither the applicability tables nor the
  // subtype closure.
  ASSERT_TRUE(Dispatch(fx->schema, *u, {fx->a}).ok());
  ASSERT_TRUE(Dispatch(fx->schema, *u, {fx->b}).ok());

  auto sweep_delta = [&](const char* name) {
    MetricsRegistry::Global().Reset();
    EXPECT_TRUE(Dispatch(fx->schema, *u, {fx->a}).ok());
    EXPECT_TRUE(Dispatch(fx->schema, *u, {fx->b}).ok());
    return MetricsRegistry::Global().CounterValue(name);
  };
  EXPECT_EQ(sweep_delta("dispatch.calls"), 2u);
  EXPECT_EQ(sweep_delta("dispatch.cache_hit"), 2u);
  EXPECT_EQ(sweep_delta("dispatch.cache_miss"), 0u);
  EXPECT_EQ(sweep_delta("dispatch.table_builds"), 0u);
  EXPECT_EQ(sweep_delta("subtype.cache_miss"), 0u);
}

TEST(InstrumentationTest, QueryCountersCountScannedFilteredEmitted) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  ObjectStore store;
  for (double pay : {40.0, 90.0, 120.0}) {
    auto obj = store.CreateObject(fx->schema, fx->employee);
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(store.SetSlot(*obj, fx->pay_rate, Value::Float(pay)).ok());
    ASSERT_TRUE(store.SetSlot(*obj, fx->date_of_birth, Value::Int(1980)).ok());
    ASSERT_TRUE(store.SetSlot(*obj, fx->hrs_worked, Value::Float(40.0)).ok());
    ASSERT_TRUE(store.SetSlot(*obj, fx->ssn, Value::String("s")).ok());
  }

  MetricsRegistry::Global().Reset();
  Query query(fx->schema, "Employee");
  query.WhereTdl("get_pay_rate(self) < 100.0").Column("get_SSN");
  auto result = query.Execute(store);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->objects.size(), 2u);
  MetricsRegistry& m = MetricsRegistry::Global();
  EXPECT_EQ(m.CounterValue("query.executions"), 1u);
  EXPECT_EQ(m.CounterValue("query.objects_scanned"), 3u);
  EXPECT_EQ(m.CounterValue("query.objects_filtered_out"), 1u);
  EXPECT_EQ(m.CounterValue("query.rows_emitted"), 2u);
}

TEST(InstrumentationTest, DerivationBumpsPipelineCounters) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  MetricsRegistry::Global().Reset();
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());
  MetricsRegistry& m = MetricsRegistry::Global();
  EXPECT_EQ(m.CounterValue("projection.derivations"), 1u);
  EXPECT_EQ(m.CounterValue("applicability.runs"), 1u);
  EXPECT_GT(m.CounterValue("applicability.method_checks"), 0u);
  EXPECT_GT(m.CounterValue("dataflow.analyses"), 0u);
  EXPECT_GT(m.CounterValue("dataflow.fixpoint_iterations"), 0u);
  // The behavior-preservation verifier probes the dispatch outcome of every
  // generic function over both schemas (without going through the call-site
  // cache — each probe is a distinct call site).
  EXPECT_GT(m.CounterValue("verify.dispatch_probes"), 0u);
}

#endif  // TYDER_OBS_ENABLED

TEST(InstrumentationTest, DerivationSpansMatchThePaperPhases) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ProjectionOptions options;
  options.record_trace = true;
  auto result = DeriveProjection(fx->schema, spec, options);
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<std::string> phase_spans;
  for (const TraceEvent& e : result->events) {
    if (e.kind == TraceEvent::Kind::kBegin && e.depth == 1) {
      phase_spans.push_back(e.name);
    }
  }
  EXPECT_EQ(phase_spans,
            (std::vector<std::string>{"IsApplicable", "FactorState", "Augment",
                                      "FactorMethods", "Verify"}));
  ASSERT_FALSE(result->events.empty());
  EXPECT_EQ(result->events.front().name, "DeriveProjection");
  EXPECT_EQ(result->events.front().depth, 0);

  // Every span closes, and narration lines sit strictly inside the pipeline
  // span (depth >= 1).
  int open = 0;
  for (const TraceEvent& e : result->events) {
    if (e.kind == TraceEvent::Kind::kBegin) ++open;
    if (e.kind == TraceEvent::Kind::kEnd) --open;
    if (e.kind == TraceEvent::Kind::kInstant) {
      EXPECT_GE(e.depth, 1);
    }
    EXPECT_GE(open, 0);
  }
  EXPECT_EQ(open, 0);

  // The legacy rendering equals the instant events, in order.
  EXPECT_EQ(result->trace, obs::RenderNarration(result->events));
  EXPECT_FALSE(result->trace.empty());
}

TEST(InstrumentationTest, AmbientTracerSeesTheDerivation) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    ProjectionSpec spec;
    spec.source = fx->a;
    spec.attributes = {fx->a2, fx->e2, fx->h2};
    spec.view_name = "ProjA";
    // Even without record_trace the events flow to the installed tracer.
    ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());
  }
  bool saw_pipeline = false;
  bool saw_narration = false;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == TraceEvent::Kind::kBegin && e.name == "DeriveProjection") {
      saw_pipeline = true;
    }
    if (e.kind == TraceEvent::Kind::kInstant) saw_narration = true;
  }
  EXPECT_TRUE(saw_pipeline);
  EXPECT_TRUE(saw_narration);
}

}  // namespace
}  // namespace tyder
