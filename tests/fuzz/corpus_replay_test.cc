// Replays the checked-in regression corpus (tests/fuzz/corpus/*.trace)
// through the fuzzer. Every corpus trace must parse and run clean; the
// corpus must stay big enough to be worth having.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"

#ifndef TYDER_FUZZ_CORPUS_DIR
#error "TYDER_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace tyder::fuzz {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TYDER_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".trace") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string Slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(FuzzCorpusTest, CorpusIsLargeEnough) {
  EXPECT_GE(CorpusFiles().size(), 25u);
}

TEST(FuzzCorpusTest, CorpusCoversCrashRecoveryAndShrunkTraces) {
  bool has_crash_op = false;
  bool has_shrunk = false;
  for (const auto& path : CorpusFiles()) {
    std::string text = Slurp(path);
    Result<FuzzTrace> trace = ParseTrace(text);
    ASSERT_TRUE(trace.ok()) << path << ": " << trace.status().ToString();
    for (const FuzzOp& op : trace->ops) {
      if (op.kind == OpKind::kCrash) has_crash_op = true;
    }
    if (text.find("shrink") != std::string::npos) has_shrunk = true;
  }
  EXPECT_TRUE(has_crash_op)
      << "corpus needs at least one crash-recovery trace";
  EXPECT_TRUE(has_shrunk)
      << "corpus needs at least one shrink-produced trace";
}

TEST(FuzzCorpusTest, EveryTraceReplaysClean) {
  auto files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    Result<FuzzTrace> trace = ParseTrace(Slurp(path));
    ASSERT_TRUE(trace.ok()) << path << ": " << trace.status().ToString();
    RunResult run = RunTrace(*trace);
    EXPECT_TRUE(run.status.ok())
        << path << " failed at op " << run.failing_step << ": "
        << run.status.ToString();
  }
}

}  // namespace
}  // namespace tyder::fuzz
