#include "fuzz/fuzzer.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/failpoint.h"
#include "obs/obs.h"
#include "oracle/differential.h"
#include "oracle/reference.h"
#include "storage/catalog_snapshot.h"
#include "storage/durable_catalog.h"
#include "storage/faulty_env.h"

namespace tyder::fuzz {

namespace {

// ---------------------------------------------------------------------------
// The naive in-memory model: type names, direct-supertype names, local
// attribute names, and each view's projected attribute-name set. Cumulative
// state is recomputed from scratch on every query by a name-level BFS — a
// from-first-principles shadow of the paper's guarantee that derivation
// preserves every pre-existing type's cumulative state.
// ---------------------------------------------------------------------------

struct ModelType {
  std::vector<std::string> supers;  // direct supertypes, addition order
  // Derivation-implied edges: the projection operation makes the source a
  // subtype of the derived view (the view is more general), so a supertype
  // the view acquires later flows down into the source's cumulative state.
  // Kept apart from `supers` because DropView reverts these, while a real
  // edge pointing at a view must make the engine refuse the drop.
  std::vector<std::string> view_supers;
  std::set<std::string> locals;  // locally declared attribute names
  bool is_view = false;
  std::set<std::string> view_attrs;  // projected set (views only)
};

struct Model {
  // std::map: iteration order is sorted, which keeps payload-modulo
  // candidate selection deterministic.
  std::map<std::string, ModelType> types;
  std::vector<std::string> view_order;  // mirrors the catalog registry order

  std::vector<std::string> TrackedNames() const {
    std::vector<std::string> names;
    names.reserve(types.size());
    for (const auto& [name, t] : types) names.push_back(name);
    return names;
  }

  std::vector<std::string> BaseNames() const {
    std::vector<std::string> names;
    for (const auto& [name, t] : types) {
      if (!t.is_view) names.push_back(name);
    }
    return names;
  }

  // Cumulative attribute names of `name`: BFS over supers, each tracked type
  // visited once. A view contributes its projected set (its surrogate
  // ancestry is the engine's business, not the model's); a base type
  // contributes its local attributes.
  std::set<std::string> Cumulative(const std::string& name) const {
    std::set<std::string> attrs;
    std::set<std::string> seen{name};
    std::vector<const std::string*> queue{&name};
    while (!queue.empty()) {
      const std::string& cur = *queue.back();
      queue.pop_back();
      auto it = types.find(cur);
      if (it == types.end()) continue;
      const ModelType& t = it->second;
      if (t.is_view) {
        attrs.insert(t.view_attrs.begin(), t.view_attrs.end());
      }
      attrs.insert(t.locals.begin(), t.locals.end());
      for (const std::string& super : t.supers) {
        if (seen.insert(super).second) queue.push_back(&super);
      }
      for (const std::string& super : t.view_supers) {
        if (seen.insert(super).second) queue.push_back(&super);
      }
    }
    return attrs;
  }

  // Reflexive-transitive reachability over direct supers (name level).
  bool Reaches(const std::string& from, const std::string& to) const {
    if (from == to) return true;
    std::set<std::string> seen{from};
    std::vector<const std::string*> queue{&from};
    while (!queue.empty()) {
      const std::string& cur = *queue.back();
      queue.pop_back();
      auto it = types.find(cur);
      if (it == types.end()) continue;
      for (const std::string& super : it->second.supers) {
        if (super == to) return true;
        if (seen.insert(super).second) queue.push_back(&super);
      }
      for (const std::string& super : it->second.view_supers) {
        if (super == to) return true;
        if (seen.insert(super).second) queue.push_back(&super);
      }
    }
    return false;
  }
};

const char* OpName(OpKind kind) {
  switch (kind) {
    case OpKind::kDerive:   return "derive";
    case OpKind::kCollapse: return "collapse";
    case OpKind::kDrop:     return "drop";
    case OpKind::kQuery:    return "query";
    case OpKind::kNewType:  return "newtype";
    case OpKind::kNewAttr:  return "newattr";
    case OpKind::kNewEdge:  return "newedge";
    case OpKind::kSave:     return "save";
    case OpKind::kLoad:     return "load";
    case OpKind::kCrash:    return "crash";
    case OpKind::kEnvFault: return "envfault";
    case OpKind::kConCommit: return "concommit";
  }
  return "?";
}

bool OpKindFromName(std::string_view name, OpKind* kind) {
  for (OpKind k : {OpKind::kDerive, OpKind::kCollapse, OpKind::kDrop,
                   OpKind::kQuery, OpKind::kNewType, OpKind::kNewAttr,
                   OpKind::kNewEdge, OpKind::kSave, OpKind::kLoad,
                   OpKind::kCrash, OpKind::kEnvFault, OpKind::kConCommit}) {
    if (name == OpName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

Status Fail(std::string message) {
  TYDER_COUNT("fuzz.violations");
  return Status::Internal(std::move(message));
}

// ---------------------------------------------------------------------------
// TraceRunner: executes one trace against a real Catalog + the model.
// ---------------------------------------------------------------------------

class TraceRunner {
 public:
  explicit TraceRunner(Schema schema) : catalog_(std::move(schema)) {}

  Status Init() {
    const TypeGraph& graph = catalog_.schema().types();
    for (TypeId t = 0; t < graph.NumTypes(); ++t) {
      if (graph.type(t).kind() != TypeKind::kUser) continue;
      ModelType mt;
      for (TypeId super : graph.type(t).supertypes()) {
        mt.supers.push_back(graph.TypeName(super));
      }
      for (AttrId a : graph.type(t).local_attributes()) {
        mt.locals.insert(graph.attribute(a).name.str());
      }
      model_.types[graph.TypeName(t)] = std::move(mt);
    }
    return CheckStep();
  }

  Status Execute(const FuzzOp& op) {
    switch (op.kind) {
      case OpKind::kDerive:   return DoDerive(op);
      case OpKind::kCollapse: return DoCollapse();
      case OpKind::kDrop:     return DoDrop(op);
      case OpKind::kQuery:    return DoQuery(op);
      case OpKind::kNewType:  return DoNewType(op);
      case OpKind::kNewAttr:  return DoNewAttr(op);
      case OpKind::kNewEdge:  return DoNewEdge(op);
      case OpKind::kSave:     return DoSave();
      case OpKind::kLoad:     return DoLoad();
      case OpKind::kCrash:    return DoCrash(op);
      case OpKind::kEnvFault: return DoEnvFault(op);
      case OpKind::kConCommit: return DoConCommit(op);
    }
    return Fail("unknown op kind");
  }

  // engine==oracle (cheap exhaustive sweeps) + model==catalog + validity.
  Status CheckStep() {
    TYDER_RETURN_IF_ERROR(catalog_.schema().Validate());
    TYDER_RETURN_IF_ERROR(CheckModelAgainstCatalog());
    TYDER_RETURN_IF_ERROR(oracle::CheckSubtypeOracle(catalog_.schema()));
    TYDER_RETURN_IF_ERROR(
        oracle::CheckCumulativeStateOracle(catalog_.schema()));
    return Status::OK();
  }

 private:
  // --- shared helpers -------------------------------------------------------

  Status CheckModelAgainstCatalog() {
    const auto& views = catalog_.views();
    if (views.size() != model_.view_order.size()) {
      return Fail("model tracks " + std::to_string(model_.view_order.size()) +
                  " views, catalog has " + std::to_string(views.size()));
    }
    for (size_t i = 0; i < views.size(); ++i) {
      if (views[i].name != model_.view_order[i]) {
        return Fail("view registry order diverged at index " +
                    std::to_string(i) + ": catalog '" + views[i].name +
                    "', model '" + model_.view_order[i] + "'");
      }
    }
    const TypeGraph& graph = catalog_.schema().types();
    for (const auto& [name, mt] : model_.types) {
      Result<TypeId> tid = graph.FindType(name);
      if (!tid.ok()) {
        return Fail("model type '" + name + "' is absent from the catalog");
      }
      std::set<std::string> engine;
      for (AttrId a : graph.CumulativeAttributes(*tid)) {
        engine.insert(graph.attribute(a).name.str());
      }
      std::set<std::string> expected = model_.Cumulative(name);
      if (engine != expected) {
        auto join = [](const std::set<std::string>& s) {
          std::string out;
          for (const std::string& x : s) out += (out.empty() ? "" : ",") + x;
          return out;
        };
        std::string supers;
        for (const std::string& s : mt.supers) supers += s + " ";
        return Fail("cumulative state of '" + name + "' diverged: engine {" +
                    join(engine) + "}, model {" + join(expected) +
                    "} [model supers: " + supers + "]");
      }
    }
    return Status::OK();
  }

  std::string Serialized() const {
    return storage::SerializeCatalog(catalog_);
  }

  Status CheckUnchanged(const std::string& pre, const std::string& what) {
    if (Serialized() != pre) {
      return Fail(what + " was refused but mutated the catalog "
                  "(all-or-nothing violated)");
    }
    return Status::OK();
  }

  void ApplyDeriveToModel(const std::string& vname, const std::string& src,
                          std::set<std::string> attr_set) {
    ModelType mt;
    mt.is_view = true;
    mt.view_attrs = std::move(attr_set);
    model_.types[vname] = std::move(mt);
    model_.view_order.push_back(vname);
    model_.types[src].view_supers.push_back(vname);
  }

  Status ApplyDropToModel(const std::string& vname) {
    for (auto& [name, mt] : model_.types) {
      for (const std::string& super : mt.supers) {
        if (super == vname) {
          return Fail("catalog dropped view '" + vname +
                      "' while model type '" + name + "' still subtypes it");
        }
      }
      auto it =
          std::find(mt.view_supers.begin(), mt.view_supers.end(), vname);
      if (it != mt.view_supers.end()) mt.view_supers.erase(it);
    }
    model_.types.erase(vname);
    model_.view_order.erase(std::find(model_.view_order.begin(),
                                      model_.view_order.end(), vname));
    return Status::OK();
  }

  // --- operations -----------------------------------------------------------

  Status DoDerive(const FuzzOp& op) {
    std::vector<std::string> names = model_.TrackedNames();
    const std::string& src = names[op.a % names.size()];
    std::set<std::string> cum_set = model_.Cumulative(src);
    if (cum_set.empty()) return Status::OK();  // nothing to project
    std::vector<std::string> cum(cum_set.begin(), cum_set.end());
    size_t n = cum.size();
    size_t count = 1 + op.b % n;
    size_t start = op.c % n;
    std::vector<std::string> attrs;
    std::set<std::string> attr_set;
    for (size_t k = 0; k < count; ++k) {
      attrs.push_back(cum[(start + k) % n]);
      attr_set.insert(attrs.back());
    }
    std::string vname = "FZV" + std::to_string(next_view_++);
    std::string pre = Serialized();
    Result<const ViewDef*> r =
        catalog_.DefineProjectionView(vname, src, attrs);
    if (!r.ok()) {
      // A refused derivation is tolerated (the verifier may legitimately
      // reject exotic schemas) but must be invisible.
      return CheckUnchanged(pre, "DefineProjectionView(" + vname + ")");
    }
    ApplyDeriveToModel(vname, src, std::move(attr_set));
    // Section 5, from first principles: derived cumulative state == the
    // projected attribute set.
    return oracle::CheckDerivedState(catalog_.schema(), (*r)->derived,
                                     (*r)->attributes);
  }

  Status DoCollapse() {
    Result<CollapseReport> r = catalog_.Collapse();
    if (!r.ok()) {
      return Fail("Collapse failed: " + r.status().ToString());
    }
    return Status::OK();  // collapse must be invisible to tracked state
  }

  Status DoDrop(const FuzzOp& op) {
    if (model_.view_order.empty()) return Status::OK();
    std::string vname = model_.view_order[op.a % model_.view_order.size()];
    std::string pre = Serialized();
    Status s = catalog_.DropView(vname);
    if (!s.ok()) {
      // Refusals (view observed by later derivations, subtypes, ...) are
      // legitimate but must be invisible.
      return CheckUnchanged(pre, "DropView(" + vname + ")");
    }
    return ApplyDropToModel(vname);
  }

  Status DoQuery(const FuzzOp& op) {
    oracle::DifferentialOptions dopts;
    dopts.seed = op.a * 2654435761u + op.b + 0x9e3779b9u;
    // Light per-op sampling: breadth comes from the campaign running
    // thousands of seeds, not from exhausting each schema on every query op.
    // Dispatch only — CheckStep repeats the subtype/cumulative sweeps anyway.
    dopts.tuples_per_gf = 3;
    dopts.exhaustive_tuple_limit = 16;
    return oracle::CheckDispatchOracle(catalog_.schema(), dopts);
  }

  Status DoNewType(const FuzzOp& op) {
    std::vector<std::string> names = model_.TrackedNames();
    std::string tname = "FZT" + std::to_string(next_type_++);
    std::vector<std::string> supers;
    uint32_t picks[2] = {op.b, op.c};
    int want = 1 + static_cast<int>(op.a % 2);
    for (int i = 0; i < want; ++i) {
      const std::string& cand = names[picks[i] % names.size()];
      if (std::find(supers.begin(), supers.end(), cand) == supers.end()) {
        supers.push_back(cand);
      }
    }
    TypeGraph& graph = catalog_.schema().types();
    Result<TypeId> tid = graph.DeclareType(tname, TypeKind::kUser);
    if (!tid.ok()) {
      return Fail("DeclareType(" + tname + ") failed: " +
                  tid.status().ToString());
    }
    for (const std::string& super : supers) {
      Status s = graph.AddSupertype(*tid, *graph.FindType(super));
      if (!s.ok()) {
        return Fail("AddSupertype(" + tname + ", " + super + ") failed: " +
                    s.ToString());
      }
    }
    ModelType mt;
    mt.supers = std::move(supers);
    model_.types[tname] = std::move(mt);
    return Status::OK();
  }

  Status DoNewAttr(const FuzzOp& op) {
    std::vector<std::string> bases = model_.BaseNames();
    if (bases.empty()) return Status::OK();
    const std::string& owner = bases[op.a % bases.size()];
    std::string aname = "fza" + std::to_string(next_attr_++);
    TypeGraph& graph = catalog_.schema().types();
    Result<AttrId> r = graph.DeclareAttribute(
        *graph.FindType(owner), aname, catalog_.schema().builtins().int_type);
    if (!r.ok()) {
      return Fail("DeclareAttribute(" + owner + ", " + aname + ") failed: " +
                  r.status().ToString());
    }
    model_.types[owner].locals.insert(aname);
    return Status::OK();
  }

  Status DoNewEdge(const FuzzOp& op) {
    std::vector<std::string> names = model_.TrackedNames();
    const std::string& sub = names[op.a % names.size()];
    const std::string& super = names[op.b % names.size()];
    TypeGraph& graph = catalog_.schema().types();
    TypeId sub_id = *graph.FindType(sub);
    TypeId super_id = *graph.FindType(super);
    std::string pre = Serialized();
    Status s = graph.AddSupertype(sub_id, super_id);
    if (sub == super) {
      if (s.ok()) return Fail("self supertype edge on '" + sub + "' accepted");
      return CheckUnchanged(pre, "self-edge refusal");
    }
    if (model_.Reaches(super, sub)) {
      // Model reachability is a subset of engine reachability (derivation
      // preserves all pre-existing subtype relations), so the engine must
      // refuse this cycle too.
      if (s.ok()) {
        return Fail("cycle-closing edge " + sub + " -> " + super +
                    " accepted by the engine");
      }
      return CheckUnchanged(pre, "cycle refusal");
    }
    if (s.ok()) {
      model_.types[sub].supers.push_back(super);
      return Status::OK();
    }
    if (s.code() == StatusCode::kAlreadyExists) {
      // Post-factoring the engine can hold a direct edge the model tracks
      // only transitively. A duplicate refusal is fine if invisible.
      return CheckUnchanged(pre, "duplicate-edge refusal");
    }
    // A cycle the model cannot see must go through real engine reachability
    // (surrogate chains); cross-check with the naive oracle walk.
    if (oracle::RefIsSubtype(graph, super_id, sub_id)) {
      return CheckUnchanged(pre, "surrogate-cycle refusal");
    }
    return Fail("AddSupertype(" + sub + ", " + super +
                ") refused without cause: " + s.ToString());
  }

  Status DoSave() {
    saved_bytes_ = storage::SaveCatalogSnapshot(catalog_);
    saved_model_ = model_;
    has_save_ = true;
    Result<Catalog> rt = storage::LoadCatalogSnapshot(saved_bytes_);
    if (!rt.ok()) {
      return Fail("saved snapshot does not load back: " +
                  rt.status().ToString());
    }
    if (storage::SerializeCatalog(*rt) != Serialized()) {
      return Fail("snapshot round trip is not byte-identical");
    }
    return Status::OK();
  }

  Status DoLoad() {
    if (!has_save_) return Status::OK();
    Result<Catalog> r = storage::LoadCatalogSnapshot(saved_bytes_);
    if (!r.ok()) {
      return Fail("snapshot reload failed: " + r.status().ToString());
    }
    catalog_ = std::move(*r);
    model_ = saved_model_;  // name counters stay monotonic on purpose
    return Status::OK();
  }

  // The mutation a kCrash / kEnvFault op interrupts, resolved against the
  // model's current candidate lists at execution time.
  struct InterruptedOp {
    int variant = 0;  // 0 derive, 1 drop, 2 collapse, 3 compact
    std::string vname, src;
    std::vector<std::string> attrs;
    std::set<std::string> attr_set;
    bool skip = false;  // nothing projectable: the op is a no-op
  };

  InterruptedOp ResolveInterrupted(const FuzzOp& op) {
    InterruptedOp iop;
    iop.variant = static_cast<int>(op.a % 4);  // derive/drop/collapse/compact
    if (iop.variant == 1 && model_.view_order.empty()) iop.variant = 0;
    if (iop.variant == 0) {
      std::vector<std::string> names = model_.TrackedNames();
      iop.src = names[op.b % names.size()];
      std::set<std::string> cum_set = model_.Cumulative(iop.src);
      if (cum_set.empty()) {
        iop.skip = true;
        return iop;
      }
      std::vector<std::string> cum(cum_set.begin(), cum_set.end());
      size_t count = 1 + op.b % cum.size();
      for (size_t k = 0; k < count; ++k) {
        iop.attrs.push_back(cum[k % cum.size()]);
      }
      iop.attr_set.insert(iop.attrs.begin(), iop.attrs.end());
      iop.vname = "FZV" + std::to_string(next_view_++);
    } else if (iop.variant == 1) {
      iop.vname = model_.view_order[op.b % model_.view_order.size()];
    }
    return iop;
  }

  template <typename T>
  static bool ApplyInterrupted(const InterruptedOp& iop, T& target) {
    switch (iop.variant) {
      case 0:
        return target.DefineProjectionView(iop.vname, iop.src, iop.attrs).ok();
      case 1:
        return target.DropView(iop.vname).ok();
      default:
        return target.Collapse().ok();
    }
  }

  // What the catalog serializes to if the interrupted op commits (== `pre`
  // for compaction and for ops the engine refuses outright).
  std::string PostState(const InterruptedOp& iop, const std::string& pre,
                        bool* would_commit) {
    *would_commit = iop.variant == 3;
    if (iop.variant == 3) return pre;  // compaction never changes the catalog
    Catalog copy = catalog_;
    *would_commit = ApplyInterrupted(iop, copy);
    return *would_commit ? storage::SerializeCatalog(copy) : pre;
  }

  std::filesystem::path EphemeralDir(const char* tag) {
    static std::atomic<uint64_t> dir_counter{0};
    return std::filesystem::temp_directory_path() /
           ("tyder-fuzz-" + std::string(tag) + std::to_string(::getpid()) +
            "-" + std::to_string(dir_counter.fetch_add(1)));
  }

  // Recovery landed on `recovered`: adopt it and sync the model to
  // whichever side of the interrupted op it is.
  Status AdoptRecovered(const InterruptedOp& iop, storage::DurableCatalog& re,
                        const std::string& recovered, const std::string& pre,
                        const std::string& post) {
    catalog_ = re.catalog();
    if (recovered == post && recovered != pre) {
      if (iop.variant == 0) {
        ApplyDeriveToModel(iop.vname, iop.src, iop.attr_set);
      } else if (iop.variant == 1) {
        TYDER_RETURN_IF_ERROR(ApplyDropToModel(iop.vname));
      }
    }
    return Status::OK();
  }

  Status DoCrash(const FuzzOp& op) {
    static const char* const kWalFaults[] = {
        "storage.wal.after_append", "storage.wal.after_sync",
        "storage.wal.mid_fsync", "storage.wal.torn_write"};
    static const char* const kCompactFaults[] = {
        "storage.compact.before_rename", "storage.compact.after_rename"};

    InterruptedOp iop = ResolveInterrupted(op);
    if (iop.skip) return Status::OK();
    const char* fault = iop.variant == 3 ? kCompactFaults[op.c % 2]
                                         : kWalFaults[op.c % 4];

    std::string pre = Serialized();
    bool would_commit = false;
    std::string post = PostState(iop, pre, &would_commit);

    std::filesystem::path dir = EphemeralDir("");
    {
      Result<storage::DurableCatalog> db =
          storage::DurableCatalog::Open(dir.string());
      if (!db.ok()) {
        return Fail("DurableCatalog::Open failed: " + db.status().ToString());
      }
      Status seeded = db->Seed(catalog_);
      if (!seeded.ok()) {
        return Fail("DurableCatalog::Seed failed: " + seeded.ToString());
      }
      failpoint::Activate(fault, 1);
      if (iop.variant == 3) {
        (void)db->Compact();
      } else {
        (void)ApplyInterrupted(iop, *db);
      }
      failpoint::Deactivate(fault);
    }  // drop the handle: the "crash"

    Result<storage::DurableCatalog> re =
        storage::DurableCatalog::Open(dir.string());
    std::error_code ec;
    if (!re.ok()) {
      std::filesystem::remove_all(dir, ec);
      return Fail("recovery after fault '" + std::string(fault) +
                  "' failed: " + re.status().ToString());
    }
    std::string recovered = storage::SerializeCatalog(re->catalog());
    std::filesystem::remove_all(dir, ec);
    if (recovered != pre && recovered != post) {
      return Fail("recovery after fault '" + std::string(fault) +
                  "' landed on neither the pre- nor the post-state of the "
                  "interrupted op");
    }
    return AdoptRecovered(iop, *re, recovered, pre, post);
  }

  // An injected I/O error (rather than a simulated crash): the operation
  // runs against an ephemeral DurableCatalog whose Env fails one call.
  // Afterwards the instance must be consistent (pre- or post-state) or
  // provably read-only in degraded mode; then the instance "crashes"
  // (optionally with a power loss that drops everything unsynced) and
  // recovery must land byte-identical to pre or post — with an acknowledged
  // op surviving the power loss.
  Status DoEnvFault(const FuzzOp& op) {
    InterruptedOp iop = ResolveInterrupted(op);
    if (iop.skip) return Status::OK();

    static const storage::FaultyEnv::FaultKind kKinds[] = {
        storage::FaultyEnv::FaultKind::kError,
        storage::FaultyEnv::FaultKind::kShortWrite,
        storage::FaultyEnv::FaultKind::kSyncFail,
        storage::FaultyEnv::FaultKind::kEnospc};
    storage::FaultyEnv::FaultKind kind = kKinds[op.c % 4];
    // Compaction makes ~9 Env calls, a WAL append 2: indexes past the op's
    // last call simply never fire, which is a legitimate (clean) cell.
    int index = static_cast<int>((op.c / 4) % 10);
    bool power_loss = (op.b % 2) != 0;

    std::string pre = Serialized();
    bool would_commit = false;
    std::string post = PostState(iop, pre, &would_commit);

    std::filesystem::path dir = EphemeralDir("env-");
    storage::FaultyEnv env;
    bool op_ok = false;
    std::error_code ec;
    {
      Result<storage::DurableCatalog> db =
          storage::DurableCatalog::Open(dir.string(), &env);
      if (!db.ok()) {
        return Fail("DurableCatalog::Open failed: " + db.status().ToString());
      }
      Status seeded = db->Seed(catalog_);
      if (!seeded.ok()) {
        return Fail("DurableCatalog::Seed failed: " + seeded.ToString());
      }
      env.ResetCounters();
      env.InjectAt(kind, index);
      if (iop.variant == 3) {
        op_ok = db->Compact().ok();
      } else {
        op_ok = ApplyInterrupted(iop, *db);
      }
      env.ClearFaults();

      std::string in_memory = storage::SerializeCatalog(db->catalog());
      if (db->degraded()) {
        // Provably read-only: reads serve the pre-state, mutations refuse.
        if (op_ok) {
          return Fail("degraded database reported the env-faulted op OK");
        }
        if (in_memory != pre) {
          return Fail("degraded database is not serving the pre-state");
        }
        Status refused = db->DropView("NoSuchView");
        if (refused.code() != StatusCode::kFailedPrecondition ||
            refused.message().find("degraded") == std::string::npos) {
          return Fail("degraded database accepted (or mislabeled) a "
                      "mutation: " + refused.ToString());
        }
      } else if (in_memory != (op_ok ? post : pre)) {
        return Fail(std::string("env-faulted op ") +
                    (op_ok ? "committed" : "failed") +
                    " but the live catalog matches neither side");
      }
    }  // crash: drop the handle
    if (power_loss) env.PowerLoss();

    Result<storage::DurableCatalog> re =
        storage::DurableCatalog::Open(dir.string());
    if (!re.ok()) {
      std::filesystem::remove_all(dir, ec);
      return Fail("recovery after an injected env fault failed: " +
                  re.status().ToString());
    }
    std::string recovered = storage::SerializeCatalog(re->catalog());
    std::filesystem::remove_all(dir, ec);
    if (recovered != pre && recovered != post) {
      return Fail("recovery after an injected env fault landed on neither "
                  "the pre- nor the post-state of the interrupted op");
    }
    if (op_ok && power_loss && recovered != post) {
      return Fail("acknowledged op did not survive the power loss "
                  "(durability violated)");
    }
    return AdoptRecovered(iop, *re, recovered, pre, post);
  }

  // Concurrent group commit: K threads each commit one projection view
  // through the group-committed WAL of an ephemeral DurableCatalog seeded
  // with the trace's catalog, optionally with an I/O fault injected into
  // the batch window and a power loss after the crash. The commit-ack
  // contract is checked from both sides:
  //
  //   acknowledged  => the view is visible in-memory AND survives
  //                    crash + power loss (durability),
  //   unacknowledged => the view is never visible, live or recovered
  //                    (all-or-nothing, even when the record died only
  //                    because an earlier record in its batch did).
  //
  // Recovery may additionally land on any subset of the attempted batch
  // that contains every acknowledged op (a whole-record WAL prefix of the
  // group append). The trace's own catalog and model are untouched: which
  // ops get acknowledged under a fault is timing-dependent, and adopting a
  // nondeterministic state would break trace determinism for the shrinker.
  Status DoConCommit(const FuzzOp& op) {
    const int k = 2 + static_cast<int>(op.a % 3);  // 2..4 committers
    const bool with_fault = (op.b % 4) == 0;
    const bool power_loss = (op.b % 2) != 0;

    // Resolve the K derivations up front against the model (deterministic;
    // the threads below only replay them).
    struct PlannedDerive {
      std::string vname, src;
      std::vector<std::string> attrs;
    };
    std::vector<PlannedDerive> plan;
    std::vector<std::string> names = model_.TrackedNames();
    for (int t = 0; t < k; ++t) {
      const std::string& src = names[(op.c + t) % names.size()];
      std::set<std::string> cum_set = model_.Cumulative(src);
      if (cum_set.empty()) continue;  // nothing to project from this source
      std::vector<std::string> cum(cum_set.begin(), cum_set.end());
      PlannedDerive d;
      d.src = src;
      d.vname = "FZV" + std::to_string(next_view_++);
      size_t count = 1 + (op.b + t) % cum.size();
      for (size_t i = 0; i < count; ++i) d.attrs.push_back(cum[i % cum.size()]);
      plan.push_back(std::move(d));
    }
    if (plan.empty()) return Status::OK();

    std::filesystem::path dir = EphemeralDir("con-");
    storage::FaultyEnv env;
    std::vector<char> acked(plan.size(), 0);
    std::error_code ec;
    bool degraded = false;
    {
      // A real batch window: max_batch covers the whole fleet and a short
      // linger lets late enqueuers join the leader's batch.
      storage::GroupCommitOptions group;
      group.max_batch = static_cast<size_t>(plan.size());
      group.max_wait_us = 200;
      Result<storage::DurableCatalog> db =
          storage::DurableCatalog::Open(dir.string(), &env, group);
      if (!db.ok()) {
        return Fail("DurableCatalog::Open failed: " + db.status().ToString());
      }
      Status seeded = db->Seed(catalog_);
      if (!seeded.ok()) {
        return Fail("DurableCatalog::Seed failed: " + seeded.ToString());
      }
      if (with_fault) {
        // All Env calls are serialized through the batch leader, so the
        // (single-threaded) FaultyEnv is safe under concurrent committers.
        env.ResetCounters();
        env.InjectAt(
            op.c % 2 == 0 ? storage::FaultyEnv::FaultKind::kSyncFail
                          : storage::FaultyEnv::FaultKind::kError,
            static_cast<int>(op.c % 6));
      }
      std::vector<std::thread> committers;
      for (size_t t = 0; t < plan.size(); ++t) {
        committers.emplace_back([&, t] {
          const PlannedDerive& d = plan[t];
          acked[t] =
              db->DefineProjectionView(d.vname, d.src, d.attrs).ok() ? 1 : 0;
        });
      }
      for (std::thread& thread : committers) thread.join();
      env.ClearFaults();
      degraded = db->degraded();

      // Converged in-memory state: visible exactly iff acknowledged.
      for (size_t t = 0; t < plan.size(); ++t) {
        bool visible = db->catalog().FindView(plan[t].vname).ok();
        if (visible != (acked[t] != 0)) {
          return Fail(std::string("concurrent commit '") + plan[t].vname +
                      "' is " + (visible ? "visible" : "missing") +
                      " in-memory but was " +
                      (acked[t] ? "acknowledged" : "refused"));
        }
      }
      if (with_fault && degraded) {
        Status refused = db->DropView("NoSuchView");
        if (refused.code() != StatusCode::kFailedPrecondition ||
            refused.message().find("degraded") == std::string::npos) {
          return Fail("degraded database accepted (or mislabeled) a "
                      "mutation after a group-commit fault: " +
                      refused.ToString());
        }
      }
    }  // crash: drop the handle
    if (power_loss) env.PowerLoss();

    Result<storage::DurableCatalog> re =
        storage::DurableCatalog::Open(dir.string());
    if (!re.ok()) {
      std::filesystem::remove_all(dir, ec);
      return Fail("recovery after a concurrent group commit failed: " +
                  re.status().ToString());
    }
    Status recovered_valid = re->catalog().schema().Validate();
    std::string detail;
    for (size_t t = 0; t < plan.size(); ++t) {
      bool recovered = re->catalog().FindView(plan[t].vname).ok();
      if (acked[t] && !recovered) {
        detail = "acknowledged commit '" + plan[t].vname +
                 "' was lost by crash recovery (durability violated)";
        break;
      }
      if (!with_fault && !power_loss && recovered != (acked[t] != 0)) {
        // No fault and no power loss: recovery must replay the batch
        // exactly — nothing beyond the acknowledged set can appear.
        detail = "clean recovery disagrees with the acknowledged set on '" +
                 plan[t].vname + "'";
        break;
      }
    }
    std::filesystem::remove_all(dir, ec);
    if (!recovered_valid.ok()) {
      return Fail("recovery after a concurrent group commit produced an "
                  "invalid schema: " + recovered_valid.ToString());
    }
    if (!detail.empty()) return Fail(std::move(detail));
    return Status::OK();
  }

  Catalog catalog_;
  Model model_;
  std::string saved_bytes_;
  Model saved_model_;
  bool has_save_ = false;
  int next_view_ = 0;
  int next_type_ = 0;
  int next_attr_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Trace plumbing
// ---------------------------------------------------------------------------

testing::RandomSchemaOptions SchemaParams::ToOptions() const {
  testing::RandomSchemaOptions options;
  options.seed = seed;
  options.num_types = types;
  options.max_supers = supers;
  options.attrs_per_type = attrs;
  options.num_general_methods = gfs;
  options.methods_per_gf = methods_per_gf;
  options.max_stmts_per_body = stmts;
  options.with_mutators = mutators;
  return options;
}

std::string FormatTrace(const FuzzTrace& trace) {
  std::ostringstream out;
  out << "tyder-fuzz-trace v1\n";
  if (!trace.scenario.empty()) out << "scenario " << trace.scenario << "\n";
  out << "schema seed=" << trace.schema.seed << " types=" << trace.schema.types
      << " supers=" << trace.schema.supers << " attrs=" << trace.schema.attrs
      << " gfs=" << trace.schema.gfs << " mpg=" << trace.schema.methods_per_gf
      << " stmts=" << trace.schema.stmts
      << " mutators=" << (trace.schema.mutators ? 1 : 0) << "\n";
  for (const FuzzOp& op : trace.ops) {
    out << OpName(op.kind) << " " << op.a << " " << op.b << " " << op.c
        << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<FuzzTrace> ParseTrace(std::string_view text) {
  FuzzTrace trace;
  std::istringstream in{std::string(text)};
  std::string line;
  int state = 0;  // 0: expect header, 1: expect schema, 2: ops, 3: done
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    size_t stop = line.find_last_not_of(" \t\r");
    std::string body = line.substr(start, stop - start + 1);
    if (body.empty() || body[0] == '#') continue;
    auto err = [&](const std::string& msg) {
      return Status::ParseError("trace line " + std::to_string(lineno) + ": " +
                                msg);
    };
    if (state == 0) {
      if (body != "tyder-fuzz-trace v1") {
        return err("expected 'tyder-fuzz-trace v1' header");
      }
      state = 1;
      continue;
    }
    if (state == 1) {
      std::istringstream fields(body);
      std::string tag;
      fields >> tag;
      if (tag == "scenario") {
        // Optional provenance line (traces lowered from scenario packs).
        fields >> trace.scenario;
        if (trace.scenario.empty()) return err("scenario line needs a name");
        continue;
      }
      if (tag != "schema") return err("expected schema line");
      std::string kv;
      while (fields >> kv) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) return err("malformed '" + kv + "'");
        std::string key = kv.substr(0, eq);
        long value = std::atol(kv.c_str() + eq + 1);
        if (key == "seed") trace.schema.seed = static_cast<uint32_t>(value);
        else if (key == "types") trace.schema.types = static_cast<int>(value);
        else if (key == "supers") trace.schema.supers = static_cast<int>(value);
        else if (key == "attrs") trace.schema.attrs = static_cast<int>(value);
        else if (key == "gfs") trace.schema.gfs = static_cast<int>(value);
        else if (key == "mpg")
          trace.schema.methods_per_gf = static_cast<int>(value);
        else if (key == "stmts") trace.schema.stmts = static_cast<int>(value);
        else if (key == "mutators") trace.schema.mutators = value != 0;
        else return err("unknown schema field '" + key + "'");
      }
      state = 2;
      continue;
    }
    if (state == 3) return err("content after 'end'");
    if (body == "end") {
      state = 3;
      continue;
    }
    std::istringstream fields(body);
    std::string name;
    fields >> name;
    FuzzOp op;
    if (!OpKindFromName(name, &op.kind)) {
      return err("unknown op '" + name + "'");
    }
    fields >> op.a >> op.b >> op.c;  // missing payloads stay 0
    trace.ops.push_back(op);
  }
  if (state != 3) {
    return Status::ParseError("trace has no 'end' terminator");
  }
  return trace;
}

FuzzTrace LowerWorkload(const workload::Workload& workload, size_t max_ops) {
  FuzzTrace trace;
  trace.scenario = workload.spec.name;
  trace.schema.seed = workload.spec.schema.seed;
  trace.schema.types = workload.spec.schema.types;
  trace.schema.supers = workload.spec.schema.supers;
  trace.schema.attrs = workload.spec.schema.attrs;
  trace.schema.gfs = workload.spec.schema.gfs;
  trace.schema.methods_per_gf = workload.spec.schema.methods_per_gf;
  trace.schema.stmts = workload.spec.schema.stmts;
  trace.schema.mutators = workload.spec.schema.mutators;
  for (const workload::WorkloadStep& step : workload.steps) {
    if (max_ops != 0 && trace.ops.size() >= max_ops) break;
    FuzzOp op;
    op.a = step.a;
    op.b = step.b;
    op.c = step.c;
    switch (step.op) {
      case workload::ScenarioOp::kProject:    op.kind = OpKind::kDerive; break;
      case workload::ScenarioOp::kDrop:       op.kind = OpKind::kDrop; break;
      case workload::ScenarioOp::kCollapse:   op.kind = OpKind::kCollapse; break;
      case workload::ScenarioOp::kNewType:    op.kind = OpKind::kNewType; break;
      case workload::ScenarioOp::kNewAttr:    op.kind = OpKind::kNewAttr; break;
      case workload::ScenarioOp::kNewEdge:    op.kind = OpKind::kNewEdge; break;
      case workload::ScenarioOp::kCrash:      op.kind = OpKind::kCrash; break;
      // Generalization has no fuzz op yet; every read flavor lowers onto the
      // full differential sweep, the strictest available check.
      case workload::ScenarioOp::kGeneralize:
      case workload::ScenarioOp::kSubtype:
      case workload::ScenarioOp::kDispatch:
      case workload::ScenarioOp::kViews:
      case workload::ScenarioOp::kPing:       op.kind = OpKind::kQuery; break;
    }
    trace.ops.push_back(op);
  }
  return trace;
}

FuzzTrace GenerateTrace(uint64_t seed, const FuzzProfile& profile) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  FuzzTrace trace;
  trace.schema = profile.schema;
  trace.schema.seed = static_cast<uint32_t>(rng() % 100000 + 1);
  int span = profile.max_ops - profile.min_ops + 1;
  int num_ops = profile.min_ops +
                (span > 1 ? static_cast<int>(rng() % span) : 0);
  struct Weighted {
    OpKind kind;
    int weight;
  };
  const Weighted kWeights[] = {
      {OpKind::kDerive, 20}, {OpKind::kQuery, 18},  {OpKind::kNewEdge, 16},
      {OpKind::kNewType, 10}, {OpKind::kNewAttr, 10}, {OpKind::kCollapse, 8},
      {OpKind::kDrop, 8},     {OpKind::kSave, 5},     {OpKind::kLoad, 4},
      {OpKind::kCrash, profile.with_crash_ops ? 1 : 0},
      {OpKind::kEnvFault, profile.with_crash_ops ? 1 : 0},
      {OpKind::kConCommit, profile.with_crash_ops ? 1 : 0},
  };
  int total = 0;
  for (const Weighted& w : kWeights) total += w.weight;
  for (int i = 0; i < num_ops; ++i) {
    int roll = static_cast<int>(rng() % total);
    FuzzOp op;
    for (const Weighted& w : kWeights) {
      roll -= w.weight;
      if (roll < 0) {
        op.kind = w.kind;
        break;
      }
    }
    op.a = static_cast<uint32_t>(rng());
    op.b = static_cast<uint32_t>(rng());
    op.c = static_cast<uint32_t>(rng());
    trace.ops.push_back(op);
  }
  return trace;
}

RunResult RunTrace(const FuzzTrace& trace) {
  TYDER_TIMED("fuzz.sequence_ns");
  RunResult result;
  Result<Schema> schema = testing::GenerateRandomSchema(trace.schema.ToOptions());
  if (!schema.ok()) {
    result.status =
        schema.status().WithContext("fuzz: random schema generation");
    return result;
  }
  TraceRunner runner(std::move(*schema));
  result.status = runner.Init();
  if (!result.status.ok()) {
    result.status = result.status.WithContext("fuzz: initial state");
    return result;
  }
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    const FuzzOp& op = trace.ops[i];
    auto at = [&](const Status& s) {
      return s.WithContext("fuzz: op " + std::to_string(i) + " (" +
                           OpName(op.kind) + ")");
    };
    Status s = runner.Execute(op);
    if (!s.ok()) {
      result.status = at(s);
      result.failing_step = i;
      return result;
    }
    s = runner.CheckStep();
    if (!s.ok()) {
      result.status = at(s);
      result.failing_step = i;
      return result;
    }
    ++result.ops_executed;
    TYDER_COUNT("fuzz.ops");
  }
  result.failing_step = trace.ops.size();
  return result;
}

FuzzTrace ShrinkTrace(const FuzzTrace& trace, int max_runs) {
  int runs = 0;
  auto fails = [&](const FuzzTrace& t) {
    ++runs;
    return !RunTrace(t).status.ok();
  };
  if (!fails(trace)) return trace;
  FuzzTrace current = trace;
  size_t chunk = std::max<size_t>(1, current.ops.size() / 2);
  while (runs < max_runs) {
    bool removed_any = false;
    for (size_t start = 0;
         start < current.ops.size() && chunk <= current.ops.size() &&
         runs < max_runs;) {
      FuzzTrace candidate = current;
      size_t len = std::min(chunk, candidate.ops.size() - start);
      candidate.ops.erase(candidate.ops.begin() + static_cast<long>(start),
                          candidate.ops.begin() + static_cast<long>(start + len));
      if (fails(candidate)) {
        current = std::move(candidate);
        removed_any = true;  // retry same start against the shorter trace
      } else {
        start += chunk;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  TYDER_COUNT("fuzz.shrinks");
  return current;
}

CampaignResult RunCampaign(const CampaignOptions& options) {
  CampaignResult result;
  auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  for (uint64_t i = 0;; ++i) {
    if (options.max_sequences != 0 && i >= options.max_sequences) break;
    if (elapsed() >= options.budget_seconds) break;
    uint64_t seed = options.base_seed + i;
    FuzzTrace trace = GenerateTrace(seed, options.profile);
    RunResult run = RunTrace(trace);
    ++result.sequences;
    TYDER_COUNT("fuzz.sequences");
    result.ops += run.ops_executed;
    if (!run.status.ok()) {
      result.failed = true;
      result.failing_seed = seed;
      result.failing_trace = trace;
      result.failure = run.status;
      result.shrunk_trace =
          options.shrink_on_failure ? ShrinkTrace(trace) : trace;
      // Ship the black box with the failing seed: when $TYDER_FLIGHT_DIR is
      // set the recent-operation rings land next to the repro artifacts.
      TYDER_FLIGHT_DUMP("fuzz_failure:seed=" + std::to_string(seed));
      break;
    }
  }
  result.elapsed_seconds = elapsed();
  return result;
}

}  // namespace tyder::fuzz
