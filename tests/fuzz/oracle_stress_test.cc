// Concurrency stressor for the frozen-schema query paths: N threads hammer
// IsSubtype / DispatchOrder / ApplicableMethodsFromTables while one thread
// runs PrewarmClosure, interleaved with exclusive mutation + Invalidate
// cycles. The suite name matches the tsan regex in scripts/run_all.sh, so
// every cycle runs under ThreadSanitizer in that mode; a single-threaded
// oracle sweep at the end of each cycle proves the answers stayed right,
// not merely race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "methods/applicability.h"
#include "methods/dispatch.h"
#include "methods/dispatch_table.h"
#include "oracle/differential.h"
#include "storage/durable_catalog.h"
#include "testing/fixtures.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

TEST(OracleStressTest, ConcurrentQueriesDuringPrewarmInvalidateCycles) {
  testing::RandomSchemaOptions options;
  options.seed = 99;
  options.num_types = 10;
  options.num_general_methods = 6;
  options.methods_per_gf = 2;
  auto schema_or = testing::GenerateRandomSchema(options);
  ASSERT_TRUE(schema_or.ok()) << schema_or.status().ToString();
  Schema schema = std::move(*schema_or);

  const int kCycles = 24;
  const unsigned kThreads =
      std::max(4u, std::min(8u, std::thread::hardware_concurrency()));
  const int kQueriesPerThread = 400;

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Exclusive mutation phase: grow the hierarchy, invalidating the closure
    // and (via the version bump) every dispatch table and cache line.
    TypeGraph& graph = schema.types();
    auto t = graph.DeclareType("S" + std::to_string(cycle), TypeKind::kUser);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    TypeId base = static_cast<TypeId>(cycle % options.num_types);
    ASSERT_TRUE(graph.AddSupertype(*t, base).ok());

    // Frozen phase: concurrent readers plus one prewarmer.
    const size_t num_types = graph.NumTypes();
    std::atomic<bool> ok{true};
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&, tid] {
        if (tid == 0) {
          schema.types().PrewarmClosure();
          return;
        }
        std::mt19937 rng(static_cast<uint32_t>(cycle * 131 + tid));
        std::uniform_int_distribution<size_t> pick_type(0, num_types - 1);
        std::uniform_int_distribution<size_t> pick_gf(
            0, schema.NumGenericFunctions() - 1);
        for (int q = 0; q < kQueriesPerThread; ++q) {
          TypeId a = static_cast<TypeId>(pick_type(rng));
          TypeId b = static_cast<TypeId>(pick_type(rng));
          (void)schema.types().IsSubtype(a, b);
          GfId gf = static_cast<GfId>(pick_gf(rng));
          std::vector<TypeId> args;
          for (int i = 0; i < schema.gf(gf).arity; ++i) {
            args.push_back(static_cast<TypeId>(pick_type(rng)));
          }
          std::vector<MethodId> tabled =
              ApplicableMethodsFromTables(schema, gf, args);
          std::vector<MethodId> order = DispatchOrder(schema, gf, args);
          // Cheap cross-thread sanity: the dispatch order is a permutation
          // of the applicable set, whatever interleaving built the tables.
          if (tabled.size() != order.size()) ok.store(false);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    ASSERT_TRUE(ok.load()) << "applicable/order size mismatch under threads";

    // Single-threaded truth check: whatever the interleaving did to the
    // caches, the answers must still match the naive oracle.
    Status s = oracle::CheckSubtypeOracle(schema);
    ASSERT_TRUE(s.ok()) << "cycle " << cycle << ": " << s.ToString();
  }

  // One full differential at the end (dispatch included).
  oracle::DifferentialOptions dopts;
  dopts.tuples_per_gf = 4;
  dopts.exhaustive_tuple_limit = 128;
  Status s = oracle::CheckSchemaAgainstOracle(schema, dopts);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// Epoch-churn variant: readers never coordinate with the writer at all.
// Each reader loop pins the current schema epoch (DurableCatalog::
// PinSnapshot) and queries the frozen snapshot while a writer commits
// derive / collapse / revert cycles through the group-committed WAL,
// publishing a new epoch per commit. Every pinned snapshot must agree
// with the naive oracle — a reader can observe any committed epoch, but
// never a torn or half-mutated one.
TEST(OracleStressTest, EpochChurnReadersMatchOracleOnPinnedSnapshots) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tyder_epoch_churn_stress";
  std::filesystem::remove_all(dir);
  auto db = storage::DurableCatalog::Open(dir.string());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->Seed(Catalog(std::move(fx->schema))).ok());

  const int kWriterCycles = 40;
  const unsigned kReaders =
      std::max(3u, std::min(7u, std::thread::hardware_concurrency() - 1));
  std::atomic<bool> writer_done{false};
  std::atomic<bool> ok{true};

  std::vector<std::thread> readers;
  for (unsigned tid = 0; tid < kReaders; ++tid) {
    readers.emplace_back([&, tid] {
      std::mt19937 rng(1000 + tid);
      int sweeps = 0;
      while (!writer_done.load(std::memory_order_acquire)) {
        auto pin = db->PinSnapshot();
        const Schema& schema = pin->schema();
        const size_t num_types = schema.types().NumTypes();
        std::uniform_int_distribution<size_t> pick_type(0, num_types - 1);
        std::uniform_int_distribution<size_t> pick_gf(
            0, schema.NumGenericFunctions() - 1);
        for (int q = 0; q < 64; ++q) {
          TypeId a = static_cast<TypeId>(pick_type(rng));
          TypeId b = static_cast<TypeId>(pick_type(rng));
          (void)schema.types().IsSubtype(a, b);
          GfId gf = static_cast<GfId>(pick_gf(rng));
          std::vector<TypeId> args;
          for (int i = 0; i < schema.gf(gf).arity; ++i) {
            args.push_back(static_cast<TypeId>(pick_type(rng)));
          }
          if (ApplicableMethodsFromTables(schema, gf, args).size() !=
              DispatchOrder(schema, gf, args).size()) {
            ok.store(false);
          }
        }
        // Engine == oracle on the pinned (frozen) snapshot, concurrently
        // with the writer publishing newer epochs past it.
        Status s = oracle::CheckSubtypeOracle(schema);
        if (!s.ok()) ok.store(false);
        ++sweeps;
      }
      EXPECT_GT(sweeps, 0);
    });
  }

  // The writer: each iteration is one derive / revert (+ periodic collapse)
  // cycle, i.e. two to three group-committed epoch publishes.
  for (int cycle = 0; cycle < kWriterCycles && ok.load(); ++cycle) {
    std::string name = "Churn" + std::to_string(cycle);
    auto view = db->DefineProjectionView(name, "Employee",
                                         {"SSN", "date_of_birth"});
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    ASSERT_TRUE(db->DropView(name).ok());
    if (cycle % 8 == 7) {
      auto report = db->Collapse();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(ok.load()) << "a pinned epoch disagreed with the oracle";

  // Quiesced: everything the churn retired is now reclaimable, and the tip
  // still matches the oracle.
  db->epochs().TryReclaim();
  EXPECT_EQ(db->epochs().retired_pending(), 0u);
  EXPECT_TRUE(oracle::CheckSubtypeOracle(db->catalog().schema()).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tyder
