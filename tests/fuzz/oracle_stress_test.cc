// Concurrency stressor for the frozen-schema query paths: N threads hammer
// IsSubtype / DispatchOrder / ApplicableMethodsFromTables while one thread
// runs PrewarmClosure, interleaved with exclusive mutation + Invalidate
// cycles. The suite name matches the tsan regex in scripts/run_all.sh, so
// every cycle runs under ThreadSanitizer in that mode; a single-threaded
// oracle sweep at the end of each cycle proves the answers stayed right,
// not merely race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "methods/applicability.h"
#include "methods/dispatch.h"
#include "methods/dispatch_table.h"
#include "oracle/differential.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

TEST(OracleStressTest, ConcurrentQueriesDuringPrewarmInvalidateCycles) {
  testing::RandomSchemaOptions options;
  options.seed = 99;
  options.num_types = 10;
  options.num_general_methods = 6;
  options.methods_per_gf = 2;
  auto schema_or = testing::GenerateRandomSchema(options);
  ASSERT_TRUE(schema_or.ok()) << schema_or.status().ToString();
  Schema schema = std::move(*schema_or);

  const int kCycles = 24;
  const unsigned kThreads =
      std::max(4u, std::min(8u, std::thread::hardware_concurrency()));
  const int kQueriesPerThread = 400;

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Exclusive mutation phase: grow the hierarchy, invalidating the closure
    // and (via the version bump) every dispatch table and cache line.
    TypeGraph& graph = schema.types();
    auto t = graph.DeclareType("S" + std::to_string(cycle), TypeKind::kUser);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    TypeId base = static_cast<TypeId>(cycle % options.num_types);
    ASSERT_TRUE(graph.AddSupertype(*t, base).ok());

    // Frozen phase: concurrent readers plus one prewarmer.
    const size_t num_types = graph.NumTypes();
    std::atomic<bool> ok{true};
    std::vector<std::thread> threads;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&, tid] {
        if (tid == 0) {
          schema.types().PrewarmClosure();
          return;
        }
        std::mt19937 rng(static_cast<uint32_t>(cycle * 131 + tid));
        std::uniform_int_distribution<size_t> pick_type(0, num_types - 1);
        std::uniform_int_distribution<size_t> pick_gf(
            0, schema.NumGenericFunctions() - 1);
        for (int q = 0; q < kQueriesPerThread; ++q) {
          TypeId a = static_cast<TypeId>(pick_type(rng));
          TypeId b = static_cast<TypeId>(pick_type(rng));
          (void)schema.types().IsSubtype(a, b);
          GfId gf = static_cast<GfId>(pick_gf(rng));
          std::vector<TypeId> args;
          for (int i = 0; i < schema.gf(gf).arity; ++i) {
            args.push_back(static_cast<TypeId>(pick_type(rng)));
          }
          std::vector<MethodId> tabled =
              ApplicableMethodsFromTables(schema, gf, args);
          std::vector<MethodId> order = DispatchOrder(schema, gf, args);
          // Cheap cross-thread sanity: the dispatch order is a permutation
          // of the applicable set, whatever interleaving built the tables.
          if (tabled.size() != order.size()) ok.store(false);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    ASSERT_TRUE(ok.load()) << "applicable/order size mismatch under threads";

    // Single-threaded truth check: whatever the interleaving did to the
    // caches, the answers must still match the naive oracle.
    Status s = oracle::CheckSubtypeOracle(schema);
    ASSERT_TRUE(s.ok()) << "cycle " << cycle << ": " << s.ToString();
  }

  // One full differential at the end (dispatch included).
  oracle::DifferentialOptions dopts;
  dopts.tuples_per_gf = 4;
  dopts.exhaustive_tuple_limit = 128;
  Status s = oracle::CheckSchemaAgainstOracle(schema, dopts);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace tyder
