// Fuzz-harness mechanics: trace text round trip, deterministic generation
// and replay, and a short clean campaign (the full-budget run lives behind
// `scripts/run_all.sh fuzz`).

#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "obs/metrics.h"

namespace tyder::fuzz {
namespace {

TEST(FuzzTraceTest, FormatParseRoundTrip) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FuzzTrace trace = GenerateTrace(seed);
    std::string text = FormatTrace(trace);
    Result<FuzzTrace> parsed = ParseTrace(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(FormatTrace(*parsed), text) << "seed " << seed;
  }
}

TEST(FuzzTraceTest, ParseSkipsCommentsAndBlankLines) {
  const char* text =
      "# a corpus file may carry provenance comments\n"
      "tyder-fuzz-trace v1\n"
      "\n"
      "schema seed=42 types=5 gfs=2\n"
      "# ops follow\n"
      "derive 1 2 3\n"
      "query 4\n"
      "end\n";
  Result<FuzzTrace> parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema.seed, 42u);
  EXPECT_EQ(parsed->schema.types, 5);
  EXPECT_EQ(parsed->schema.gfs, 2);
  // Unmentioned fields keep their defaults.
  EXPECT_EQ(parsed->schema.methods_per_gf, SchemaParams{}.methods_per_gf);
  ASSERT_EQ(parsed->ops.size(), 2u);
  EXPECT_EQ(parsed->ops[0].kind, OpKind::kDerive);
  EXPECT_EQ(parsed->ops[0].a, 1u);
  // Missing payloads parse as zero.
  EXPECT_EQ(parsed->ops[1].kind, OpKind::kQuery);
  EXPECT_EQ(parsed->ops[1].b, 0u);
}

TEST(FuzzTraceTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTrace("not a trace\n").ok());
  EXPECT_FALSE(ParseTrace("tyder-fuzz-trace v1\nschema seed=1\n").ok());
  EXPECT_FALSE(
      ParseTrace("tyder-fuzz-trace v1\nschema seed=1\nfrobnicate 1\nend\n")
          .ok());
  EXPECT_FALSE(
      ParseTrace("tyder-fuzz-trace v1\nschema bogus=1\nend\n").ok());
}

TEST(FuzzTraceTest, GenerationIsDeterministic) {
  FuzzTrace a = GenerateTrace(7);
  FuzzTrace b = GenerateTrace(7);
  EXPECT_EQ(FormatTrace(a), FormatTrace(b));
  FuzzTrace c = GenerateTrace(8);
  EXPECT_NE(FormatTrace(a), FormatTrace(c));
}

TEST(FuzzRunTest, ReplayIsDeterministic) {
  FuzzTrace trace = GenerateTrace(3);
  RunResult first = RunTrace(trace);
  RunResult second = RunTrace(trace);
  EXPECT_EQ(first.status.ok(), second.status.ok());
  EXPECT_EQ(first.ops_executed, second.ops_executed);
  EXPECT_EQ(first.failing_step, second.failing_step);
}

TEST(FuzzCampaignTest, ShortCampaignRunsClean) {
  CampaignOptions options;
  options.base_seed = 1;
  options.max_sequences = 300;
  options.budget_seconds = 120.0;  // sequence cap governs in practice
  uint64_t before =
      obs::MetricsRegistry::Global().CounterValue("fuzz.sequences");
  CampaignResult result = RunCampaign(options);
  EXPECT_FALSE(result.failed)
      << "seed " << result.failing_seed << ": " << result.failure.ToString()
      << "\n--- shrunk ---\n"
      << FormatTrace(result.shrunk_trace);
  EXPECT_EQ(result.sequences, 300u);
  EXPECT_GT(result.ops, 0u);
  // Throughput metrics landed in the obs registry.
  uint64_t after =
      obs::MetricsRegistry::Global().CounterValue("fuzz.sequences");
  EXPECT_EQ(after - before, 300u);
  EXPECT_GE(obs::MetricsRegistry::Global().CounterValue("fuzz.ops"),
            result.ops);
}

TEST(FuzzShrinkTest, PassingTraceIsReturnedUnchanged) {
  FuzzTrace trace = GenerateTrace(5);
  ASSERT_TRUE(RunTrace(trace).status.ok());
  FuzzTrace shrunk = ShrinkTrace(trace, /*max_runs=*/10);
  EXPECT_EQ(FormatTrace(shrunk), FormatTrace(trace));
}

}  // namespace
}  // namespace tyder::fuzz
