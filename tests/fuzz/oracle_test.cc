// Differential oracle (src/oracle) unit tests: the naive reference
// implementations agree with the optimized engine on the paper fixtures and
// on random schemas, including multi-method dispatch with varied specificity.

#include <gtest/gtest.h>

#include <vector>

#include "catalog/catalog.h"
#include "methods/dispatch.h"
#include "oracle/differential.h"
#include "oracle/reference.h"
#include "testing/fixtures.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

TEST(OracleReferenceTest, SubtypeAgreesOnExample1) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  const TypeGraph& g = fx->schema.types();
  // Spot checks of the BFS walk itself (A is the most-derived type: A ≼ B ≼ D).
  EXPECT_TRUE(oracle::RefIsSubtype(g, fx->a, fx->d));
  EXPECT_TRUE(oracle::RefIsSubtype(g, fx->d, fx->d));
  EXPECT_FALSE(oracle::RefIsSubtype(g, fx->d, fx->a));
  EXPECT_FALSE(oracle::RefIsSubtype(g, fx->b, fx->c));
  // And the exhaustive all-pairs sweep against the bitset closure.
  EXPECT_TRUE(oracle::CheckSubtypeOracle(fx->schema).ok());
}

TEST(OracleReferenceTest, CumulativeStateAgreesOnExample1) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  Status s = oracle::CheckCumulativeStateOracle(fx->schema);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(OracleReferenceTest, DispatchAgreesOnExample1WithZMethods) {
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  Status s = oracle::CheckSchemaAgainstOracle(fx->schema);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(OracleReferenceTest, IdenticalFormalsTieBreakByRegistrationOrder) {
  // u1(A) and u2(A) share the generic function u with identical formals (the
  // paper's Section 4 example); the reference's stable sort must keep them in
  // registration order, matching the engine's tie-break.
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  const Method& u1 = fx->schema.method(fx->u1);
  ASSERT_EQ(u1.gf, fx->schema.method(fx->u2).gf);
  std::vector<MethodId> order =
      oracle::RefDispatchOrder(fx->schema, u1.gf, {fx->a});
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], fx->u1);
  EXPECT_EQ(order[1], fx->u2);
  // The engine agrees, front to back.
  EXPECT_EQ(DispatchOrder(fx->schema, u1.gf, {fx->a}), order);
}

TEST(OracleReferenceTest, DispatchNotFoundWhenNoApplicable) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  const Method& income = fx->schema.method(fx->income);
  // income is defined on Employee; a Person argument has no applicable method.
  Result<MethodId> ref =
      oracle::RefDispatch(fx->schema, income.gf, {fx->person});
  ASSERT_FALSE(ref.ok());
  EXPECT_EQ(ref.status().code(), StatusCode::kNotFound);
  Result<MethodId> engine = Dispatch(fx->schema, income.gf, {fx->person});
  EXPECT_FALSE(engine.ok());
}

TEST(OracleDifferentialTest, PersonEmployeeSchemaPasses) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  Status s = oracle::CheckSchemaAgainstOracle(fx->schema);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(OracleDifferentialTest, RandomSchemasAcrossMethodDensitiesPass) {
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    for (int mpg = 1; mpg <= 3; ++mpg) {
      testing::RandomSchemaOptions options;
      options.seed = seed;
      options.methods_per_gf = mpg;
      options.with_mutators = true;
      auto schema = testing::GenerateRandomSchema(options);
      ASSERT_TRUE(schema.ok())
          << "seed " << seed << " mpg " << mpg << ": "
          << schema.status().ToString();
      oracle::DifferentialOptions dopts;
      dopts.seed = seed * 31 + static_cast<uint32_t>(mpg);
      Status s = oracle::CheckSchemaAgainstOracle(*schema, dopts);
      EXPECT_TRUE(s.ok()) << "seed " << seed << " mpg " << mpg << ": "
                          << s.ToString();
    }
  }
}

TEST(OracleDifferentialTest, DerivedStateMatchesProjectedSet) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  const TypeGraph& g = fx->schema.types();
  std::vector<std::string> attr_names;
  for (AttrId a : fx->Projection()) {
    attr_names.push_back(g.attribute(a).name.str());
  }
  Catalog catalog(std::move(fx->schema));
  auto view = catalog.DefineProjectionView(
      "PV", catalog.schema().types().TypeName(fx->a), attr_names);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  Status s = oracle::CheckDerivedState(catalog.schema(), (*view)->derived,
                                       (*view)->attributes);
  EXPECT_TRUE(s.ok()) << s.ToString();
  // The whole post-derivation schema (surrogates included) still passes.
  s = oracle::CheckSchemaAgainstOracle(catalog.schema());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

}  // namespace
}  // namespace tyder
