// Operation-sequence fuzzer for the optimized engine (ISSUE 5 tentpole).
//
// A *trace* is a seeded random schema recipe plus a list of operations —
// DeriveProjection / Collapse / DropView (revert) / differential query /
// schema mutations / snapshot Save & Load / fault-injected crash-recover
// and env-I/O-fault round trips. RunTrace drives the trace against a real Catalog and, in
// lockstep, a deliberately-naive in-memory model that tracks nothing but
// type names, direct-supertype names, local attribute names, and each
// view's projected attribute set. After every step it asserts:
//
//   engine == oracle   exhaustive IsSubtype and cumulative-state sweeps
//                      against oracle/reference.h (plus the full dispatch
//                      differential on query steps), and
//   model  == catalog  the catalog's view registry and every tracked type's
//                      cumulative attribute-name set match the model's
//                      from-first-principles recomputation, and
//   all-or-nothing     any refused operation leaves the catalog serializing
//                      byte-identically to its pre-call snapshot.
//
// Operations carry raw integer payloads that are interpreted modulo the
// *current* candidate lists at execution time, so a trace stays meaningful
// (and deterministic) when the shrinker deletes earlier operations.
// ShrinkTrace is a ddmin-style minimizer: it repeatedly deletes chunks of
// operations while the trace keeps failing. RunCampaign generates and runs
// traces from consecutive seeds until a time/sequence budget runs out,
// recording fuzz.sequences / fuzz.ops metrics in the obs registry.

#ifndef TYDER_TESTS_FUZZ_FUZZER_H_
#define TYDER_TESTS_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "testing/random_schema.h"
#include "workload/generate.h"

namespace tyder::fuzz {

enum class OpKind {
  kDerive,    // define a projection view over a tracked type
  kCollapse,  // Catalog::Collapse (empty-surrogate reduction)
  kDrop,      // DropView — revert (projection) path
  kQuery,     // full dispatch differential sweep (engine == oracle)
  kNewType,   // declare a type subtyping 1–2 tracked types
  kNewAttr,   // declare an attribute on a base type
  kNewEdge,   // AddSupertype between tracked types (cycle prediction too)
  kSave,      // snapshot the catalog + model to the trace-local buffer
  kLoad,      // restore catalog + model from the buffer (no-op before save)
  kCrash,     // fault-injected mutation on an ephemeral DurableCatalog in a
              // temp dir; recovery must land byte-identical to pre or post
  kEnvFault,  // FaultyEnv-injected I/O error (EIO / ENOSPC / short write /
              // fsync failure) on an ephemeral DurableCatalog, optionally
              // followed by a simulated power loss; the instance must be
              // consistent or provably read-only (degraded), and recovery
              // must land byte-identical to pre or post
  kConCommit, // K threads commit concurrently through the group-committed
              // WAL on an ephemeral DurableCatalog (optionally with an
              // injected I/O fault mid-batch and a power loss); an
              // acknowledged commit is always durable, an unacknowledged
              // one is never visible, and recovery lands on a subset of
              // the attempted batch that contains every acknowledged op
};

struct FuzzOp {
  OpKind kind = OpKind::kQuery;
  // Raw payloads, resolved modulo candidate-list sizes at execution time.
  uint32_t a = 0, b = 0, c = 0;
};

// The random-schema recipe embedded in every trace, so a corpus file replays
// without out-of-band configuration.
struct SchemaParams {
  uint32_t seed = 1;
  int types = 7;
  int supers = 2;
  int attrs = 2;
  int gfs = 4;
  int methods_per_gf = 2;
  int stmts = 3;
  bool mutators = true;

  testing::RandomSchemaOptions ToOptions() const;
};

struct FuzzTrace {
  SchemaParams schema;
  std::vector<FuzzOp> ops;
  // Optional provenance tag: the scenario pack this trace was lowered from
  // (see LowerWorkload). Empty for generated/shrunk traces.
  std::string scenario;
};

// Text form (tyder-fuzz-trace v1): one line per op, '#' comments, `end`
// terminator, plus an optional `scenario <name>` provenance line between the
// header and the schema line. FormatTrace ∘ ParseTrace is the identity on
// valid traces.
std::string FormatTrace(const FuzzTrace& trace);
Result<FuzzTrace> ParseTrace(std::string_view text);

// Lowers a generated macro-workload (src/workload) onto fuzz ops so scenario
// traffic runs under the full model+oracle lockstep harness: project→derive,
// drop/collapse/newtype/newattr/newedge map 1:1, every query flavor becomes
// the kQuery differential sweep, and crash steps become kCrash. At most
// `max_ops` steps are taken (0 = all); payloads carry over verbatim and are
// re-resolved against the harness's candidate lists.
FuzzTrace LowerWorkload(const workload::Workload& workload, size_t max_ops);

struct FuzzProfile {
  SchemaParams schema;  // per-trace seed is drawn on top of this recipe
  int min_ops = 5;
  int max_ops = 12;
  // Crash ops hit the filesystem (Seed + WAL fsyncs); profiles that need
  // maximum sequence throughput (the known-bad hunt) turn them off.
  bool with_crash_ops = true;
};

// Deterministic: same (seed, profile) → same trace.
FuzzTrace GenerateTrace(uint64_t seed, const FuzzProfile& profile = {});

struct RunResult {
  Status status;            // OK, or the first divergence/violation
  size_t failing_step = 0;  // op index the failure surfaced at (== ops run)
  size_t ops_executed = 0;
};

RunResult RunTrace(const FuzzTrace& trace);

// ddmin-style minimizer: repeatedly deletes op chunks while RunTrace keeps
// failing; at most `max_runs` re-executions. Returns `trace` unchanged if it
// does not fail to begin with.
FuzzTrace ShrinkTrace(const FuzzTrace& trace, int max_runs = 400);

struct CampaignOptions {
  uint64_t base_seed = 1;
  double budget_seconds = 30.0;
  uint64_t max_sequences = 0;  // 0: the time budget alone governs
  FuzzProfile profile;
  bool shrink_on_failure = true;
};

struct CampaignResult {
  uint64_t sequences = 0;
  uint64_t ops = 0;
  double elapsed_seconds = 0.0;
  bool failed = false;
  uint64_t failing_seed = 0;
  FuzzTrace failing_trace;  // meaningful when failed
  FuzzTrace shrunk_trace;   // == failing_trace unless shrink_on_failure
  Status failure;
};

// Runs GenerateTrace(base_seed + i) → RunTrace until the budget is spent or
// a trace fails (which stops the campaign and, by default, shrinks it).
CampaignResult RunCampaign(const CampaignOptions& options);

}  // namespace tyder::fuzz

#endif  // TYDER_TESTS_FUZZ_FUZZER_H_
