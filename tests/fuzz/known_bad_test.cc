// The acceptance demo from ISSUE 5: seed a known-bad build — the
// chaos.skip_closure_invalidation fault point makes AddSupertype keep the
// stale ancestor-bitset closure, exactly the bug a forgotten Invalidate()
// would be — and prove the fuzzer catches it and shrinks the failure to a
// minimal trace (<= 10 ops).

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "fuzz/fuzzer.h"

namespace tyder::fuzz {
namespace {

class KnownBadBuildTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DeactivateAll(); }
};

TEST_F(KnownBadBuildTest, FuzzerCatchesSkippedClosureInvalidation) {
  failpoint::Activate("chaos.skip_closure_invalidation", -1);

  CampaignOptions options;
  options.base_seed = 1;
  options.max_sequences = 200;  // found within the first handful in practice
  options.budget_seconds = 120.0;
  options.profile.with_crash_ops = false;  // keep the hunt off the filesystem
  CampaignResult result = RunCampaign(options);

  ASSERT_TRUE(result.failed)
      << "the known-bad build survived " << result.sequences << " sequences";
  EXPECT_FALSE(result.failure.ok());

  // The shrunk trace is small enough to read and to check into the corpus.
  EXPECT_LE(result.shrunk_trace.ops.size(), 10u)
      << FormatTrace(result.shrunk_trace);
  EXPECT_GE(result.shrunk_trace.ops.size(), 1u);

  // The minimal trace still reproduces on the bad build...
  RunResult bad = RunTrace(result.shrunk_trace);
  EXPECT_FALSE(bad.status.ok());

  // ...and passes once the bug is gone, so it pinpoints the defect.
  failpoint::DeactivateAll();
  RunResult good = RunTrace(result.shrunk_trace);
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
}

TEST_F(KnownBadBuildTest, ShrinkHonorsRunCap) {
  failpoint::Activate("chaos.skip_closure_invalidation", -1);
  CampaignOptions options;
  options.base_seed = 1;
  options.max_sequences = 200;
  options.budget_seconds = 120.0;
  options.profile.with_crash_ops = false;
  options.shrink_on_failure = false;  // shrink manually with a tiny cap
  CampaignResult result = RunCampaign(options);
  ASSERT_TRUE(result.failed);
  FuzzTrace shrunk = ShrinkTrace(result.failing_trace, /*max_runs=*/8);
  // Even with a tiny budget the result must still be a failing trace.
  EXPECT_FALSE(RunTrace(shrunk).status.ok());
  EXPECT_LE(shrunk.ops.size(), result.failing_trace.ops.size());
}

}  // namespace
}  // namespace tyder::fuzz
