// Scenario packs under the fuzzer's full lockstep harness (ISSUE 10).
//
// Every checked-in bench/scenarios/*.scn pack must parse, generate, and —
// lowered onto fuzz ops via LowerWorkload — run clean under RunTrace's
// model+oracle+all-or-nothing contract. This is the bridge between the
// macro-workload harness and the fuzzer: scenario traffic is not just
// replayed, it is differentially verified op by op. Also pins the
// tyder-fuzz-trace v1 `scenario` provenance line through the trace codec.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "gtest/gtest.h"
#include "workload/generate.h"
#include "workload/spec.h"

namespace tyder::fuzz {
namespace {

std::vector<std::filesystem::path> CheckedInPacks() {
  std::vector<std::filesystem::path> packs;
  for (const auto& entry :
       std::filesystem::directory_iterator(TYDER_SCENARIO_DIR)) {
    if (entry.path().extension() == ".scn") packs.push_back(entry.path());
  }
  std::sort(packs.begin(), packs.end());
  return packs;
}

workload::ScenarioSpec LoadPack(const std::filesystem::path& pack) {
  std::ifstream in(pack);
  EXPECT_TRUE(in) << "cannot open " << pack;
  std::ostringstream text;
  text << in.rdbuf();
  Result<workload::ScenarioSpec> spec = workload::ParseScenario(text.str());
  EXPECT_TRUE(spec.ok()) << pack << ": " << spec.status().ToString();
  return *spec;
}

TEST(ScenarioLockstep, EveryPackLowersAndRunsCleanUnderTheOracle) {
  std::vector<std::filesystem::path> packs = CheckedInPacks();
  ASSERT_GE(packs.size(), 4u);
  for (const auto& pack : packs) {
    SCOPED_TRACE(pack.string());
    workload::ScenarioSpec spec = LoadPack(pack);
    workload::Workload w = workload::GenerateWorkload(spec);
    ASSERT_EQ(w.steps.size(), spec.TotalOps());
    // 60 ops keeps the per-pack lockstep run well under a second; the full
    // packs are replayed (and determinism-checked) by `run_all.sh scenarios`.
    FuzzTrace trace = LowerWorkload(w, /*max_ops=*/60);
    EXPECT_EQ(trace.scenario, spec.name);
    EXPECT_EQ(trace.schema.seed, spec.schema.seed);
    ASSERT_EQ(trace.ops.size(), std::min<size_t>(60, w.steps.size()));
    RunResult run = RunTrace(trace);
    EXPECT_TRUE(run.status.ok())
        << "op " << run.failing_step << ": " << run.status.ToString();
    EXPECT_EQ(run.ops_executed, trace.ops.size());
  }
}

TEST(ScenarioLockstep, LoweringIsDeterministic) {
  workload::ScenarioSpec spec =
      LoadPack(std::filesystem::path(TYDER_SCENARIO_DIR) / "evolution-storm.scn");
  workload::Workload w = workload::GenerateWorkload(spec);
  FuzzTrace a = LowerWorkload(w, 0);
  FuzzTrace b = LowerWorkload(w, 0);
  EXPECT_EQ(FormatTrace(a), FormatTrace(b));
  EXPECT_EQ(a.ops.size(), w.steps.size());
}

TEST(ScenarioLockstep, LoweringMapsEveryOpFlavor) {
  using workload::ScenarioOp;
  workload::ScenarioSpec spec;
  spec.name = "flavors";
  spec.seed = 5;
  spec.populations.push_back({"all",
                              1,
                              0,
                              {{ScenarioOp::kProject, 1},
                               {ScenarioOp::kGeneralize, 1},
                               {ScenarioOp::kDrop, 1},
                               {ScenarioOp::kCollapse, 1},
                               {ScenarioOp::kNewType, 1},
                               {ScenarioOp::kNewAttr, 1},
                               {ScenarioOp::kNewEdge, 1},
                               {ScenarioOp::kSubtype, 1},
                               {ScenarioOp::kDispatch, 1},
                               {ScenarioOp::kViews, 1},
                               {ScenarioOp::kPing, 1}}});
  spec.phases.push_back({"run", 300, 1, 0, {}, 0});
  workload::Workload w = workload::GenerateWorkload(spec);
  FuzzTrace trace = LowerWorkload(w, 0);
  size_t derives = 0, queries = 0, structural = 0;
  for (const FuzzOp& op : trace.ops) {
    switch (op.kind) {
      case OpKind::kDerive:
        ++derives;
        break;
      case OpKind::kQuery:
        ++queries;
        break;
      case OpKind::kDrop:
      case OpKind::kCollapse:
      case OpKind::kNewType:
      case OpKind::kNewAttr:
      case OpKind::kNewEdge:
        ++structural;
        break;
      default:
        FAIL() << "unexpected lowered op kind";
    }
  }
  // project lowers to kDerive; generalize (no fuzz counterpart) and the four
  // read flavors (subtype/dispatch/views/ping) all lower to the kQuery sweep.
  EXPECT_GT(derives, 10u);
  EXPECT_GT(queries, 60u);
  EXPECT_GT(structural, 60u);
}

TEST(ScenarioLockstep, ScenarioProvenanceRoundTripsThroughTheTraceCodec) {
  FuzzTrace trace = GenerateTrace(99);
  trace.scenario = "evolution-storm";
  std::string text = FormatTrace(trace);
  EXPECT_NE(text.find("\nscenario evolution-storm\n"), std::string::npos);
  Result<FuzzTrace> parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->scenario, "evolution-storm");
  EXPECT_EQ(FormatTrace(*parsed), text);

  // Traces without provenance keep the old format exactly.
  trace.scenario.clear();
  std::string bare = FormatTrace(trace);
  EXPECT_EQ(bare.find("scenario"), std::string::npos);
  Result<FuzzTrace> bare_parsed = ParseTrace(bare);
  ASSERT_TRUE(bare_parsed.ok());
  EXPECT_TRUE(bare_parsed->scenario.empty());
}

}  // namespace
}  // namespace tyder::fuzz
