// Full-stack test: TDL source -> schema -> views -> serialization round trip
// -> execution, reproducing the paper's Example 1 hierarchy from text.

#include <gtest/gtest.h>

#include "catalog/serialize.h"
#include "core/is_applicable.h"
#include "instances/interp.h"
#include "lang/analyzer.h"
#include "objmodel/schema_printer.h"

namespace tyder {
namespace {

constexpr const char* kExample1Tdl = R"(
  // Figure 3 of Agrawal & DeMichiel 1994, in TDL.
  type H { h1: Int; h2: Int; }
  type G { g1: Int; }
  type D { d1: Int; }
  type E : G, H { e1: Int; e2: Int; }
  type F : H { f1: Int; }
  type C : F, E { c1: Int; }
  type B : D, E { b1: Int; }
  type A : C, B { a1: Int; a2: Int; }

  generic u/1;
  generic v/2;
  generic w/1;
  generic x/2;
  generic y/2;
  accessors;

  method u1 for u (arg: A) { get_a1(arg); }
  method u2 for u (arg: A) { get_g1(arg); }
  method u3 for u (arg: B) { get_h2(arg); }
  method v1 for v (pa: A, pc: C) { u(pa); w(pc); }
  method v2 for v (pb: B, pc: C) { get_b1(pb); u(pc); }
  method w1 for w (arg: A) { get_a1(arg); }
  method w2 for w (arg: C) { u(arg); }
  method x1 for x (pa: A, pb: B) { y(pa, pb); v(pb, pa); }
  method y1 for y (pa: A, pb: B) { x(pa, pb); }

  view ProjA = project A on (a2, e2, h2);
)";

TEST(TdlEndToEnd, Example1FromTextMatchesPaper) {
  auto catalog = LoadTdl(kExample1Tdl);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  const Schema& s = catalog->schema();

  // The derivation ran as part of the view declaration; check the factored
  // hierarchy's key facts.
  auto proj = s.types().FindType("ProjA");
  ASSERT_TRUE(proj.ok());
  std::set<std::string> attrs;
  for (AttrId a : s.types().CumulativeAttributes(*proj)) {
    attrs.insert(s.types().attribute(a).name.str());
  }
  EXPECT_EQ(attrs, (std::set<std::string>{"a2", "e2", "h2"}));

  auto v1 = s.FindMethod("v1");
  auto u3 = s.FindMethod("u3");
  ASSERT_TRUE(v1.ok() && u3.ok());
  EXPECT_EQ(s.types().TypeName(s.method(*v1).sig.params[0]), "ProjA");
  EXPECT_EQ(s.types().TypeName(s.method(*u3).sig.params[0]), "~B");
}

TEST(TdlEndToEnd, SerializationRoundTripAfterTdlLoadAndDerivation) {
  auto catalog = LoadTdl(kExample1Tdl);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  std::string text = SerializeSchema(catalog->schema());
  auto restored = DeserializeSchema(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SerializeSchema(*restored), text);
  EXPECT_EQ(PrintHierarchy(restored->types()),
            PrintHierarchy(catalog->schema().types()));
}

TEST(TdlEndToEnd, ViewInstancesRunInheritedBehavior) {
  auto catalog = LoadTdl(R"(
    type Person { ssn: String; dob: Date; nickname: String; }
    accessors;
    method age (p: Person) -> Int { return 2026 - get_dob(p); }
    view PersonView = project Person on (ssn, dob);
  )");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  Schema& s = catalog->schema();
  ObjectStore store;
  auto view_type = s.types().FindType("PersonView");
  ASSERT_TRUE(view_type.ok());
  auto obj = store.CreateObject(s, *view_type);
  ASSERT_TRUE(obj.ok());
  auto dob = s.types().FindAttribute("dob");
  ASSERT_TRUE(dob.ok());
  ASSERT_TRUE(store.SetSlot(*obj, *dob, Value::Int(2001)).ok());
  Interpreter interp(s, &store);
  // age survives the projection and runs on a *view* instance directly.
  auto age = interp.CallByName("age", {Value::Object(*obj)});
  ASSERT_TRUE(age.ok()) << age.status();
  EXPECT_EQ(*age, Value::Int(25));
  // get_nickname must not apply to the view instance.
  EXPECT_FALSE(interp.CallByName("get_nickname", {Value::Object(*obj)}).ok());
}

}  // namespace
}  // namespace tyder
