// End-to-end reproduction of every figure and worked example in the paper,
// as golden tests over the full derivation pipeline.

#include <gtest/gtest.h>

#include "core/projection.h"
#include "mir/printer.h"
#include "objmodel/schema_printer.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

// --- Figures 1 and 2: the Person/Employee example (Section 3.1) -----------

TEST(PaperFigures, Figure1OriginalHierarchy) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  EXPECT_EQ(PrintHierarchy(fx->schema.types()),
            "Person {SSN: String, name: String, date_of_birth: Date}\n"
            "Employee {pay_rate: Float, hrs_worked: Float} <- Person(0)\n");
}

TEST(PaperFigures, Figure2RefactoredHierarchy) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(
      PrintHierarchy(fx->schema.types()),
      "Person {name: String} <- ~Person(0)\n"
      "Employee {hrs_worked: Float} <- EmployeeView(0), Person(1)\n"
      "EmployeeView [surrogate of Employee] {pay_rate: Float} <- ~Person(0)\n"
      "~Person [surrogate of Person] {SSN: String, date_of_birth: Date}\n");
  // Method verdicts stated in Section 3.1.
  EXPECT_FALSE(result->applicability.IsApplicable(fx->income));
  EXPECT_TRUE(result->applicability.IsApplicable(fx->age));
  EXPECT_TRUE(result->applicability.IsApplicable(fx->promote));
}

// --- Figure 3 + Example 1 (Section 4.2) ------------------------------------

TEST(PaperFigures, Figure3OriginalHierarchy) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  EXPECT_EQ(PrintHierarchy(fx->schema.types()),
            "H {h1: Int, h2: Int}\n"
            "G {g1: Int}\n"
            "D {d1: Int}\n"
            "E {e1: Int, e2: Int} <- G(0), H(1)\n"
            "F {f1: Int} <- H(0)\n"
            "C {c1: Int} <- F(0), E(1)\n"
            "B {b1: Int} <- D(0), E(1)\n"
            "A {a1: Int, a2: Int} <- C(0), B(1)\n");
}

TEST(PaperExamples, Example1MethodApplicability) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  auto result = DeriveProjection(fx->schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<std::string> applicable, not_applicable;
  for (MethodId m : result->applicability.applicable) {
    applicable.insert(fx->schema.method(m).label.str());
  }
  for (MethodId m : result->applicability.not_applicable) {
    not_applicable.insert(fx->schema.method(m).label.str());
  }
  EXPECT_EQ(applicable,
            (std::set<std::string>{"u3", "v1", "w2", "get_h2"}));
  EXPECT_EQ(not_applicable,
            (std::set<std::string>{"u1", "u2", "v2", "w1", "x1", "y1",
                                   "get_a1", "get_b1", "get_g1"}));
}

// --- Figure 4 + Example 2 (Section 5.2) ------------------------------------

TEST(PaperFigures, Figure4FactoredHierarchy) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  auto result = DeriveProjection(fx->schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(PrintHierarchy(fx->schema.types()),
            "H {h1: Int} <- ~H(0)\n"
            "G {g1: Int}\n"
            "D {d1: Int}\n"
            "E {e1: Int} <- ~E(0), G(1), H(2)\n"
            "F {f1: Int} <- ~F(0), H(1)\n"
            "C {c1: Int} <- ~C(0), F(1), E(2)\n"
            "B {b1: Int} <- ~B(0), D(1), E(2)\n"
            "A {a1: Int} <- ProjA(0), C(1), B(2)\n"
            "ProjA [surrogate of A] {a2: Int} <- ~C(0), ~B(1)\n"
            "~C [surrogate of C] {} <- ~F(0), ~E(1)\n"
            "~F [surrogate of F] {} <- ~H(0)\n"
            "~H [surrogate of H] {h2: Int}\n"
            "~E [surrogate of E] {e2: Int} <- ~H(0)\n"
            "~B [surrogate of B] {} <- ~E(0)\n");
}

// --- Example 3 (Section 6.2) ------------------------------------------------

TEST(PaperExamples, Example3FactoredSignatures) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  auto result = DeriveProjection(fx->schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  auto sig = [&](MethodId m) {
    const Method& method = fx->schema.method(m);
    return SignatureToString(fx->schema.types(),
                             fx->schema.gf(method.gf).name.view(), method.sig);
  };
  // "v1(Ã, C̃), u3(B̃), w2(C̃), get_h2(B̃)".
  EXPECT_EQ(sig(fx->v1), "v(ProjA, ~C) -> Void");
  EXPECT_EQ(sig(fx->u3), "u(~B) -> Void");
  EXPECT_EQ(sig(fx->w2), "w(~C) -> Void");
  EXPECT_EQ(sig(fx->get_h2), "get_h2(~B) -> Int");
}

// --- Figure 5 + Example 4 (Sections 6.3–6.5) -------------------------------

TEST(PaperFigures, Figure5AugmentedHierarchy) {
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  auto result = DeriveProjection(fx->schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  // Z = {D, G} (Example 4).
  EXPECT_EQ(result->augment_z, (std::set<TypeId>{fx->d, fx->g}));
  EXPECT_EQ(PrintHierarchy(fx->schema.types()),
            "H {h1: Int} <- ~H(0)\n"
            "G {g1: Int} <- ~G(0)\n"
            "D {d1: Int} <- ~D(0)\n"
            "E {e1: Int} <- ~E(0), G(1), H(2)\n"
            "F {f1: Int} <- ~F(0), H(1)\n"
            "C {c1: Int} <- ~C(0), F(1), E(2)\n"
            "B {b1: Int} <- ~B(0), D(1), E(2)\n"
            "A {a1: Int} <- ProjA(0), C(1), B(2)\n"
            "ProjA [surrogate of A] {a2: Int} <- ~C(0), ~B(1)\n"
            "~C [surrogate of C] {} <- ~F(0), ~E(1)\n"
            "~F [surrogate of F] {} <- ~H(0)\n"
            "~H [surrogate of H] {h2: Int}\n"
            "~E [surrogate of E] {e2: Int} <- ~G(0), ~H(1)\n"
            "~B [surrogate of B] {} <- ~D(0), ~E(1)\n"
            "~G [surrogate of G] {}\n"
            "~D [surrogate of D] {}\n");
}

TEST(PaperExamples, Example4RetypedBody) {
  auto fx = testing::BuildExample1(true);
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  auto result = DeriveProjection(fx->schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(PrintMethod(fx->schema, fx->z1),
            "z1: z(~C) -> ~G = { gv: ~G; gv = pc; u(pc); return gv; }");
}

}  // namespace
}  // namespace tyder
