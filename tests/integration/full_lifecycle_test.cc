// The whole system in one scenario: TDL load with views -> populate a store
// -> query through a view -> persist schema and store -> reload both ->
// identical query results -> drop the view -> base schema restored and still
// queryable. Every subsystem participates; any cross-module regression
// surfaces here.

#include <gtest/gtest.h>

#include "catalog/export_tdl.h"
#include "catalog/serialize.h"
#include "instances/store_serialize.h"
#include "lang/analyzer.h"
#include "objmodel/schema_printer.h"
#include "query/query.h"

namespace tyder {
namespace {

constexpr const char* kLibraryTdl = R"(
  type Work {
    title: String;
    year: Date;
  }
  type Book : Work {
    isbn: String;
    pages: Int;
    shelf: String;
  }
  accessors;
  method age_of (w: Work) -> Int {
    return 2026 - get_year(w);
  }
  method is_long (b: Book) -> Bool {
    return 500 < get_pages(b);
  }

  // The public catalog view hides shelving internals.
  view CatalogCard = project Book on (title, year, isbn, pages);
)";

std::vector<std::string> TitlesOf(const Schema& schema, ObjectStore& store,
                                  const QueryResult& result) {
  std::vector<std::string> titles;
  auto title = schema.types().FindAttribute("title");
  EXPECT_TRUE(title.ok());
  for (ObjectId obj : result.objects) {
    titles.push_back(store.GetSlot(obj, *title)->AsString());
  }
  return titles;
}

TEST(FullLifecycle, LoadPopulateQueryPersistReloadDrop) {
  // --- load ---------------------------------------------------------------
  auto loaded = LoadTdl(kLibraryTdl);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Catalog catalog = std::move(loaded).value();
  Schema& schema = catalog.schema();
  std::string pristine_export_baseline;  // set after drop, compared below

  // --- populate -----------------------------------------------------------
  ObjectStore store;
  auto book = schema.types().FindType("Book");
  ASSERT_TRUE(book.ok());
  struct Row {
    const char* title;
    int year;
    int pages;
  };
  for (const Row& row : std::initializer_list<Row>{
           {"Moby-Dick", 1851, 635},
           {"Pnin", 1957, 191},
           {"Anathem", 2008, 937}}) {
    auto obj = store.CreateObject(schema, *book);
    ASSERT_TRUE(obj.ok());
    ASSERT_TRUE(store
                    .SetSlot(*obj, *schema.types().FindAttribute("title"),
                             Value::String(row.title))
                    .ok());
    ASSERT_TRUE(store
                    .SetSlot(*obj, *schema.types().FindAttribute("year"),
                             Value::Int(row.year))
                    .ok());
    ASSERT_TRUE(store
                    .SetSlot(*obj, *schema.types().FindAttribute("pages"),
                             Value::Int(row.pages))
                    .ok());
  }

  // --- query through the view ----------------------------------------------
  // is_long survived the projection (pages kept); shelf-based behavior would
  // not have. Long books younger than a century:
  Query query(schema, "CatalogCard");
  query.WhereTdl("is_long(self) and age_of(self) < 100").Column("get_title");
  auto result = query.Execute(store);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(TitlesOf(schema, store, *result),
            (std::vector<std::string>{"Anathem"}));

  // --- persist and reload ---------------------------------------------------
  std::string schema_text = SerializeSchema(schema);
  std::string store_text = SerializeStore(schema, store);
  auto schema2 = DeserializeSchema(schema_text);
  ASSERT_TRUE(schema2.ok()) << schema2.status();
  auto store2 = DeserializeStore(*schema2, store_text);
  ASSERT_TRUE(store2.ok()) << store2.status();

  Query query2(*schema2, "CatalogCard");
  query2.WhereTdl("is_long(self) and age_of(self) < 100").Column("get_title");
  auto result2 = query2.Execute(*store2);
  ASSERT_TRUE(result2.ok()) << result2.status();
  EXPECT_EQ(TitlesOf(*schema2, *store2, *result2),
            (std::vector<std::string>{"Anathem"}));
  EXPECT_EQ(result2->rows, result->rows);

  // --- TDL export replays the whole catalog ---------------------------------
  auto tdl = ExportTdl(catalog);
  ASSERT_TRUE(tdl.ok()) << tdl.status();
  auto replayed = LoadTdl(*tdl);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(PrintHierarchy(replayed->schema().types()),
            PrintHierarchy(schema.types()));

  // --- drop the view ----------------------------------------------------------
  std::string factored_hierarchy = PrintHierarchy(schema.types());
  ASSERT_TRUE(catalog.DropView("CatalogCard").ok());
  EXPECT_NE(PrintHierarchy(schema.types()), factored_hierarchy);
  EXPECT_EQ(PrintHierarchy(schema.types()),
            "Work {title: String, year: Date}\n"
            "Book {isbn: String, pages: Int, shelf: String} <- Work(0)\n");
  pristine_export_baseline = *ExportTdl(catalog);
  EXPECT_EQ(pristine_export_baseline.find("view "), std::string::npos);

  // The base schema still answers the same question directly.
  Query base_query(schema, "Book");
  base_query.WhereTdl("is_long(self) and age_of(self) < 100")
      .Column("get_title");
  auto base_result = base_query.Execute(store);
  ASSERT_TRUE(base_result.ok()) << base_result.status();
  EXPECT_EQ(TitlesOf(schema, store, *base_result),
            (std::vector<std::string>{"Anathem"}));
}

}  // namespace
}  // namespace tyder
