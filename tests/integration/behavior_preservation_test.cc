// The paper's guarantee, observed at instance level: after a derivation,
// every pre-existing object answers every generic-function call exactly as
// before — same dispatch, same values, same errors.

#include <gtest/gtest.h>

#include "core/projection.h"
#include "core/verify.h"
#include "instances/interp.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(BehaviorPreservation, AllCallsOnAllObjectsIdentical) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  ObjectStore store;
  std::vector<ObjectId> objects;
  for (TypeId t : {fx->person, fx->employee}) {
    auto obj = store.CreateObject(fx->schema, t);
    ASSERT_TRUE(obj.ok());
    objects.push_back(*obj);
  }
  ASSERT_TRUE(
      store.SetSlot(objects[1], fx->date_of_birth, Value::Int(1970)).ok());
  ASSERT_TRUE(store.SetSlot(objects[1], fx->pay_rate, Value::Float(20)).ok());
  ASSERT_TRUE(store.SetSlot(objects[1], fx->hrs_worked, Value::Float(35)).ok());

  // Record results for every unary generic function on every object.
  auto run_all = [&](const Schema& schema) {
    std::vector<std::pair<bool, Value>> results;
    Interpreter interp(schema, &store);
    for (GfId g = 0; g < schema.NumGenericFunctions(); ++g) {
      if (schema.gf(g).arity != 1) continue;
      for (ObjectId obj : objects) {
        auto r = interp.Call(g, {Value::Object(obj)});
        results.emplace_back(r.ok(), r.ok() ? *r : Value::Void());
      }
    }
    return results;
  };

  auto before = run_all(fx->schema);
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok()) << result.status();
  auto after = run_all(fx->schema);
  EXPECT_EQ(before, after);
}

TEST(BehaviorPreservation, MutatorsStillTargetTheSameSlots) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  ObjectStore store;
  auto obj = store.CreateObject(fx->schema, fx->employee);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(DeriveProjectionByName(fx->schema, "Employee",
                                     {"SSN", "date_of_birth", "pay_rate"},
                                     "EmployeeView")
                  .ok());
  Interpreter interp(fx->schema, &store);
  // set_SSN was re-homed to ~Person but must still write the same slot of
  // the same pre-existing object.
  ASSERT_TRUE(interp
                  .CallByName("set_SSN",
                              {Value::Object(*obj), Value::String("123")})
                  .ok());
  EXPECT_EQ(*store.GetSlot(*obj, fx->ssn), Value::String("123"));
  auto read = interp.CallByName("get_SSN", {Value::Object(*obj)});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Value::String("123"));
}

TEST(BehaviorPreservation, RepeatedDerivationsKeepPreserving) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  ObjectStore store;
  auto obj = store.CreateObject(fx->schema, fx->employee);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(store.SetSlot(*obj, fx->pay_rate, Value::Float(10)).ok());
  ASSERT_TRUE(store.SetSlot(*obj, fx->hrs_worked, Value::Float(10)).ok());

  Interpreter interp0(fx->schema, &store);
  Value income = *interp0.CallByName("income", {Value::Object(*obj)});

  // Chain three derivations, checking after each.
  ASSERT_TRUE(DeriveProjectionByName(fx->schema, "Employee",
                                     {"SSN", "date_of_birth", "pay_rate"}, "V1")
                  .ok());
  ASSERT_TRUE(DeriveProjectionByName(fx->schema, "V1", {"SSN", "pay_rate"},
                                     "V2")
                  .ok());
  ASSERT_TRUE(DeriveProjectionByName(fx->schema, "Person", {"name"}, "V3")
                  .ok());
  Interpreter interp(fx->schema, &store);
  auto r = interp.CallByName("income", {Value::Object(*obj)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, income);
}

TEST(BehaviorPreservation, VerifierCatchesDeliberateCorruption) {
  // Sanity-check that the verifier is not vacuous: corrupt the derived
  // schema by hand and it must complain.
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Schema before = fx->schema;
  ProjectionOptions options;
  options.verify = false;
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView", options);
  ASSERT_TRUE(result.ok());
  // Corruption: steal the `name` attribute into the view, changing both
  // Person's and the view's cumulative state.
  ASSERT_TRUE(fx->schema.types().MoveAttribute(fx->name, result->derived).ok());
  VerifyReport report = VerifyDerivation(before, fx->schema, *result);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace tyder
