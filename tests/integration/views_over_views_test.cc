// Section 7's open problem: surrogate growth when views are defined over
// views, and the effect of empty-surrogate collapse.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

// Builds a linear chain of projection views over Employee, each dropping
// nothing (full attribute list), which maximizes factoring work.
Result<Catalog> BuildChain(int depth) {
  TYDER_ASSIGN_OR_RETURN(testing::PersonEmployeeFixture fx,
                         testing::BuildPersonEmployee());
  Catalog catalog(std::move(fx.schema));
  std::string source = "Employee";
  std::vector<std::string> attrs = {"SSN", "date_of_birth", "pay_rate"};
  for (int i = 0; i < depth; ++i) {
    std::string name = "V" + std::to_string(i);
    TYDER_RETURN_IF_ERROR(
        catalog.DefineProjectionView(name, source, attrs).status());
    source = name;
  }
  return catalog;
}

TEST(ViewsOverViews, SurrogateCountGrowsLinearly) {
  auto c2 = BuildChain(2);
  ASSERT_TRUE(c2.ok()) << c2.status();
  auto c4 = BuildChain(4);
  ASSERT_TRUE(c4.ok()) << c4.status();
  EXPECT_GT(c4->LiveSurrogateCount(), c2->LiveSurrogateCount());
}

TEST(ViewsOverViews, EveryLevelKeepsProjectedState) {
  auto chain = BuildChain(4);
  ASSERT_TRUE(chain.ok()) << chain.status();
  for (const ViewDef& def : chain->views()) {
    std::set<std::string> attrs;
    for (AttrId a :
         chain->schema().types().CumulativeAttributes(def.derived)) {
      attrs.insert(chain->schema().types().attribute(a).name.str());
    }
    EXPECT_EQ(attrs,
              (std::set<std::string>{"SSN", "date_of_birth", "pay_rate"}))
        << def.name;
  }
}

TEST(ViewsOverViews, CollapseReducesEmptySurrogates) {
  auto chain = BuildChain(4);
  ASSERT_TRUE(chain.ok()) << chain.status();
  size_t before = chain->LiveSurrogateCount();
  auto report = chain->Collapse();
  ASSERT_TRUE(report.ok()) << report.status();
  size_t after = chain->LiveSurrogateCount();
  EXPECT_EQ(before - after, report->collapsed.size());
  EXPECT_TRUE(chain->schema().Validate().ok());
  // View types and state are intact after collapsing.
  for (const ViewDef& def : chain->views()) {
    EXPECT_FALSE(chain->schema().types().type(def.derived).detached());
    EXPECT_EQ(chain->schema().types().CumulativeAttributes(def.derived).size(),
              3u);
  }
}

TEST(ViewsOverViews, NarrowingChainDropsBehavior) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Catalog catalog(std::move(fx->schema));
  ASSERT_TRUE(catalog
                  .DefineProjectionView("V0", "Employee",
                                        {"SSN", "date_of_birth", "pay_rate"})
                  .ok());
  ASSERT_TRUE(
      catalog.DefineProjectionView("V1", "V0", {"SSN", "pay_rate"}).ok());
  ASSERT_TRUE(catalog.DefineProjectionView("V2", "V1", {"SSN"}).ok());
  const Schema& s = catalog.schema();
  auto v2 = s.types().FindType("V2");
  ASSERT_TRUE(v2.ok());
  // Only the SSN accessors remain applicable at the bottom of the chain.
  int applicable = 0;
  for (MethodId m = 0; m < s.NumMethods(); ++m) {
    for (TypeId formal : s.method(m).sig.params) {
      if (s.types().IsSubtype(*v2, formal)) {
        ++applicable;
        break;
      }
    }
  }
  EXPECT_EQ(applicable, 2);  // get_SSN and set_SSN (rewritten)
}

}  // namespace
}  // namespace tyder
