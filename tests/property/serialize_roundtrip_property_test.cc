// Save/Load/Save property: over random schemas — including ones factored by
// random projections, with surrogates and re-homed methods — serialization
// must be a fixed point: deserializing and re-serializing reproduces the
// exact bytes, both for the plain text format and through the checksummed
// snapshot envelope, and for whole catalogs via storage/catalog_snapshot.h.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/serialize.h"
#include "core/projection.h"
#include "storage/catalog_snapshot.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

constexpr uint32_t kSeeds = 25;

TEST(SerializeRoundTripProperty, RandomSchemasAreAFixedPoint) {
  for (uint32_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    testing::RandomSchemaOptions options;
    options.seed = seed;
    options.with_mutators = (seed % 2) == 0;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok()) << schema.status();

    std::string first = SerializeSchema(*schema);
    auto restored = DeserializeSchema(first);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(SerializeSchema(*restored), first);

    auto unwrapped = LoadSchemaSnapshot(SaveSchemaSnapshot(*schema));
    ASSERT_TRUE(unwrapped.ok()) << unwrapped.status();
    EXPECT_EQ(SerializeSchema(*unwrapped), first);
  }
}

TEST(SerializeRoundTripProperty, FactoredRandomSchemasAreAFixedPoint) {
  size_t derived_count = 0;
  for (uint32_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    testing::RandomSchemaOptions options;
    options.seed = seed;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok()) << schema.status();

    ProjectionSpec spec;
    if (!testing::PickRandomProjection(*schema, seed * 31 + 7, &spec.source,
                                       &spec.attributes)) {
      continue;
    }
    spec.view_name = "RandView" + std::to_string(seed);
    auto derived = DeriveProjection(*schema, spec);
    if (!derived.ok()) continue;  // legitimately refused projections
    ++derived_count;

    std::string first = SerializeSchema(*schema);
    auto restored = DeserializeSchema(first);
    ASSERT_TRUE(restored.ok()) << restored.status();
    // Byte-identical second serialization: surrogates, precedence-ordered
    // edges, re-homed method signatures, and rewritten bodies all survive.
    EXPECT_EQ(SerializeSchema(*restored), first);

    auto unwrapped = LoadSchemaSnapshot(SaveSchemaSnapshot(*schema));
    ASSERT_TRUE(unwrapped.ok()) << unwrapped.status();
    EXPECT_EQ(SerializeSchema(*unwrapped), first);
  }
  // The property must actually exercise factored schemas, not vacuously skip.
  EXPECT_GT(derived_count, kSeeds / 3);
}

TEST(SerializeRoundTripProperty, RandomCatalogSnapshotsAreAFixedPoint) {
  size_t derived_count = 0;
  for (uint32_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    testing::RandomSchemaOptions options;
    options.seed = seed;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok()) << schema.status();

    ProjectionSpec spec;
    bool has_projection = testing::PickRandomProjection(
        *schema, seed * 17 + 3, &spec.source, &spec.attributes);

    Catalog catalog(std::move(*schema));
    if (has_projection) {
      const Schema& s = catalog.schema();
      std::vector<std::string> attr_names;
      for (AttrId a : spec.attributes) {
        attr_names.push_back(s.types().attribute(a).name.str());
      }
      std::string source_name = s.types().TypeName(spec.source);
      auto view = catalog.DefineProjectionView(
          "RandView" + std::to_string(seed), source_name, attr_names);
      if (view.ok()) ++derived_count;
    }

    std::string first = storage::SerializeCatalog(catalog);
    auto restored = storage::DeserializeCatalog(first);
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(storage::SerializeCatalog(*restored), first);

    auto unwrapped =
        storage::LoadCatalogSnapshot(storage::SaveCatalogSnapshot(catalog));
    ASSERT_TRUE(unwrapped.ok()) << unwrapped.status();
    EXPECT_EQ(storage::SerializeCatalog(*unwrapped), first);
  }
  EXPECT_GT(derived_count, kSeeds / 3);
}

}  // namespace
}  // namespace tyder
