// Property-based testing over randomly generated schemas: for arbitrary
// multiple-inheritance hierarchies with arbitrary (type-correct) method call
// graphs, every projection must preserve the state and behavior of existing
// types, leave the schema valid and well-typed, keep the derived type's
// state exactly the projection list, and survive serialization and collapse.

#include <gtest/gtest.h>

#include "catalog/diff.h"
#include "catalog/serialize.h"
#include "common/failpoint.h"
#include "core/collapse.h"
#include "core/projection.h"
#include "core/verify.h"
#include "instances/interp.h"
#include "methods/applicability.h"
#include "mir/type_check.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

struct Scenario {
  uint32_t seed;
  int num_types;
  int num_methods;
  bool mutators = false;
};

class ProjectionPropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ProjectionPropertyTest, DerivationPreservesAllInvariants) {
  const Scenario& sc = GetParam();
  testing::RandomSchemaOptions options;
  options.seed = sc.seed;
  options.num_types = sc.num_types;
  options.num_general_methods = sc.num_methods;
  options.with_mutators = sc.mutators;
  auto schema = testing::GenerateRandomSchema(options);
  ASSERT_TRUE(schema.ok()) << schema.status();

  TypeId source = kInvalidType;
  std::vector<AttrId> attrs;
  ASSERT_TRUE(testing::PickRandomProjection(*schema, sc.seed * 31 + 7,
                                            &source, &attrs));

  Schema before = *schema;
  ProjectionSpec spec;
  spec.source = source;
  spec.attributes = attrs;
  spec.view_name = "RandomView";
  // options.verify = true (default): DeriveProjection runs the full
  // behavior-preservation verifier internally and fails on any violation.
  auto result = DeriveProjection(*schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();

  // Derived type's cumulative state is exactly the projection list.
  std::set<AttrId> expected(attrs.begin(), attrs.end());
  std::vector<AttrId> got_list =
      schema->types().CumulativeAttributes(result->derived);
  std::set<AttrId> got(got_list.begin(), got_list.end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(got_list.size(), expected.size());

  // Every method applicable to the derived type accesses only projected
  // attributes transitively — spot-check via the accessor registry: an
  // applicable reader's attribute must be projected.
  for (MethodId m : result->applicability.applicable) {
    const Method& method = schema->method(m);
    if (method.kind == MethodKind::kReader) {
      EXPECT_TRUE(expected.count(method.attr) > 0)
          << method.label.view();
    }
  }

  // Serialization round trip is stable.
  std::string text = SerializeSchema(*schema);
  auto restored = DeserializeSchema(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SerializeSchema(*restored), text);

  // Collapse keeps the schema valid and well-typed.
  auto collapse = CollapseEmptySurrogates(*schema, {result->derived});
  ASSERT_TRUE(collapse.ok()) << collapse.status();
  EXPECT_TRUE(TypeCheckSchema(*schema).ok());
}

TEST_P(ProjectionPropertyTest, SecondProjectionOverDerivedView) {
  const Scenario& sc = GetParam();
  testing::RandomSchemaOptions options;
  options.seed = sc.seed;
  options.num_types = sc.num_types;
  options.num_general_methods = sc.num_methods;
  options.with_mutators = sc.mutators;
  auto schema = testing::GenerateRandomSchema(options);
  ASSERT_TRUE(schema.ok()) << schema.status();

  TypeId source = kInvalidType;
  std::vector<AttrId> attrs;
  ASSERT_TRUE(testing::PickRandomProjection(*schema, sc.seed * 17 + 3,
                                            &source, &attrs));
  ProjectionSpec first;
  first.source = source;
  first.attributes = attrs;
  first.view_name = "Level1";
  auto r1 = DeriveProjection(*schema, first);
  ASSERT_TRUE(r1.ok()) << r1.status();

  // Project the view again on a prefix of its attributes.
  ProjectionSpec second;
  second.source = r1->derived;
  second.attributes = {attrs.front()};
  second.view_name = "Level2";
  auto r2 = DeriveProjection(*schema, second);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(schema->types().CumulativeAttributes(r2->derived).size(), 1u);
}

TEST_P(ProjectionPropertyTest, InstanceBehaviorPreserved) {
  const Scenario& sc = GetParam();
  testing::RandomSchemaOptions options;
  options.seed = sc.seed;
  options.num_types = sc.num_types;
  options.num_general_methods = sc.num_methods;
  options.with_mutators = sc.mutators;
  auto schema = testing::GenerateRandomSchema(options);
  ASSERT_TRUE(schema.ok()) << schema.status();

  // One live object per user type.
  ObjectStore store;
  std::vector<ObjectId> objects;
  for (TypeId t = 0; t < schema->types().NumTypes(); ++t) {
    if (schema->types().type(t).kind() != TypeKind::kUser) continue;
    auto obj = store.CreateObject(*schema, t);
    ASSERT_TRUE(obj.ok());
    objects.push_back(*obj);
  }

  // Observable behavior: outcome (ok/error message) and value of every
  // unary generic-function call on every object, plus every binary call with
  // the object doubled.
  // Bodies may contain mutators, so each pass runs against a fresh copy of
  // the pristine store — a pass must not leak writes into the next.
  auto observe = [&](const Schema& s) {
    ObjectStore scratch = store;
    std::vector<std::tuple<bool, Value, std::string>> out;
    Interpreter interp(s, &scratch);
    for (GfId g = 0; g < s.NumGenericFunctions(); ++g) {
      for (ObjectId obj : objects) {
        Result<Value> r =
            s.gf(g).arity == 1
                ? interp.Call(g, {Value::Object(obj)})
                : (s.gf(g).arity == 2
                       ? interp.Call(g, {Value::Object(obj), Value::Object(obj)})
                       : Result<Value>(Value::Void()));
        out.emplace_back(r.ok(), r.ok() ? *r : Value::Void(),
                         r.ok() ? "" : r.status().message());
      }
    }
    return out;
  };

  auto before = observe(*schema);
  TypeId source = kInvalidType;
  std::vector<AttrId> attrs;
  ASSERT_TRUE(testing::PickRandomProjection(*schema, sc.seed * 13 + 1,
                                            &source, &attrs));
  ProjectionSpec spec;
  spec.source = source;
  spec.attributes = attrs;
  spec.view_name = "BehaviorView";
  auto result = DeriveProjection(*schema, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  auto after = observe(*schema);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "call " << i << " diverged";
  }
}

TEST_P(ProjectionPropertyTest, FaultedDerivationRollsBackExactly) {
  // All-or-nothing under fault injection (core/transaction.h): for every
  // pipeline fault point that this schema's derivation reaches, the failed
  // derivation must leave the schema serializing byte-identically to its
  // pre-call state, and the same derivation must succeed once the fault is
  // cleared. Points a given random schema never reaches (e.g. the augment
  // ones when Z is empty) derive successfully instead — also checked.
  const Scenario& sc = GetParam();
  const char* kPoints[] = {
      "is_applicable.before", "is_applicable.mid",    "factor_state.before",
      "factor_state.mid",     "augment.after_compute", "augment.before",
      "augment.mid",          "factor_methods.before", "factor_methods.mid",
      "verify.before",        "verify.force_failure",
  };
  for (const char* point : kPoints) {
    SCOPED_TRACE(point);
    testing::RandomSchemaOptions options;
    options.seed = sc.seed;
    options.num_types = sc.num_types;
    options.num_general_methods = sc.num_methods;
    options.with_mutators = sc.mutators;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok()) << schema.status();

    TypeId source = kInvalidType;
    std::vector<AttrId> attrs;
    ASSERT_TRUE(testing::PickRandomProjection(*schema, sc.seed * 31 + 7,
                                              &source, &attrs));
    ProjectionSpec spec;
    spec.source = source;
    spec.attributes = attrs;
    spec.view_name = "FaultedView";

    Schema before = *schema;
    std::string pre = SerializeSchema(*schema);
    uint64_t fires = failpoint::FireCount(point);
    failpoint::Activate(point);
    auto faulted = DeriveProjection(*schema, spec);
    failpoint::DeactivateAll();

    if (failpoint::FireCount(point) > fires) {
      ASSERT_FALSE(faulted.ok());
      EXPECT_EQ(SerializeSchema(*schema), pre);
      EXPECT_TRUE(DiffSchemas(before, *schema).empty())
          << DiffToString(DiffSchemas(before, *schema));
      auto retry = DeriveProjection(*schema, spec);
      EXPECT_TRUE(retry.ok()) << retry.status();
    } else {
      // The derivation never reached the point; it must have succeeded.
      EXPECT_TRUE(faulted.ok()) << faulted.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProjectionPropertyTest,
    ::testing::Values(
        Scenario{1, 8, 6}, Scenario{2, 8, 6}, Scenario{3, 8, 6},
        Scenario{4, 12, 10}, Scenario{5, 12, 10}, Scenario{6, 12, 10},
        Scenario{7, 16, 14}, Scenario{8, 16, 14}, Scenario{9, 16, 14},
        Scenario{10, 20, 18}, Scenario{11, 20, 18}, Scenario{12, 20, 18},
        Scenario{13, 24, 20}, Scenario{14, 24, 20}, Scenario{15, 24, 20},
        Scenario{16, 10, 25}, Scenario{17, 10, 25}, Scenario{18, 30, 8},
        Scenario{19, 30, 8}, Scenario{20, 6, 30},
        Scenario{21, 12, 12, true}, Scenario{22, 12, 12, true},
        Scenario{23, 18, 16, true}, Scenario{24, 18, 16, true},
        Scenario{25, 24, 24, true}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace tyder
