#include "catalog/diff.h"

#include <gtest/gtest.h>

#include "core/projection.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(DiffTest, IdenticalSchemasProduceEmptyDiff) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  Schema snapshot = fx->schema;
  EXPECT_TRUE(DiffSchemas(snapshot, fx->schema).empty());
}

TEST(DiffTest, DerivationDiffListsExactlyTheExpectedChanges) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Schema before = fx->schema;
  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<SchemaDiffEntry> diff = DiffSchemas(before, fx->schema);
  std::map<DiffKind, int> counts;
  for (const SchemaDiffEntry& e : diff) ++counts[e.kind];

  // Two new types (EmployeeView, ~Person); Person and Employee re-wired;
  // SSN, date_of_birth, pay_rate moved; applicable method signatures
  // rewritten (age, promote + 3 readers + 3 mutators = 8); no body changes.
  EXPECT_EQ(counts[DiffKind::kTypeAdded], 2);
  EXPECT_EQ(counts[DiffKind::kSupertypesChanged], 2);
  EXPECT_EQ(counts[DiffKind::kAttributeMoved], 3);
  EXPECT_EQ(counts[DiffKind::kMethodSignatureChanged], 8);
  EXPECT_EQ(counts[DiffKind::kMethodBodyChanged], 0);
  EXPECT_EQ(counts[DiffKind::kGenericFunctionAdded], 0);
}

TEST(DiffTest, DescriptionsAreHumanReadable) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Schema before = fx->schema;
  ASSERT_TRUE(DeriveProjectionByName(fx->schema, "Employee",
                                     {"SSN", "date_of_birth", "pay_rate"},
                                     "EmployeeView")
                  .ok());
  std::string text = DiffToString(DiffSchemas(before, fx->schema));
  EXPECT_NE(text.find("+ type EmployeeView"), std::string::npos);
  EXPECT_NE(text.find("+ type ~Person"), std::string::npos);
  EXPECT_NE(text.find("~ attribute SSN: Person => ~Person"),
            std::string::npos);
  EXPECT_NE(text.find("~ supertypes of Employee"), std::string::npos);
}

TEST(DiffTest, BodyChangeDetected) {
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok());
  Schema before = fx->schema;
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());
  std::vector<SchemaDiffEntry> diff = DiffSchemas(before, fx->schema);
  int body_changes = 0;
  for (const SchemaDiffEntry& e : diff) {
    if (e.kind == DiffKind::kMethodBodyChanged) ++body_changes;
  }
  EXPECT_EQ(body_changes, 2);  // z1 and z2 locals retyped
}

TEST(DiffTest, GenericFunctionAdditionDetected) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Schema before = fx->schema;
  ASSERT_TRUE(fx->schema.DeclareGenericFunction("fresh", 1).ok());
  std::vector<SchemaDiffEntry> diff = DiffSchemas(before, fx->schema);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].kind, DiffKind::kGenericFunctionAdded);
}

}  // namespace
}  // namespace tyder
