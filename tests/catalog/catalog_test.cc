#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/diff.h"
#include "catalog/serialize.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    catalog_ = std::make_unique<Catalog>(std::move(fx->schema));
  }
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CatalogTest, DefineProjectionViewRecordsProvenance) {
  auto view = catalog_->DefineProjectionView(
      "EmployeeView", "Employee", {"SSN", "date_of_birth", "pay_rate"});
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ((*view)->name, "EmployeeView");
  EXPECT_EQ((*view)->op, ViewOpKind::kProjection);
  EXPECT_EQ((*view)->attributes.size(), 3u);
  auto found = catalog_->FindView("EmployeeView");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->derived, (*view)->derived);
}

TEST_F(CatalogTest, DuplicateViewNameRejected) {
  ASSERT_TRUE(
      catalog_->DefineProjectionView("V", "Employee", {"SSN"}).ok());
  EXPECT_EQ(catalog_->DefineProjectionView("V", "Employee", {"name"})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_->DefineSelectionView("V", "Employee").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, SelectionViewRecorded) {
  auto view = catalog_->DefineSelectionView("Staff", "Employee");
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ((*view)->op, ViewOpKind::kSelection);
  EXPECT_TRUE(catalog_->schema().types().FindType("Staff").ok());
}

TEST_F(CatalogTest, GeneralizationViewRecorded) {
  auto view =
      catalog_->DefineGeneralizationView("Common", "Employee", "Person");
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ((*view)->op, ViewOpKind::kGeneralization);
  EXPECT_NE((*view)->source2, kInvalidType);
}

TEST_F(CatalogTest, ViewsOverViews) {
  ASSERT_TRUE(catalog_
                  ->DefineProjectionView(
                      "V1", "Employee", {"SSN", "date_of_birth", "pay_rate"})
                  .ok());
  auto v2 = catalog_->DefineProjectionView("V2", "V1", {"SSN", "pay_rate"});
  ASSERT_TRUE(v2.ok()) << v2.status();
  auto v3 = catalog_->DefineProjectionView("V3", "V2", {"SSN"});
  ASSERT_TRUE(v3.ok()) << v3.status();
  EXPECT_EQ(catalog_->views().size(), 3u);
  std::set<std::string> attrs;
  for (AttrId a :
       catalog_->schema().types().CumulativeAttributes((*v3)->derived)) {
    attrs.insert(catalog_->schema().types().attribute(a).name.str());
  }
  EXPECT_EQ(attrs, (std::set<std::string>{"SSN"}));
}

TEST_F(CatalogTest, CollapseKeepsViewTypes) {
  ASSERT_TRUE(catalog_
                  ->DefineProjectionView(
                      "V1", "Employee", {"SSN", "date_of_birth", "pay_rate"})
                  .ok());
  ASSERT_TRUE(
      catalog_->DefineProjectionView("V2", "V1", {"SSN", "pay_rate"}).ok());
  size_t before = catalog_->LiveSurrogateCount();
  auto report = catalog_->Collapse();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LE(catalog_->LiveSurrogateCount(), before);
  // View types survive.
  for (const ViewDef& def : catalog_->views()) {
    EXPECT_FALSE(catalog_->schema().types().type(def.derived).detached())
        << def.name;
  }
}

TEST_F(CatalogTest, UnknownSourceTypeReported) {
  EXPECT_FALSE(catalog_->DefineProjectionView("V", "Ghost", {"SSN"}).ok());
  EXPECT_FALSE(catalog_->DefineSelectionView("V", "Ghost").ok());
}

// Every refused DropView must leave both the schema and the view registry
// exactly as they were (the all-or-nothing guarantee in catalog.h).

// Captures catalog state and asserts nothing changed since construction.
class CatalogStateCheck {
 public:
  explicit CatalogStateCheck(const Catalog& catalog)
      : catalog_(catalog),
        schema_(catalog.schema()),
        serialized_(SerializeSchema(catalog.schema())),
        views_(catalog.views().size()) {
    for (const ViewDef& def : catalog.views()) names_.push_back(def.name);
  }

  void ExpectUnchanged() const {
    EXPECT_EQ(SerializeSchema(catalog_.schema()), serialized_);
    EXPECT_TRUE(DiffSchemas(schema_, catalog_.schema()).empty())
        << DiffToString(DiffSchemas(schema_, catalog_.schema()));
    ASSERT_EQ(catalog_.views().size(), views_);
    for (size_t i = 0; i < views_; ++i) {
      EXPECT_EQ(catalog_.views()[i].name, names_[i]);
    }
  }

 private:
  const Catalog& catalog_;
  Schema schema_;  // pre-call copy for structural diffing
  std::string serialized_;
  size_t views_;
  std::vector<std::string> names_;
};

TEST_F(CatalogTest, DropUnknownViewLeavesEverythingUntouched) {
  ASSERT_TRUE(
      catalog_
          ->DefineProjectionView("V1", "Employee",
                                 {"SSN", "date_of_birth", "pay_rate"})
          .ok());
  CatalogStateCheck check(*catalog_);
  EXPECT_EQ(catalog_->DropView("Ghost").code(), StatusCode::kNotFound);
  check.ExpectUnchanged();
}

TEST_F(CatalogTest, DropObservedViewRefusedAndUntouched) {
  ASSERT_TRUE(catalog_
                  ->DefineProjectionView(
                      "V1", "Employee", {"SSN", "date_of_birth", "pay_rate"})
                  .ok());
  ASSERT_TRUE(
      catalog_->DefineProjectionView("V2", "V1", {"SSN", "pay_rate"}).ok());
  CatalogStateCheck check(*catalog_);
  // V2's derivation observes V1's surrogates, so reverting V1 is refused.
  Status status = catalog_->DropView("V1");
  ASSERT_FALSE(status.ok());
  check.ExpectUnchanged();
  // Dropping in dependency order still works.
  EXPECT_TRUE(catalog_->DropView("V2").ok());
  EXPECT_TRUE(catalog_->DropView("V1").ok());
  EXPECT_TRUE(catalog_->views().empty());
}

TEST_F(CatalogTest, DropRenameViewRefusedAndUntouched) {
  auto view = catalog_->DefineRenameView(
      "Renamed", "Employee", {{"pay_rate", "hourly_rate"}});
  ASSERT_TRUE(view.ok()) << view.status();
  CatalogStateCheck check(*catalog_);
  Status status = catalog_->DropView("Renamed");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  check.ExpectUnchanged();
}

TEST_F(CatalogTest, DropObservedSelectionViewRefusedAndUntouched) {
  ASSERT_TRUE(catalog_->DefineSelectionView("Staff", "Employee").ok());
  // A second selection view under the first makes "Staff" observed.
  ASSERT_TRUE(catalog_->DefineSelectionView("NightStaff", "Staff").ok());
  CatalogStateCheck check(*catalog_);
  Status status = catalog_->DropView("Staff");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  check.ExpectUnchanged();
  EXPECT_TRUE(catalog_->DropView("NightStaff").ok());
  EXPECT_TRUE(catalog_->DropView("Staff").ok());
}

TEST_F(CatalogTest, CreateMakesEmptyCatalog) {
  auto fresh = Catalog::Create();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->views().empty());
  EXPECT_TRUE(fresh->schema().types().FindType("Object").ok());
}

}  // namespace
}  // namespace tyder
