#include "catalog/serialize.h"

#include <gtest/gtest.h>

#include "core/projection.h"
#include "instances/interp.h"
#include "mir/builder.h"
#include "mir/printer.h"
#include "mir/type_check.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(SerializeTest, RoundTripPlainSchema) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  std::string text = SerializeSchema(fx->schema);
  auto restored = DeserializeSchema(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // Stable re-serialization: the round trip is a fixed point.
  EXPECT_EQ(SerializeSchema(*restored), text);
  EXPECT_TRUE(TypeCheckSchema(*restored).ok());
}

TEST(SerializeTest, RoundTripFactoredSchema) {
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());

  std::string text = SerializeSchema(fx->schema);
  auto restored = DeserializeSchema(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SerializeSchema(*restored), text);

  // Structure is preserved: surrogates, moved attributes, rewritten sigs.
  auto proj = restored->types().FindType("ProjA");
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(restored->types().type(*proj).is_surrogate());
  auto v1 = restored->FindMethod("v1");
  ASSERT_TRUE(v1.ok());
  EXPECT_NE(PrintMethod(*restored, *v1).find("v(ProjA, ~C)"),
            std::string::npos);
}

TEST(SerializeTest, RestoredSchemaExecutesIdentically) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto restored = DeserializeSchema(SerializeSchema(fx->schema));
  ASSERT_TRUE(restored.ok()) << restored.status();
  ObjectStore store;
  auto employee = restored->types().FindType("Employee");
  ASSERT_TRUE(employee.ok());
  auto obj = store.CreateObject(*restored, *employee);
  ASSERT_TRUE(obj.ok());
  auto dob = restored->types().FindAttribute("date_of_birth");
  ASSERT_TRUE(dob.ok());
  ASSERT_TRUE(store.SetSlot(*obj, *dob, Value::Int(1990)).ok());
  Interpreter interp(*restored, &store);
  auto age = interp.CallByName("age", {Value::Object(*obj)});
  ASSERT_TRUE(age.ok()) << age.status();
  EXPECT_EQ(*age, Value::Int(36));
}

TEST(SerializeTest, BodyRoundTripCoversEveryNodeKind) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Schema& s = fx->schema;
  auto u = s.DeclareGenericFunction("u_probe", 1);
  ASSERT_TRUE(u.ok());
  ExprPtr body = mir::Seq(
      {mir::Decl("v0", fx->person, mir::Param(0)),
       mir::Assign("v0", mir::Param(0)),
       mir::ExprStmt(mir::Call(
           *u, {mir::Param(0)})),
       mir::If(mir::BinOp(BinOpKind::kAnd, mir::BoolLit(true),
                          mir::BinOp(BinOpKind::kLe, mir::IntLit(1),
                                     mir::FloatLit(2.5))),
               mir::Seq({mir::Return()}),
               mir::Seq({mir::ExprStmt(mir::StringLit("a \"quoted\" str"))})),
       mir::Return()});
  std::string text = SerializeBody(s, body);
  auto restored = DeserializeBody(s, text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SerializeBody(s, *restored), text);
}

TEST(SerializeTest, MissingHeaderRejected) {
  EXPECT_FALSE(DeserializeSchema("type A user\n").ok());
}

TEST(SerializeTest, UnknownDirectiveRejected) {
  EXPECT_FALSE(DeserializeSchema("tyder-schema v1\nbogus line\n").ok());
}

TEST(SerializeTest, MalformedBodyRejected) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  EXPECT_FALSE(DeserializeBody(fx->schema, "(unknown_tag)").ok());
  EXPECT_FALSE(DeserializeBody(fx->schema, "(seq").ok());
  EXPECT_FALSE(DeserializeBody(fx->schema, "(call no_such_gf)").ok());
}

// ---------------------------------------------------------------------------
// Checksummed snapshot envelope (the durable catalog's on-disk framing).

TEST(SnapshotEnvelopeTest, EncodeDecodeRoundTrip) {
  std::string payload = "tyder-schema v1\ntype Person user\n";
  auto decoded = DecodeSnapshotEnvelope(EncodeSnapshotEnvelope(payload));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, payload);
  // Empty payloads frame cleanly too.
  decoded = DecodeSnapshotEnvelope(EncodeSnapshotEnvelope(""));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, "");
}

// The hardening contract: EVERY strict prefix of a valid snapshot must fail
// with a Status — never decode partially, never read out of bounds.
TEST(SnapshotEnvelopeTest, EveryPrefixOfAValidSnapshotFails) {
  std::string bytes = EncodeSnapshotEnvelope("payload bytes for the test");
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded =
        DecodeSnapshotEnvelope(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  auto full = DecodeSnapshotEnvelope(bytes);
  EXPECT_TRUE(full.ok()) << full.status();
}

TEST(SnapshotEnvelopeTest, WrongMagicFails) {
  std::string bytes = EncodeSnapshotEnvelope("payload");
  bytes[0] = 'X';
  auto decoded = DecodeSnapshotEnvelope(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bad magic"), std::string::npos)
      << decoded.status();
}

TEST(SnapshotEnvelopeTest, FutureFormatVersionFails) {
  std::string bytes = EncodeSnapshotEnvelope("payload");
  bytes[8] = 2;  // little-endian u32 version at offset 8
  auto decoded = DecodeSnapshotEnvelope(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version 2"), std::string::npos)
      << decoded.status();
}

TEST(SnapshotEnvelopeTest, PayloadCorruptionFailsTheChecksum) {
  std::string bytes = EncodeSnapshotEnvelope("payload");
  bytes[16] ^= 0x01;  // first payload byte
  auto decoded = DecodeSnapshotEnvelope(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos)
      << decoded.status();
}

TEST(SnapshotEnvelopeTest, TrailingGarbageFails) {
  std::string bytes = EncodeSnapshotEnvelope("payload") + "x";
  auto decoded = DecodeSnapshotEnvelope(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos)
      << decoded.status();
}

TEST(SnapshotEnvelopeTest, SchemaSnapshotRoundTripsFactoredSchemas) {
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());

  std::string bytes = SaveSchemaSnapshot(fx->schema);
  auto restored = LoadSchemaSnapshot(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SerializeSchema(*restored), SerializeSchema(fx->schema));
  // Every prefix of the framed schema fails loudly as well.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_FALSE(
        LoadSchemaSnapshot(std::string_view(bytes).substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

}  // namespace
}  // namespace tyder
