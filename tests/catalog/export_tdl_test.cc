#include "catalog/export_tdl.h"

#include <gtest/gtest.h>

#include "lang/analyzer.h"
#include "methods/accessor_gen.h"
#include "mir/printer.h"
#include "objmodel/schema_printer.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(ExportTdlTest, RoundTripPreservesHierarchyAndMethods) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  auto tdl = ExportTdl(fx->schema);
  ASSERT_TRUE(tdl.ok()) << tdl.status();
  auto reloaded = LoadTdl(*tdl);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status() << "\n--- exported ---\n"
                             << *tdl;
  EXPECT_EQ(PrintHierarchy(reloaded->schema().types()),
            PrintHierarchy(fx->schema.types()));
  EXPECT_EQ(PrintAllMethods(reloaded->schema()),
            PrintAllMethods(fx->schema));
}

TEST(ExportTdlTest, ExportIsAFixedPoint) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto tdl = ExportTdl(fx->schema);
  ASSERT_TRUE(tdl.ok());
  auto reloaded = LoadTdl(*tdl);
  ASSERT_TRUE(reloaded.ok());
  auto again = ExportTdl(reloaded->schema());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *tdl);
}

TEST(ExportTdlTest, CatalogExportReplaysViews) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Catalog catalog(std::move(fx->schema));
  ASSERT_TRUE(catalog
                  .DefineProjectionView("EmployeeView", "Employee",
                                        {"SSN", "date_of_birth", "pay_rate"})
                  .ok());
  auto tdl = ExportTdl(catalog);
  ASSERT_TRUE(tdl.ok()) << tdl.status();
  EXPECT_NE(tdl->find("view EmployeeView = project Employee on (SSN, "
                      "date_of_birth, pay_rate);"),
            std::string::npos);
  auto reloaded = LoadTdl(*tdl);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status() << "\n--- exported ---\n"
                             << *tdl;
  // The replayed derivation produces the identical factored hierarchy.
  EXPECT_EQ(PrintHierarchy(reloaded->schema().types()),
            PrintHierarchy(catalog.schema().types()));
  EXPECT_EQ(PrintAllMethods(reloaded->schema()),
            PrintAllMethods(catalog.schema()));
}

TEST(ExportTdlTest, RenameViewExported) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  Catalog catalog(std::move(fx->schema));
  ASSERT_TRUE(catalog
                  .DefineRenameView("HrView", "Employee",
                                    {{"pay_rate", "hourly_wage"}})
                  .ok());
  auto tdl = ExportTdl(catalog);
  ASSERT_TRUE(tdl.ok()) << tdl.status();
  EXPECT_NE(tdl->find("view HrView = rename Employee (pay_rate as "
                      "hourly_wage);"),
            std::string::npos);
  auto reloaded = LoadTdl(*tdl);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_TRUE(reloaded->schema().FindGenericFunction("get_hourly_wage").ok());
}

TEST(ExportTdlTest, BareSchemaWithSurrogatesRejected) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  ASSERT_TRUE(DeriveProjectionByName(fx->schema, "Employee",
                                     {"SSN", "date_of_birth", "pay_rate"},
                                     "EmployeeView")
                  .ok());
  // Without the catalog's view record, the surrogates are inexpressible.
  auto tdl = ExportTdl(fx->schema);
  ASSERT_FALSE(tdl.ok());
  EXPECT_EQ(tdl.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExportTdlTest, BespokeAccessorsRejected) {
  // Example 1's accessors (get_h2 declared on B, not on h2's owner H) cannot
  // be expressed by the `accessors;` directive.
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  auto tdl = ExportTdl(fx->schema);
  ASSERT_FALSE(tdl.ok());
  EXPECT_EQ(tdl.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExportTdlTest, PartialAccessorSetRejected) {
  auto s = Schema::Create();
  ASSERT_TRUE(s.ok());
  auto t = s->types().DeclareType("T", TypeKind::kUser);
  ASSERT_TRUE(t.ok());
  auto a = s->types().DeclareAttribute(*t, "x", s->builtins().int_type);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(GenerateReader(*s, *a).ok());  // reader only, no mutator
  auto tdl = ExportTdl(*s);
  ASSERT_FALSE(tdl.ok());
  EXPECT_EQ(tdl.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExportTdlTest, SchemaWithoutAccessorsOmitsDirective) {
  auto s = Schema::Create();
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s->types().DeclareType("T", TypeKind::kUser).ok());
  auto tdl = ExportTdl(*s);
  ASSERT_TRUE(tdl.ok()) << tdl.status();
  EXPECT_EQ(tdl->find("accessors;"), std::string::npos);
  EXPECT_NE(tdl->find("type T { }"), std::string::npos);
}

TEST(ExportTdlTest, ControlFlowAndLiteralsSurviveRoundTrip) {
  auto catalog = LoadTdl(R"(
    type T { x: Int; note: String; }
    accessors;
    method grade (t: T) -> Int {
      score: Int = 0;
      if (get_x(t) < 10) {
        score = get_x(t) * 2 + 1;
      } else {
        score = 0 - 1;
      }
      return score;
    }
    method tag (t: T) -> Bool {
      return get_note(t) == "a \"quoted\" note";
    }
  )");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  auto tdl = ExportTdl(catalog->schema());
  ASSERT_TRUE(tdl.ok()) << tdl.status();
  auto reloaded = LoadTdl(*tdl);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status() << "\n--- exported ---\n"
                             << *tdl;
  EXPECT_EQ(PrintAllMethods(reloaded->schema()),
            PrintAllMethods(catalog->schema()));
}

}  // namespace
}  // namespace tyder
