#include "mir/dataflow.h"

#include <gtest/gtest.h>

#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class DataflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1(/*with_z_methods=*/true);
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }

  Result<MethodId> AddProbe(std::vector<TypeId> params, ExprPtr body,
                            TypeId result = kInvalidType) {
    Schema& s = fx_.schema;
    static int counter = 0;
    std::string name = "df_probe" + std::to_string(counter++);
    TYDER_ASSIGN_OR_RETURN(
        GfId gf,
        s.DeclareGenericFunction(name, static_cast<int>(params.size())));
    Method m;
    m.label = Symbol::Intern(name);
    m.gf = gf;
    m.kind = MethodKind::kGeneral;
    m.sig.params = std::move(params);
    m.sig.result = result == kInvalidType ? s.builtins().void_type : result;
    m.body = std::move(body);
    return s.AddMethod(std::move(m));
  }

  testing::Example1Fixture fx_;
};

TEST_F(DataflowTest, DirectInitializationReachesLocal) {
  auto flow = AnalyzeFlow(fx_.schema, fx_.z1);
  ASSERT_TRUE(flow.ok());
  Symbol gv = Symbol::Intern("gv");
  ASSERT_TRUE(flow->var_reached_by.count(gv) > 0);
  EXPECT_EQ(flow->var_reached_by.at(gv), (std::set<int>{0}));
  EXPECT_EQ(flow->var_types.at(gv), fx_.g);
}

TEST_F(DataflowTest, ReturnReachedByParameter) {
  // z1 returns gv, which carries parameter 0.
  auto flow = AnalyzeFlow(fx_.schema, fx_.z1);
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(flow->return_reached_by, (std::set<int>{0}));
}

TEST_F(DataflowTest, TransitiveChainThroughLocals) {
  // v1: G = p0; v2: E = v1; v3: H = v2 — all reached by parameter 0.
  auto m = AddProbe(
      {fx_.c},
      mir::Seq({mir::Decl("v1", fx_.g, mir::Param(0)),
                mir::Decl("v2", fx_.g),
                mir::Assign("v2", mir::Var("v1")),
                mir::Decl("v3", fx_.g),
                mir::Assign("v3", mir::Var("v2"))}));
  ASSERT_TRUE(m.ok()) << m.status();
  auto flow = AnalyzeFlow(fx_.schema, *m);
  ASSERT_TRUE(flow.ok());
  for (const char* name : {"v1", "v2", "v3"}) {
    EXPECT_EQ(flow->var_reached_by.at(Symbol::Intern(name)),
              (std::set<int>{0}))
        << name;
  }
}

TEST_F(DataflowTest, UseBeforeDefChainStillConverges) {
  // Flow-insensitive: w = x; x = p0 still taints w.
  auto m = AddProbe({fx_.c},
                    mir::Seq({mir::Decl("w", fx_.g), mir::Decl("x", fx_.g),
                              mir::Assign("w", mir::Var("x")),
                              mir::Assign("x", mir::Param(0))}));
  ASSERT_TRUE(m.ok());
  auto flow = AnalyzeFlow(fx_.schema, *m);
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(flow->var_reached_by.at(Symbol::Intern("w")), (std::set<int>{0}));
}

TEST_F(DataflowTest, CallResultsDoNotCarryReachability) {
  GfId get_g1 = fx_.schema.method(fx_.get_g1).gf;
  auto m = AddProbe(
      {fx_.c},
      mir::Seq({mir::Decl("n", fx_.schema.builtins().int_type,
                          mir::Call(get_g1, {mir::Param(0)}))}));
  ASSERT_TRUE(m.ok());
  auto flow = AnalyzeFlow(fx_.schema, *m);
  ASSERT_TRUE(flow.ok());
  EXPECT_TRUE(flow->var_reached_by.at(Symbol::Intern("n")).empty());
}

TEST_F(DataflowTest, AccessorsHaveEmptyFlow) {
  auto flow = AnalyzeFlow(fx_.schema, fx_.get_a1);
  ASSERT_TRUE(flow.ok());
  EXPECT_TRUE(flow->var_reached_by.empty());
  EXPECT_TRUE(flow->return_reached_by.empty());
}

TEST_F(DataflowTest, TypesAssignedFromProducesPaperY) {
  // With X = {A, B, C, E, F, H} (the FactorState set for Π_{a2,e2,h2}A),
  // the z methods put G (z1) and D (z2) into Y.
  std::set<TypeId> x = {fx_.a, fx_.b, fx_.c, fx_.e, fx_.f, fx_.h};
  auto y = TypesAssignedFrom(fx_.schema, {fx_.z1, fx_.z2}, x);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, (std::set<TypeId>{fx_.g, fx_.d}));
}

TEST_F(DataflowTest, TypesAssignedFromIgnoresUnrelatedParams) {
  // A method whose parameter types are outside X contributes nothing.
  std::set<TypeId> x = {fx_.h};
  auto y = TypesAssignedFrom(fx_.schema, {fx_.z1, fx_.z2}, x);
  ASSERT_TRUE(y.ok());
  EXPECT_TRUE(y->empty());
}

TEST_F(DataflowTest, MultipleParametersTrackedSeparately) {
  auto m = AddProbe({fx_.a, fx_.b},
                    mir::Seq({mir::Decl("pa", fx_.c, mir::Param(0)),
                              mir::Decl("pb", fx_.e, mir::Param(1))}));
  ASSERT_TRUE(m.ok());
  auto flow = AnalyzeFlow(fx_.schema, *m);
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(flow->var_reached_by.at(Symbol::Intern("pa")), (std::set<int>{0}));
  EXPECT_EQ(flow->var_reached_by.at(Symbol::Intern("pb")), (std::set<int>{1}));
}

}  // namespace
}  // namespace tyder
