#include "mir/printer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class MirPrinterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1(/*with_z_methods=*/true);
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }
  testing::Example1Fixture fx_;
};

TEST_F(MirPrinterTest, GeneralMethodRendersSignatureAndBody) {
  std::string text = PrintMethod(fx_.schema, fx_.v1);
  EXPECT_EQ(text, "v1: v(A, C) -> Void = { u(pa); w(pc); }");
}

TEST_F(MirPrinterTest, AccessorRendersAttributeTag) {
  std::string text = PrintMethod(fx_.schema, fx_.get_h2);
  EXPECT_EQ(text, "get_h2: get_h2(B) -> Int [reader of h2]");
}

TEST_F(MirPrinterTest, DeclarationAssignmentAndReturnRender) {
  std::string text = PrintMethod(fx_.schema, fx_.z1);
  EXPECT_EQ(text,
            "z1: z(C) -> G = { gv: G; gv = pc; u(pc); return gv; }");
}

TEST_F(MirPrinterTest, PrintAllMethodsOnePerLine) {
  std::string all = PrintAllMethods(fx_.schema);
  EXPECT_NE(all.find("v1: v(A, C)"), std::string::npos);
  EXPECT_NE(all.find("y1: y(A, B)"), std::string::npos);
  // One line per method.
  size_t lines = std::count(all.begin(), all.end(), '\n');
  EXPECT_EQ(lines, fx_.schema.NumMethods());
}

TEST_F(MirPrinterTest, LiteralsAndOperatorsRender) {
  const Method& method = fx_.schema.method(fx_.z1);
  ExprPtr expr = mir::Seq({});
  (void)expr;
  EXPECT_EQ(PrintExpr(fx_.schema, method,
                      mir::BinOp(BinOpKind::kLe, mir::IntLit(3),
                                 mir::FloatLit(4.5))),
            "(3 <= 4.5)");
  EXPECT_EQ(PrintExpr(fx_.schema, method, mir::StringLit("hi")), "\"hi\"");
  EXPECT_EQ(PrintExpr(fx_.schema, method, mir::BoolLit(false)), "false");
}

}  // namespace
}  // namespace tyder
