#include "mir/type_check.h"

#include <gtest/gtest.h>

#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class TypeCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }

  // Registers a throwaway method with the given body and type-checks it.
  Result<TypeAnnotations> CheckBody(std::vector<TypeId> params, ExprPtr body,
                                    TypeId result = kInvalidType) {
    Schema& s = fx_.schema;
    static int counter = 0;
    std::string name = "tc_probe" + std::to_string(counter++);
    auto gf = s.DeclareGenericFunction(name, static_cast<int>(params.size()));
    if (!gf.ok()) return gf.status();
    Method m;
    m.label = Symbol::Intern(name);
    m.gf = *gf;
    m.kind = MethodKind::kGeneral;
    m.sig.params = std::move(params);
    m.sig.result = result == kInvalidType ? s.builtins().void_type : result;
    m.body = std::move(body);
    auto id = s.AddMethod(std::move(m));
    if (!id.ok()) return id.status();
    return TypeCheckMethod(s, *id);
  }

  testing::Example1Fixture fx_;
};

TEST_F(TypeCheckTest, WholeFixtureTypeChecks) {
  EXPECT_TRUE(TypeCheckSchema(fx_.schema).ok());
}

TEST_F(TypeCheckTest, UpcastAssignmentAllowed) {
  // g: G = c where C ≼ G (the paper's z1 pattern).
  auto r = CheckBody({fx_.c},
                     mir::Seq({mir::Decl("g", fx_.g, mir::Param(0))}));
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_F(TypeCheckTest, DowncastAssignmentRejected) {
  // a: A = c where C is a supertype of A: ill-typed.
  auto r = CheckBody({fx_.c},
                     mir::Seq({mir::Decl("a", fx_.a, mir::Param(0))}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(TypeCheckTest, AssignToUndeclaredLocalRejected) {
  auto r = CheckBody({fx_.c}, mir::Seq({mir::Assign("ghost", mir::Param(0))}));
  EXPECT_FALSE(r.ok());
}

TEST_F(TypeCheckTest, UseOfUndeclaredLocalRejected) {
  auto r = CheckBody({fx_.c}, mir::Seq({mir::Return(mir::Var("ghost"))}),
                     fx_.c);
  EXPECT_FALSE(r.ok());
}

TEST_F(TypeCheckTest, DoubleDeclarationRejected) {
  auto r = CheckBody(
      {fx_.c}, mir::Seq({mir::Decl("g", fx_.g), mir::Decl("g", fx_.e)}));
  EXPECT_FALSE(r.ok());
}

TEST_F(TypeCheckTest, ReturnSubtypeAllowed) {
  auto r = CheckBody({fx_.a}, mir::Seq({mir::Return(mir::Param(0))}), fx_.c);
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_F(TypeCheckTest, ReturnSupertypeRejected) {
  auto r = CheckBody({fx_.c}, mir::Seq({mir::Return(mir::Param(0))}), fx_.a);
  EXPECT_FALSE(r.ok());
}

TEST_F(TypeCheckTest, BareReturnOnlyInVoidMethods) {
  EXPECT_TRUE(CheckBody({fx_.a}, mir::Seq({mir::Return()})).ok());
  EXPECT_FALSE(CheckBody({fx_.a}, mir::Seq({mir::Return()}), fx_.a).ok());
}

TEST_F(TypeCheckTest, CallStaticTypeIsDispatchedResult) {
  // get_a1(a) has static type Int.
  GfId get_a1 = fx_.schema.method(fx_.get_a1).gf;
  auto r = CheckBody(
      {fx_.a},
      mir::Seq({mir::Decl("n", fx_.schema.builtins().int_type,
                          mir::Call(get_a1, {mir::Param(0)}))}));
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_F(TypeCheckTest, DynamicallyPlausibleCallAccepted) {
  // u(c): no statically applicable method (u's formals are subtypes of C)
  // but u1(A) is plausible at run time — accepted, per multi-method rules.
  auto u = fx_.schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  auto r = CheckBody({fx_.c},
                     mir::Seq({mir::ExprStmt(mir::Call(*u, {mir::Param(0)}))}));
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_F(TypeCheckTest, ImplausibleCallRejected) {
  // u(island): a fresh type unrelated to u's formals (A and B, every Fig. 3
  // type relates to those through the hierarchy) — no method could ever
  // apply, statically or dynamically.
  auto island = fx_.schema.types().DeclareType("Island", TypeKind::kUser);
  ASSERT_TRUE(island.ok());
  auto u = fx_.schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  auto r = CheckBody({*island},
                     mir::Seq({mir::ExprStmt(mir::Call(*u, {mir::Param(0)}))}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(TypeCheckTest, WrongCallArityRejected) {
  auto u = fx_.schema.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  auto r = CheckBody(
      {fx_.a}, mir::Seq({mir::ExprStmt(
                   mir::Call(*u, {mir::Param(0), mir::Param(0)}))}));
  EXPECT_FALSE(r.ok());
}

TEST_F(TypeCheckTest, ArithmeticTyping) {
  TypeId int_t = fx_.schema.builtins().int_type;
  auto ok = CheckBody(
      {fx_.a}, mir::Seq({mir::Decl("n", int_t,
                                   mir::BinOp(BinOpKind::kAdd, mir::IntLit(1),
                                              mir::IntLit(2)))}));
  EXPECT_TRUE(ok.ok()) << ok.status();
  // Int + Float widens to Float; storing in Int is a type error.
  auto widen = CheckBody(
      {fx_.a}, mir::Seq({mir::Decl("n", int_t,
                                   mir::BinOp(BinOpKind::kAdd, mir::IntLit(1),
                                              mir::FloatLit(2.5)))}));
  EXPECT_FALSE(widen.ok());
}

TEST_F(TypeCheckTest, ArithmeticOnObjectsRejected) {
  auto r = CheckBody(
      {fx_.a}, mir::Seq({mir::ExprStmt(mir::BinOp(
                   BinOpKind::kAdd, mir::Param(0), mir::IntLit(1)))}));
  EXPECT_FALSE(r.ok());
}

TEST_F(TypeCheckTest, IfConditionMustBeBool) {
  auto bad = CheckBody(
      {fx_.a}, mir::Seq({mir::If(mir::IntLit(1), mir::Seq({}))}));
  EXPECT_FALSE(bad.ok());
  auto good = CheckBody(
      {fx_.a}, mir::Seq({mir::If(mir::BoolLit(true), mir::Seq({}),
                                 mir::Seq({}))}));
  EXPECT_TRUE(good.ok()) << good.status();
}

TEST_F(TypeCheckTest, ComparisonYieldsBool) {
  TypeId bool_t = fx_.schema.builtins().bool_type;
  auto r = CheckBody(
      {fx_.a}, mir::Seq({mir::Decl("b", bool_t,
                                   mir::BinOp(BinOpKind::kLt, mir::IntLit(1),
                                              mir::IntLit(2)))}));
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_F(TypeCheckTest, AnnotationsCoverStatementsAsVoid) {
  auto r = CheckBody({fx_.a}, mir::Seq({mir::Return()}));
  ASSERT_TRUE(r.ok());
  // Every annotated statement is Void.
  for (const auto& [node, type] : *r) {
    if (IsStatement(node->kind)) {
      EXPECT_EQ(type, fx_.schema.builtins().void_type);
    }
  }
}

}  // namespace
}  // namespace tyder
