#include "mir/expr.h"

#include <gtest/gtest.h>

#include "mir/builder.h"

namespace tyder {
namespace {

TEST(ExprTest, BuildersProduceExpectedKinds) {
  EXPECT_EQ(mir::Param(0)->kind, ExprKind::kParamRef);
  EXPECT_EQ(mir::Var("x")->kind, ExprKind::kVarRef);
  EXPECT_EQ(mir::IntLit(1)->kind, ExprKind::kIntLit);
  EXPECT_EQ(mir::FloatLit(1.5)->kind, ExprKind::kFloatLit);
  EXPECT_EQ(mir::BoolLit(true)->kind, ExprKind::kBoolLit);
  EXPECT_EQ(mir::StringLit("s")->kind, ExprKind::kStringLit);
  EXPECT_EQ(mir::Call(0, {})->kind, ExprKind::kCall);
  EXPECT_EQ(mir::BinOp(BinOpKind::kAdd, mir::IntLit(1), mir::IntLit(2))->kind,
            ExprKind::kBinOp);
  EXPECT_EQ(mir::Seq({})->kind, ExprKind::kSeq);
  EXPECT_EQ(mir::Decl("v", 0)->kind, ExprKind::kDecl);
  EXPECT_EQ(mir::Assign("v", mir::IntLit(1))->kind, ExprKind::kAssign);
  EXPECT_EQ(mir::Return()->kind, ExprKind::kReturn);
  EXPECT_EQ(mir::If(mir::BoolLit(true), mir::Seq({}))->kind, ExprKind::kIf);
  EXPECT_EQ(mir::ExprStmt(mir::IntLit(1))->kind, ExprKind::kExprStmt);
}

TEST(ExprTest, IsStatementClassification) {
  EXPECT_TRUE(IsStatement(ExprKind::kSeq));
  EXPECT_TRUE(IsStatement(ExprKind::kDecl));
  EXPECT_TRUE(IsStatement(ExprKind::kReturn));
  EXPECT_FALSE(IsStatement(ExprKind::kCall));
  EXPECT_FALSE(IsStatement(ExprKind::kParamRef));
}

TEST(ExprTest, VisitPreorderVisitsEveryNode) {
  ExprPtr tree = mir::Seq({mir::ExprStmt(mir::Call(
      3, {mir::Param(0), mir::BinOp(BinOpKind::kAdd, mir::IntLit(1),
                                    mir::IntLit(2))}))});
  int count = 0;
  VisitPreorder(tree, [&count](const Expr&) { ++count; });
  EXPECT_EQ(count, 7);  // seq, stmt, call, param, binop, two int literals
}

TEST(ExprTest, RewriteBottomUpIdentityReturnsSameNodes) {
  ExprPtr tree = mir::Seq({mir::Decl("g", 7, mir::Param(0))});
  ExprPtr same = RewriteBottomUp(tree, [](const ExprPtr& n) { return n; });
  EXPECT_EQ(same, tree);  // shared, not copied
}

TEST(ExprTest, RewriteBottomUpReplacesTargetAndPreservesRest) {
  ExprPtr tree =
      mir::Seq({mir::Decl("g", 7, mir::Param(0)), mir::Return(mir::Var("g"))});
  ExprPtr rewritten = RewriteBottomUp(tree, [](const ExprPtr& n) -> ExprPtr {
    if (n->kind != ExprKind::kDecl) return n;
    auto copy = std::make_shared<Expr>(*n);
    copy->decl_type = 42;
    return copy;
  });
  ASSERT_NE(rewritten, tree);
  EXPECT_EQ(rewritten->children[0]->decl_type, 42u);
  // Untouched subtree is shared with the original.
  EXPECT_EQ(rewritten->children[1], tree->children[1]);
  // Original unchanged (immutability).
  EXPECT_EQ(tree->children[0]->decl_type, 7u);
}

TEST(ExprTest, BinOpNames) {
  EXPECT_STREQ(BinOpName(BinOpKind::kAdd), "+");
  EXPECT_STREQ(BinOpName(BinOpKind::kLe), "<=");
  EXPECT_STREQ(BinOpName(BinOpKind::kAnd), "and");
}

}  // namespace
}  // namespace tyder
