#include "mir/call_graph.h"

#include <gtest/gtest.h>

#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class CallGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildExample1();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }
  testing::Example1Fixture fx_;
};

TEST_F(CallGraphTest, SingleRelevantCallWithOneRelatedArg) {
  // w2(C) = {u(c)} — one call, the sole argument is source-related for A.
  auto calls = ExtractRelevantCalls(fx_.schema, fx_.w2, fx_.a);
  ASSERT_TRUE(calls.ok()) << calls.status();
  ASSERT_EQ(calls->size(), 1u);
  const RelevantCall& call = (*calls)[0];
  EXPECT_EQ(fx_.schema.gf(call.gf).name.view(), "u");
  EXPECT_EQ(call.arg_static_types, (std::vector<TypeId>{fx_.c}));
  EXPECT_EQ(call.arg_source_related, (std::vector<bool>{true}));
  EXPECT_EQ(call.NumSourceRelated(), 1u);
}

TEST_F(CallGraphTest, CallsAppearInBodyOrder) {
  // v1(A, C) = {u(a); w(c)}.
  auto calls = ExtractRelevantCalls(fx_.schema, fx_.v1, fx_.a);
  ASSERT_TRUE(calls.ok());
  ASSERT_EQ(calls->size(), 2u);
  EXPECT_EQ(fx_.schema.gf((*calls)[0].gf).name.view(), "u");
  EXPECT_EQ(fx_.schema.gf((*calls)[1].gf).name.view(), "w");
}

TEST_F(CallGraphTest, MultipleRelatedArgsDetected) {
  // x1(A, B) = {y(a, b); v(b, a)}: both args of both calls relate to A.
  auto calls = ExtractRelevantCalls(fx_.schema, fx_.x1, fx_.a);
  ASSERT_TRUE(calls.ok());
  ASSERT_EQ(calls->size(), 2u);
  EXPECT_EQ((*calls)[0].NumSourceRelated(), 2u);
  EXPECT_EQ((*calls)[1].NumSourceRelated(), 2u);
  // v(b, a): static types are (B, A).
  EXPECT_EQ((*calls)[1].arg_static_types, (std::vector<TypeId>{fx_.b, fx_.a}));
}

TEST_F(CallGraphTest, UnrelatedSourceYieldsNoRelevantCalls) {
  // For source H, w2's u(c) argument types don't relate (H is not ≼ C).
  auto calls = ExtractRelevantCalls(fx_.schema, fx_.w2, fx_.h);
  ASSERT_TRUE(calls.ok());
  EXPECT_TRUE(calls->empty());
}

TEST_F(CallGraphTest, AccessorsHaveNoCalls) {
  auto calls = ExtractRelevantCalls(fx_.schema, fx_.get_a1, fx_.a);
  ASSERT_TRUE(calls.ok());
  EXPECT_TRUE(calls->empty());
}

TEST_F(CallGraphTest, AccessorCallsInsideBodiesAreRelevantCalls) {
  // u3(B) = {get_h2(b)}: the accessor call itself is a relevant generic
  // function call for source A.
  auto calls = ExtractRelevantCalls(fx_.schema, fx_.u3, fx_.a);
  ASSERT_TRUE(calls.ok());
  ASSERT_EQ(calls->size(), 1u);
  EXPECT_EQ(fx_.schema.gf((*calls)[0].gf).name.view(), "get_h2");
}

TEST_F(CallGraphTest, CalledGenericFunctionsDeduplicated) {
  std::vector<GfId> gfs = CalledGenericFunctions(fx_.schema.method(fx_.x1));
  EXPECT_EQ(gfs.size(), 2u);  // y and v
}

TEST_F(CallGraphTest, SourceRelationRequiresParameterFlowNotJustType) {
  // Build a probe where an argument has a related static type but the value
  // comes from a call result, not a parameter: the arg must not be
  // source-related.
  Schema& s = fx_.schema;
  auto w = s.FindGenericFunction("w");
  ASSERT_TRUE(w.ok());
  // probe(a: A) = { w(a); } but with the argument routed through an accessor
  // result typed Int — instead use a local declared C assigned from param:
  // the local *is* parameter-reached, so it IS related; contrast with a
  // literal argument in a second probe below.
  auto u = s.FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  (void)u;
  auto gf = s.DeclareGenericFunction("probe_gf", 1);
  ASSERT_TRUE(gf.ok());
  Method m;
  m.label = Symbol::Intern("probe_unrelated_arg");
  m.gf = *gf;
  m.kind = MethodKind::kGeneral;
  m.sig = Signature{{fx_.a}, s.builtins().void_type};
  // Body: w2-style call where the argument is a fresh local NOT initialized
  // from the parameter — no flow, so not source-related.
  m.body = mir::Seq({mir::Decl("loose", fx_.c),
                     mir::ExprStmt(mir::Call(*w, {mir::Var("loose")}))});
  auto id = s.AddMethod(std::move(m));
  ASSERT_TRUE(id.ok()) << id.status();
  auto calls = ExtractRelevantCalls(s, *id, fx_.a);
  ASSERT_TRUE(calls.ok()) << calls.status();
  EXPECT_TRUE(calls->empty());
}

}  // namespace
}  // namespace tyder
