#include "objmodel/schema_printer.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace tyder {
namespace {

TEST(SchemaPrinterTest, PrintsPersonEmployeeHierarchy) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  std::string text = PrintHierarchy(fx->schema.types());
  EXPECT_EQ(text,
            "Person {SSN: String, name: String, date_of_birth: Date}\n"
            "Employee {pay_rate: Float, hrs_worked: Float} <- Person(0)\n");
}

TEST(SchemaPrinterTest, BuiltinsHiddenByDefault) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  std::string text = PrintHierarchy(fx->schema.types());
  EXPECT_EQ(text.find("Object"), std::string::npos);
  PrintOptions opts;
  opts.include_builtins = true;
  std::string with = PrintHierarchy(fx->schema.types(), opts);
  EXPECT_NE(with.find("Object"), std::string::npos);
}

TEST(SchemaPrinterTest, CumulativeOptionListsInheritedAttrs) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  PrintOptions opts;
  opts.show_cumulative = true;
  std::string line = PrintType(fx->schema.types(), fx->employee, opts);
  EXPECT_NE(line.find("SSN"), std::string::npos);
  EXPECT_NE(line.find("pay_rate"), std::string::npos);
}

TEST(SchemaPrinterTest, DotOutputHasEdgesAndShapes) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  std::string dot = ToDot(fx->schema.types());
  EXPECT_NE(dot.find("digraph types"), std::string::npos);
  EXPECT_NE(dot.find("\"Employee\" -> \"Person\" [label=\"0\"]"),
            std::string::npos);
}

TEST(SchemaPrinterTest, SurrogateMarkedInTextAndDashedInDot) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  auto s = fx->schema.types().DeclareSurrogate("~Person", fx->person);
  ASSERT_TRUE(s.ok());
  fx->schema.types().mutable_type(fx->person).PrependSupertype(*s);
  EXPECT_NE(PrintHierarchy(fx->schema.types()).find("[surrogate of Person]"),
            std::string::npos);
  EXPECT_NE(ToDot(fx->schema.types()).find("style=dashed"), std::string::npos);
}

TEST(SchemaPrinterTest, PrecedenceAnnotationsFollowListOrder) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok()) << fx.status();
  std::string line = PrintType(fx->schema.types(), fx->a);
  // A's direct supertypes: C at precedence 0, B at precedence 1 (original
  // hierarchy, before any surrogate).
  EXPECT_EQ(line, "A {a1: Int, a2: Int} <- C(0), B(1)");
}

}  // namespace
}  // namespace tyder
