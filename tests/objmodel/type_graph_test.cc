#include "objmodel/type_graph.h"

#include <gtest/gtest.h>

#include "objmodel/builtin_types.h"

namespace tyder {
namespace {

class TypeGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto b = InstallBuiltins(graph_);
    ASSERT_TRUE(b.ok()) << b.status();
    builtins_ = *b;
  }

  TypeId Declare(std::string_view name) {
    auto r = graph_.DeclareType(name, TypeKind::kUser);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  }

  TypeGraph graph_;
  BuiltinTypes builtins_;
};

TEST_F(TypeGraphTest, BuiltinsInstalled) {
  EXPECT_TRUE(graph_.FindType("Object").ok());
  EXPECT_TRUE(graph_.FindType("Int").ok());
  EXPECT_TRUE(graph_.IsSubtype(builtins_.int_type, builtins_.object));
  EXPECT_FALSE(graph_.IsSubtype(builtins_.object, builtins_.int_type));
  EXPECT_TRUE(IsValueType(builtins_, builtins_.string_type));
  EXPECT_FALSE(IsValueType(builtins_, builtins_.object));
}

TEST_F(TypeGraphTest, BuiltinsRequireEmptyGraph) {
  TypeGraph g;
  ASSERT_TRUE(InstallBuiltins(g).ok());
  EXPECT_FALSE(InstallBuiltins(g).ok());
}

TEST_F(TypeGraphTest, DuplicateTypeNameRejected) {
  Declare("Person");
  auto dup = graph_.DeclareType("Person", TypeKind::kUser);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(TypeGraphTest, EmptyTypeNameRejected) {
  EXPECT_FALSE(graph_.DeclareType("", TypeKind::kUser).ok());
}

TEST_F(TypeGraphTest, SubtypeIsReflexiveAndTransitive) {
  TypeId person = Declare("Person");
  TypeId employee = Declare("Employee");
  TypeId manager = Declare("Manager");
  ASSERT_TRUE(graph_.AddSupertype(employee, person).ok());
  ASSERT_TRUE(graph_.AddSupertype(manager, employee).ok());
  EXPECT_TRUE(graph_.IsSubtype(person, person));
  EXPECT_TRUE(graph_.IsSubtype(manager, person));
  EXPECT_FALSE(graph_.IsSubtype(person, manager));
  EXPECT_TRUE(graph_.IsProperSubtype(manager, person));
  EXPECT_FALSE(graph_.IsProperSubtype(person, person));
}

TEST_F(TypeGraphTest, CycleRejected) {
  TypeId a = Declare("A");
  TypeId b = Declare("B");
  ASSERT_TRUE(graph_.AddSupertype(a, b).ok());
  Status cyc = graph_.AddSupertype(b, a);
  EXPECT_EQ(cyc.code(), StatusCode::kFailedPrecondition);
  Status self = graph_.AddSupertype(a, a);
  EXPECT_EQ(self.code(), StatusCode::kInvalidArgument);
}

TEST_F(TypeGraphTest, DuplicateEdgeRejected) {
  TypeId a = Declare("A");
  TypeId b = Declare("B");
  ASSERT_TRUE(graph_.AddSupertype(a, b).ok());
  EXPECT_EQ(graph_.AddSupertype(a, b).code(), StatusCode::kAlreadyExists);
}

TEST_F(TypeGraphTest, SupertypePrecedenceOrderIsDeclarationOrder) {
  TypeId a = Declare("A");
  TypeId b = Declare("B");
  TypeId c = Declare("C");
  ASSERT_TRUE(graph_.AddSupertype(a, c).ok());
  ASSERT_TRUE(graph_.AddSupertype(a, b).ok());
  EXPECT_EQ(graph_.type(a).supertypes(), (std::vector<TypeId>{c, b}));
}

TEST_F(TypeGraphTest, GloballyUniqueAttributeNames) {
  TypeId a = Declare("A");
  TypeId b = Declare("B");
  ASSERT_TRUE(graph_.DeclareAttribute(a, "x", builtins_.int_type).ok());
  auto dup = graph_.DeclareAttribute(b, "x", builtins_.int_type);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(TypeGraphTest, CumulativeAttributesInheritOnceThroughDiamond) {
  // D <- B <- A, D <- C <- A (diamond): A sees D's attribute exactly once.
  TypeId d = Declare("D");
  TypeId b = Declare("B");
  TypeId c = Declare("C");
  TypeId a = Declare("A");
  ASSERT_TRUE(graph_.AddSupertype(b, d).ok());
  ASSERT_TRUE(graph_.AddSupertype(c, d).ok());
  ASSERT_TRUE(graph_.AddSupertype(a, b).ok());
  ASSERT_TRUE(graph_.AddSupertype(a, c).ok());
  auto dx = graph_.DeclareAttribute(d, "dx", builtins_.int_type);
  ASSERT_TRUE(dx.ok());
  std::vector<AttrId> cumulative = graph_.CumulativeAttributes(a);
  EXPECT_EQ(cumulative, (std::vector<AttrId>{*dx}));
}

TEST_F(TypeGraphTest, CumulativeAttributesIncludeLocalAndInherited) {
  TypeId person = Declare("Person");
  TypeId employee = Declare("Employee");
  ASSERT_TRUE(graph_.AddSupertype(employee, person).ok());
  auto ssn = graph_.DeclareAttribute(person, "SSN", builtins_.string_type);
  auto pay = graph_.DeclareAttribute(employee, "pay", builtins_.float_type);
  ASSERT_TRUE(ssn.ok());
  ASSERT_TRUE(pay.ok());
  std::vector<AttrId> cumulative = graph_.CumulativeAttributes(employee);
  EXPECT_EQ(cumulative.size(), 2u);
  EXPECT_TRUE(graph_.AttributeAvailableAt(employee, *ssn));
  EXPECT_TRUE(graph_.AttributeAvailableAt(employee, *pay));
  EXPECT_FALSE(graph_.AttributeAvailableAt(person, *pay));
}

TEST_F(TypeGraphTest, MoveAttributeRehomes) {
  TypeId a = Declare("A");
  TypeId b = Declare("B");
  auto x = graph_.DeclareAttribute(a, "x", builtins_.int_type);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(graph_.MoveAttribute(*x, b).ok());
  EXPECT_EQ(graph_.attribute(*x).owner, b);
  EXPECT_TRUE(graph_.type(a).local_attributes().empty());
  EXPECT_EQ(graph_.type(b).local_attributes().size(), 1u);
  EXPECT_TRUE(graph_.Validate().ok());
}

TEST_F(TypeGraphTest, SurrogateRemembersSource) {
  TypeId a = Declare("A");
  auto s = graph_.DeclareSurrogate("~A", a);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(graph_.type(*s).surrogate_source(), a);
  EXPECT_TRUE(graph_.type(*s).is_surrogate());
}

TEST_F(TypeGraphTest, SubtypeClosureFindsAllSubtypes) {
  TypeId person = Declare("Person");
  TypeId employee = Declare("Employee");
  TypeId manager = Declare("Manager");
  ASSERT_TRUE(graph_.AddSupertype(employee, person).ok());
  ASSERT_TRUE(graph_.AddSupertype(manager, employee).ok());
  std::vector<TypeId> subs = graph_.SubtypeClosure(person);
  EXPECT_EQ(subs.size(), 3u);
}

TEST_F(TypeGraphTest, SupertypeClosureStartsAtSelf) {
  TypeId person = Declare("Person");
  TypeId employee = Declare("Employee");
  ASSERT_TRUE(graph_.AddSupertype(employee, person).ok());
  std::vector<TypeId> closure = graph_.SupertypeClosure(employee);
  ASSERT_EQ(closure.size(), 2u);
  EXPECT_EQ(closure[0], employee);
  EXPECT_EQ(closure[1], person);
}

TEST_F(TypeGraphTest, ValidatePassesOnWellFormedGraph) {
  Declare("A");
  EXPECT_TRUE(graph_.Validate().ok());
}

TEST_F(TypeGraphTest, FindTypeReportsNotFound) {
  EXPECT_EQ(graph_.FindType("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(graph_.FindAttribute("nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace tyder
