#include "objmodel/hierarchy_analysis.h"

#include <gtest/gtest.h>

#include "core/projection.h"
#include "testing/fixtures.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

TEST(HierarchyAnalysisTest, PersonEmployeeStats) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok()) << fx.status();
  HierarchyStats stats = AnalyzeHierarchy(fx->schema.types());
  EXPECT_EQ(stats.user_types, 2u);
  EXPECT_EQ(stats.builtin_types, 7u);
  EXPECT_EQ(stats.surrogate_types, 0u);
  EXPECT_EQ(stats.detached_types, 0u);
  // Person and Employee contribute one edge; the five value types hang off
  // Object.
  EXPECT_EQ(stats.edges, 6u);
  EXPECT_EQ(stats.roots, 3u);  // Object, Void, Person
  EXPECT_EQ(stats.max_depth, 1u);  // one edge: Employee->Person, Int->Object
  EXPECT_EQ(stats.diamond_types, 0u);
  EXPECT_EQ(stats.attributes, 5u);
}

TEST(HierarchyAnalysisTest, Figure3DiamondsDetected) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  HierarchyStats stats = AnalyzeHierarchy(fx->schema.types());
  // C (paths to H via F and E) and A (paths to E via C and B) sit on
  // diamonds; B's supers D and E share no ancestor.
  EXPECT_EQ(stats.diamond_types, 2u);
  EXPECT_EQ(stats.max_depth, 3u);  // A -> C -> E -> G/H (3 edges)
  EXPECT_EQ(stats.max_fan_in, 2u);
}

TEST(HierarchyAnalysisTest, DerivationGrowsSurrogateCountOnly) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  HierarchyStats before = AnalyzeHierarchy(fx->schema.types());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());
  HierarchyStats after = AnalyzeHierarchy(fx->schema.types());
  EXPECT_EQ(after.user_types, before.user_types);
  EXPECT_EQ(after.surrogate_types, 6u);
  EXPECT_EQ(after.attributes, before.attributes);
  EXPECT_GT(after.edges, before.edges);
}

TEST(HierarchyAnalysisTest, C3HoldsOnPaperSchemasBeforeAndAfterFactoring) {
  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  ASSERT_TRUE(fx.ok());
  EXPECT_TRUE(TypesWithoutC3Order(fx->schema.types()).empty());
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ASSERT_TRUE(DeriveProjection(fx->schema, spec).ok());
  // The factored-and-augmented hierarchy (Figure 5) remains C3-orderable:
  // surrogate insertion preserves linearizability here.
  EXPECT_TRUE(TypesWithoutC3Order(fx->schema.types()).empty());
}

TEST(HierarchyAnalysisTest, C3HoldsAcrossRandomDerivations) {
  for (uint32_t seed : {3u, 7u, 11u}) {
    testing::RandomSchemaOptions options;
    options.seed = seed;
    options.num_types = 15;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok());
    // Random hierarchies draw supertype sets without curating precedence
    // consistency, so C3 may already reject some types — record the baseline
    // and require that derivation does not make it worse.
    size_t baseline = TypesWithoutC3Order(schema->types()).size();
    TypeId source = kInvalidType;
    std::vector<AttrId> attrs;
    ASSERT_TRUE(
        testing::PickRandomProjection(*schema, seed, &source, &attrs));
    ProjectionSpec spec;
    spec.source = source;
    spec.attributes = attrs;
    spec.view_name = "V";
    ASSERT_TRUE(DeriveProjection(*schema, spec).ok());
    EXPECT_LE(TypesWithoutC3Order(schema->types()).size(), baseline * 2 + 2)
        << "seed " << seed;
  }
}

TEST(HierarchyAnalysisTest, StatsRenderHumanReadably) {
  auto fx = testing::BuildPersonEmployee();
  ASSERT_TRUE(fx.ok());
  std::string text = HierarchyStatsToString(AnalyzeHierarchy(fx->schema.types()));
  EXPECT_NE(text.find("2 user"), std::string::npos);
  EXPECT_NE(text.find("max depth: 1"), std::string::npos);
}

}  // namespace
}  // namespace tyder
