#include <gtest/gtest.h>

#include "objmodel/type_graph.h"
#include "testing/random_schema.h"

namespace tyder {
namespace {

TEST(SubtypeCacheTest, CachedMatchesUncachedOnRandomSchemas) {
  for (uint32_t seed : {1u, 2u, 3u, 4u, 5u}) {
    testing::RandomSchemaOptions options;
    options.seed = seed;
    options.num_types = 20;
    auto schema = testing::GenerateRandomSchema(options);
    ASSERT_TRUE(schema.ok());
    TypeGraph& g = schema->types();
    size_t n = g.NumTypes();
    std::vector<std::vector<bool>> cached(n, std::vector<bool>(n));
    for (TypeId a = 0; a < n; ++a) {
      for (TypeId b = 0; b < n; ++b) cached[a][b] = g.IsSubtype(a, b);
    }
    g.set_subtype_cache_enabled(false);
    for (TypeId a = 0; a < n; ++a) {
      for (TypeId b = 0; b < n; ++b) {
        EXPECT_EQ(g.IsSubtype(a, b), cached[a][b]) << a << " vs " << b;
      }
    }
    g.set_subtype_cache_enabled(true);
  }
}

TEST(SubtypeCacheTest, AddSupertypeInvalidates) {
  TypeGraph g;
  auto a = g.DeclareType("A", TypeKind::kUser);
  auto b = g.DeclareType("B", TypeKind::kUser);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(g.IsSubtype(*a, *b));  // warms the cache
  ASSERT_TRUE(g.AddSupertype(*a, *b).ok());
  EXPECT_TRUE(g.IsSubtype(*a, *b));
}

TEST(SubtypeCacheTest, MutableAccessInvalidates) {
  TypeGraph g;
  auto a = g.DeclareType("A", TypeKind::kUser);
  auto b = g.DeclareType("B", TypeKind::kUser);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(g.IsSubtype(*a, *b));  // warms the cache
  // Edge added behind TypeGraph's back through the mutable handle (this is
  // what FactorState's PrependSupertype does).
  g.mutable_type(*a).PrependSupertype(*b);
  EXPECT_TRUE(g.IsSubtype(*a, *b));
}

TEST(SubtypeCacheTest, NewTypeInvalidates) {
  TypeGraph g;
  auto a = g.DeclareType("A", TypeKind::kUser);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(g.IsSubtype(*a, *a));  // warms a row of width 1
  auto b = g.DeclareType("B", TypeKind::kUser);
  ASSERT_TRUE(b.ok());
  // The row for A must have been re-sized; querying B is in range.
  EXPECT_FALSE(g.IsSubtype(*a, *b));
  EXPECT_TRUE(g.IsSubtype(*b, *b));
}

TEST(SubtypeCacheTest, CopiedGraphHasIndependentCache) {
  TypeGraph g;
  auto a = g.DeclareType("A", TypeKind::kUser);
  auto b = g.DeclareType("B", TypeKind::kUser);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(g.IsSubtype(*a, *b));
  TypeGraph copy = g;
  ASSERT_TRUE(copy.AddSupertype(*a, *b).ok());
  EXPECT_TRUE(copy.IsSubtype(*a, *b));
  EXPECT_FALSE(g.IsSubtype(*a, *b));  // original unaffected
}

}  // namespace
}  // namespace tyder
