#include "instances/store_serialize.h"

#include <gtest/gtest.h>

#include "catalog/serialize.h"
#include "core/projection.h"
#include "instances/interp.h"
#include "instances/view_materialize.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class StoreSerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    auto obj = store_.CreateObject(fx_.schema, fx_.employee);
    ASSERT_TRUE(obj.ok());
    emp_ = *obj;
    ASSERT_TRUE(store_.SetSlot(emp_, fx_.ssn, Value::String("a \"b\"\nc")).ok());
    ASSERT_TRUE(store_.SetSlot(emp_, fx_.date_of_birth, Value::Int(1975)).ok());
    ASSERT_TRUE(store_.SetSlot(emp_, fx_.pay_rate, Value::Float(0.1)).ok());
    ASSERT_TRUE(store_.SetSlot(emp_, fx_.hrs_worked, Value::Float(37.5)).ok());
  }

  testing::PersonEmployeeFixture fx_;
  ObjectStore store_;
  ObjectId emp_ = kInvalidObject;
};

TEST_F(StoreSerializeTest, RoundTripPreservesSlotsExactly) {
  std::string text = SerializeStore(fx_.schema, store_);
  auto restored = DeserializeStore(fx_.schema, text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->NumObjects(), store_.NumObjects());
  for (AttrId a : {fx_.ssn, fx_.date_of_birth, fx_.pay_rate, fx_.hrs_worked}) {
    EXPECT_EQ(*restored->GetSlot(emp_, a), *store_.GetSlot(emp_, a));
  }
  // Floats round-trip bit-exactly (hexfloat encoding).
  EXPECT_EQ(restored->GetSlot(emp_, fx_.pay_rate)->AsFloat(), 0.1);
  // Stable re-serialization.
  EXPECT_EQ(SerializeStore(fx_.schema, *restored), text);
}

TEST_F(StoreSerializeTest, RestoredObjectsRunMethods) {
  auto restored = DeserializeStore(fx_.schema,
                                   SerializeStore(fx_.schema, store_));
  ASSERT_TRUE(restored.ok());
  Interpreter interp(fx_.schema, &*restored);
  auto income = interp.CallByName("income", {Value::Object(emp_)});
  ASSERT_TRUE(income.ok()) << income.status();
  EXPECT_EQ(income->AsFloat(), 0.1 * 37.5);
}

TEST_F(StoreSerializeTest, DelegatingViewsKeepBaseLinks) {
  auto derivation = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(derivation.ok());
  auto views = MaterializeProjectionPreserving(fx_.schema, store_,
                                               derivation->derived);
  ASSERT_TRUE(views.ok());
  std::string text = SerializeStore(fx_.schema, store_);
  EXPECT_NE(text.find("base=" + std::to_string(emp_)), std::string::npos);
  auto restored = DeserializeStore(fx_.schema, text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The restored view still delegates: update the base, read via the view.
  ASSERT_TRUE(
      restored->SetSlot(emp_, fx_.pay_rate, Value::Float(111)).ok());
  EXPECT_EQ(*restored->GetSlot(views->front(), fx_.pay_rate),
            Value::Float(111));
}

TEST_F(StoreSerializeTest, WorksAgainstReloadedSchema) {
  // Schema and store each round-tripped through their own serializer: the
  // restored pair is fully operational.
  auto schema = DeserializeSchema(SerializeSchema(fx_.schema));
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto restored =
      DeserializeStore(*schema, SerializeStore(fx_.schema, store_));
  ASSERT_TRUE(restored.ok()) << restored.status();
  Interpreter interp(*schema, &*restored);
  auto income = interp.CallByName("income", {Value::Object(emp_)});
  ASSERT_TRUE(income.ok()) << income.status();
  EXPECT_EQ(income->AsFloat(), 0.1 * 37.5);
}

TEST_F(StoreSerializeTest, MalformedInputsRejected) {
  EXPECT_FALSE(DeserializeStore(fx_.schema, "nope").ok());
  EXPECT_FALSE(
      DeserializeStore(fx_.schema, "tyder-store v1\nobj Ghost\n").ok());
  EXPECT_FALSE(
      DeserializeStore(fx_.schema,
                       "tyder-store v1\nobj Employee\nslot 5 SSN s:\"x\"\n")
          .ok());
  EXPECT_FALSE(
      DeserializeStore(fx_.schema,
                       "tyder-store v1\nobj Employee\nslot 0 ghost i:1\n")
          .ok());
  EXPECT_FALSE(
      DeserializeStore(fx_.schema,
                       "tyder-store v1\nobj Employee\nslot 0 SSN x:1\n")
          .ok());
  EXPECT_FALSE(
      DeserializeStore(fx_.schema, "tyder-store v1\nbogus\n").ok());
}

TEST_F(StoreSerializeTest, EmptyStoreRoundTrips) {
  ObjectStore empty;
  auto restored =
      DeserializeStore(fx_.schema, SerializeStore(fx_.schema, empty));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumObjects(), 0u);
}

}  // namespace
}  // namespace tyder
