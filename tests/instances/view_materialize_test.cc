#include "instances/view_materialize.h"

#include <gtest/gtest.h>

#include "core/algebra.h"
#include "core/projection.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class MaterializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    for (int i = 0; i < 3; ++i) {
      auto obj = store_.CreateObject(fx_.schema, fx_.employee);
      ASSERT_TRUE(obj.ok());
      ASSERT_TRUE(store_
                      .SetSlot(*obj, fx_.pay_rate,
                               Value::Float(40.0 + 10.0 * i))
                      .ok());
      ASSERT_TRUE(store_.SetSlot(*obj, fx_.ssn,
                                 Value::String("E" + std::to_string(i)))
                      .ok());
      employees_.push_back(*obj);
    }
  }

  testing::PersonEmployeeFixture fx_;
  ObjectStore store_;
  std::vector<ObjectId> employees_;
};

TEST_F(MaterializeTest, ProjectionViewCopiesProjectedSlots) {
  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok()) << result.status();
  auto views = MaterializeProjection(fx_.schema, store_, result->derived);
  ASSERT_TRUE(views.ok()) << views.status();
  ASSERT_EQ(views->size(), 3u);
  for (size_t i = 0; i < views->size(); ++i) {
    const Object& view = store_.object((*views)[i]);
    EXPECT_EQ(view.type, result->derived);
    EXPECT_EQ(view.slots.size(), 3u);  // only projected state
    EXPECT_EQ(*store_.GetSlot((*views)[i], fx_.ssn),
              Value::String("E" + std::to_string(i)));
    EXPECT_EQ(*store_.GetSlot((*views)[i], fx_.pay_rate),
              Value::Float(40.0 + 10.0 * i));
    EXPECT_FALSE(store_.GetSlot((*views)[i], fx_.hrs_worked).ok());
  }
}

TEST_F(MaterializeTest, ViewInstancesAnswerApplicableMethods) {
  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok());
  auto views = MaterializeProjection(fx_.schema, store_, result->derived);
  ASSERT_TRUE(views.ok());
  Interpreter interp(fx_.schema, &store_);
  // age applies to the view instance (dob defaulted to 0 here).
  auto age = interp.CallByName("age", {Value::Object(views->front())});
  ASSERT_TRUE(age.ok()) << age.status();
  EXPECT_EQ(*age, Value::Int(2026));
  // income does not (hrs_worked was projected away).
  EXPECT_FALSE(
      interp.CallByName("income", {Value::Object(views->front())}).ok());
}

TEST_F(MaterializeTest, PreservingViewsShareStateWithSources) {
  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok()) << result.status();
  auto views =
      MaterializeProjectionPreserving(fx_.schema, store_, result->derived);
  ASSERT_TRUE(views.ok()) << views.status();
  ASSERT_EQ(views->size(), 3u);
  ObjectId view = views->front();
  ObjectId source = employees_.front();
  // Read through the view sees the source's current value.
  EXPECT_EQ(*store_.GetSlot(view, fx_.pay_rate), Value::Float(40.0));
  // Update the source: the view sees it (no staleness).
  ASSERT_TRUE(store_.SetSlot(source, fx_.pay_rate, Value::Float(77)).ok());
  EXPECT_EQ(*store_.GetSlot(view, fx_.pay_rate), Value::Float(77));
  // Update *through* the view: the source sees it (updatable view).
  Interpreter interp(fx_.schema, &store_);
  ASSERT_TRUE(interp
                  .CallByName("set_pay_rate",
                              {Value::Object(view), Value::Float(88)})
                  .ok());
  EXPECT_EQ(*store_.GetSlot(source, fx_.pay_rate), Value::Float(88));
}

TEST_F(MaterializeTest, PreservingViewInterfaceStillRestricted) {
  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok());
  auto views =
      MaterializeProjectionPreserving(fx_.schema, store_, result->derived);
  ASSERT_TRUE(views.ok());
  Interpreter interp(fx_.schema, &store_);
  // Even though the base object physically has hrs_worked, the view type's
  // method set does not expose it: income does not dispatch on the view.
  EXPECT_FALSE(
      interp.CallByName("income", {Value::Object(views->front())}).ok());
  EXPECT_FALSE(
      interp.CallByName("get_hrs_worked", {Value::Object(views->front())})
          .ok());
  // age still works, reading through the delegation chain.
  EXPECT_TRUE(
      interp.CallByName("age", {Value::Object(views->front())}).ok());
}

TEST_F(MaterializeTest, DelegatingObjectRequiresResolvableState) {
  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok());
  // A Person instance cannot back an EmployeeView (no pay_rate slot).
  auto person = store_.CreateObject(fx_.schema, fx_.person);
  ASSERT_TRUE(person.ok());
  EXPECT_FALSE(
      store_.CreateDelegatingObject(fx_.schema, result->derived, *person)
          .ok());
}

TEST_F(MaterializeTest, RefreshResyncsGeneratedViews) {
  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok());
  auto sources = store_.Extent(fx_.schema,
                               fx_.schema.types()
                                   .type(result->derived)
                                   .surrogate_source());
  auto views = MaterializeProjection(fx_.schema, store_, result->derived);
  ASSERT_TRUE(views.ok());
  // Source changes are invisible to the copies...
  ASSERT_TRUE(store_.SetSlot(employees_[0], fx_.pay_rate, Value::Float(99))
                  .ok());
  EXPECT_EQ(*store_.GetSlot(views->front(), fx_.pay_rate), Value::Float(40));
  // ...until refreshed.
  ASSERT_TRUE(RefreshProjection(fx_.schema, store_, result->derived, sources,
                                *views)
                  .ok());
  EXPECT_EQ(*store_.GetSlot(views->front(), fx_.pay_rate), Value::Float(99));
}

TEST_F(MaterializeTest, RefreshValidatesShapes) {
  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok());
  auto views = MaterializeProjection(fx_.schema, store_, result->derived);
  ASSERT_TRUE(views.ok());
  // Mismatched lengths.
  EXPECT_FALSE(RefreshProjection(fx_.schema, store_, result->derived,
                                 {employees_[0]}, *views)
                   .ok());
  // A non-view object in the views list.
  EXPECT_FALSE(RefreshProjection(fx_.schema, store_, result->derived,
                                 {employees_[0]}, {employees_[1]})
                   .ok());
}

TEST_F(MaterializeTest, MaterializeRejectsNonDerivedTarget) {
  EXPECT_FALSE(MaterializeProjection(fx_.schema, store_, fx_.person).ok());
}

TEST_F(MaterializeTest, SelectionViewFiltersByPredicate) {
  auto view = DeriveSelection(fx_.schema, fx_.employee, "WellPaid");
  ASSERT_TRUE(view.ok()) << view.status();
  auto selected = MaterializeSelection(
      fx_.schema, store_, *view, fx_.employee, [&](ObjectId id) -> Result<bool> {
        TYDER_ASSIGN_OR_RETURN(Value pay, store_.GetSlot(id, fx_.pay_rate));
        return pay.AsFloat() >= 50.0;
      });
  ASSERT_TRUE(selected.ok()) << selected.status();
  EXPECT_EQ(selected->size(), 2u);  // pay 50 and 60
  for (ObjectId id : *selected) {
    EXPECT_EQ(store_.object(id).type, *view);
    // Full state carried over.
    EXPECT_TRUE(store_.GetSlot(id, fx_.hrs_worked).ok());
  }
}

TEST_F(MaterializeTest, SelectionRequiresDirectSubtypeView) {
  EXPECT_FALSE(MaterializeSelection(fx_.schema, store_, fx_.person,
                                    fx_.employee,
                                    [](ObjectId) -> Result<bool> {
                                      return true;
                                    })
                   .ok());
}

}  // namespace
}  // namespace tyder
