#include "instances/interp.h"

#include <gtest/gtest.h>

#include "core/projection.h"
#include "mir/builder.h"
#include "testing/fixtures.h"

namespace tyder {
namespace {

class InterpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
    auto obj = store_.CreateObject(fx_.schema, fx_.employee);
    ASSERT_TRUE(obj.ok());
    emp_ = *obj;
    ASSERT_TRUE(store_.SetSlot(emp_, fx_.date_of_birth, Value::Int(1990)).ok());
    ASSERT_TRUE(store_.SetSlot(emp_, fx_.pay_rate, Value::Float(50.0)).ok());
    ASSERT_TRUE(store_.SetSlot(emp_, fx_.hrs_worked, Value::Float(40.0)).ok());
  }

  testing::PersonEmployeeFixture fx_;
  ObjectStore store_;
  ObjectId emp_ = kInvalidObject;
};

TEST_F(InterpTest, ReaderReturnsSlot) {
  Interpreter interp(fx_.schema, &store_);
  auto v = interp.CallByName("get_pay_rate", {Value::Object(emp_)});
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, Value::Float(50.0));
}

TEST_F(InterpTest, MutatorWritesSlot) {
  Interpreter interp(fx_.schema, &store_);
  auto r = interp.CallByName("set_pay_rate",
                             {Value::Object(emp_), Value::Float(60.0)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->is_void());
  EXPECT_EQ(*store_.GetSlot(emp_, fx_.pay_rate), Value::Float(60.0));
}

TEST_F(InterpTest, GeneralMethodComputes) {
  Interpreter interp(fx_.schema, &store_);
  auto age = interp.CallByName("age", {Value::Object(emp_)});
  ASSERT_TRUE(age.ok()) << age.status();
  EXPECT_EQ(*age, Value::Int(2026 - 1990));
  auto income = interp.CallByName("income", {Value::Object(emp_)});
  ASSERT_TRUE(income.ok());
  EXPECT_EQ(*income, Value::Float(2000.0));
  auto promote = interp.CallByName("promote", {Value::Object(emp_)});
  ASSERT_TRUE(promote.ok());
  EXPECT_EQ(*promote, Value::Bool(true));  // age 36 < 65 and pay 50 < 100
}

TEST_F(InterpTest, PromoteFalseWhenPayTooHigh) {
  ASSERT_TRUE(store_.SetSlot(emp_, fx_.pay_rate, Value::Float(150.0)).ok());
  Interpreter interp(fx_.schema, &store_);
  auto promote = interp.CallByName("promote", {Value::Object(emp_)});
  ASSERT_TRUE(promote.ok());
  EXPECT_EQ(*promote, Value::Bool(false));
}

TEST_F(InterpTest, DispatchOnRuntimeType) {
  // A Person object cannot run income (no applicable method).
  auto person = store_.CreateObject(fx_.schema, fx_.person);
  ASSERT_TRUE(person.ok());
  Interpreter interp(fx_.schema, &store_);
  EXPECT_FALSE(interp.CallByName("income", {Value::Object(*person)}).ok());
  // But age works (method on Person).
  ASSERT_TRUE(
      store_.SetSlot(*person, fx_.date_of_birth, Value::Int(2000)).ok());
  auto age = interp.CallByName("age", {Value::Object(*person)});
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, Value::Int(26));
}

TEST_F(InterpTest, BehaviorIdenticalAfterDerivation) {
  // The core behavioral claim, observed end to end: run the methods, derive
  // the view type, run them again on the same object — identical results.
  Interpreter interp(fx_.schema, &store_);
  Value age_before = *interp.CallByName("age", {Value::Object(emp_)});
  Value income_before = *interp.CallByName("income", {Value::Object(emp_)});
  Value promote_before = *interp.CallByName("promote", {Value::Object(emp_)});

  auto result = DeriveProjectionByName(
      fx_.schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  ASSERT_TRUE(result.ok()) << result.status();

  Interpreter after(fx_.schema, &store_);
  EXPECT_EQ(*after.CallByName("age", {Value::Object(emp_)}), age_before);
  EXPECT_EQ(*after.CallByName("income", {Value::Object(emp_)}), income_before);
  EXPECT_EQ(*after.CallByName("promote", {Value::Object(emp_)}),
            promote_before);
}

TEST_F(InterpTest, VoidArgumentCannotDispatch) {
  Interpreter interp(fx_.schema, &store_);
  EXPECT_FALSE(interp.CallByName("age", {Value::Void()}).ok());
}

TEST_F(InterpTest, RuntimeTypeOfPrimitives) {
  Interpreter interp(fx_.schema, &store_);
  EXPECT_EQ(interp.RuntimeTypeOf(Value::Int(1)),
            fx_.schema.builtins().int_type);
  EXPECT_EQ(interp.RuntimeTypeOf(Value::Float(1.0)),
            fx_.schema.builtins().float_type);
  EXPECT_EQ(interp.RuntimeTypeOf(Value::Bool(true)),
            fx_.schema.builtins().bool_type);
  EXPECT_EQ(interp.RuntimeTypeOf(Value::String("s")),
            fx_.schema.builtins().string_type);
  EXPECT_EQ(interp.RuntimeTypeOf(Value::Object(emp_)), fx_.employee);
  EXPECT_EQ(interp.RuntimeTypeOf(Value::Void()), kInvalidType);
}

TEST_F(InterpTest, InfiniteRecursionHitsDepthLimit) {
  // Example 1's x1/y1 are mutually recursive; invoking them must terminate
  // with a depth error rather than hang.
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  ObjectStore store;
  auto a = store.CreateObject(fx->schema, fx->a);
  auto b = store.CreateObject(fx->schema, fx->b);
  ASSERT_TRUE(a.ok() && b.ok());
  Interpreter interp(fx->schema, &store);
  auto r = interp.CallByName("x", {Value::Object(*a), Value::Object(*b)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(InterpTest, DivisionByZeroReported) {
  auto fx = testing::BuildExample1();
  ASSERT_TRUE(fx.ok());
  // Direct arithmetic through a probe method is covered by type_check tests;
  // here exercise the interpreter's guard via a small synthetic body.
  Schema& s = fx->schema;
  auto gf = s.DeclareGenericFunction("div_probe", 1);
  ASSERT_TRUE(gf.ok());
  Method m;
  m.label = Symbol::Intern("div_probe1");
  m.gf = *gf;
  m.kind = MethodKind::kGeneral;
  m.sig = Signature{{fx->a}, s.builtins().int_type};
  m.body = mir::Seq({mir::Return(
      mir::BinOp(BinOpKind::kDiv, mir::IntLit(1), mir::IntLit(0)))});
  auto id = s.AddMethod(std::move(m));
  ASSERT_TRUE(id.ok());
  ObjectStore store;
  auto a = store.CreateObject(s, fx->a);
  ASSERT_TRUE(a.ok());
  Interpreter interp(s, &store);
  auto r = interp.Invoke(*id, {Value::Object(*a)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tyder
