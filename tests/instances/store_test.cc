#include "instances/store.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace tyder {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fx = testing::BuildPersonEmployee();
    ASSERT_TRUE(fx.ok()) << fx.status();
    fx_ = std::move(fx).value();
  }
  testing::PersonEmployeeFixture fx_;
  ObjectStore store_;
};

TEST_F(StoreTest, CreateObjectInitializesAllCumulativeSlots) {
  auto obj = store_.CreateObject(fx_.schema, fx_.employee);
  ASSERT_TRUE(obj.ok()) << obj.status();
  const Object& o = store_.object(*obj);
  EXPECT_EQ(o.type, fx_.employee);
  EXPECT_EQ(o.slots.size(), 5u);  // SSN, name, dob, pay_rate, hrs_worked
  auto ssn = store_.GetSlot(*obj, fx_.ssn);
  ASSERT_TRUE(ssn.ok());
  EXPECT_TRUE(ssn->is_string());
  auto pay = store_.GetSlot(*obj, fx_.pay_rate);
  ASSERT_TRUE(pay.ok());
  EXPECT_TRUE(pay->is_float());
}

TEST_F(StoreTest, SupertypeInstanceLacksSubtypeSlots) {
  auto obj = store_.CreateObject(fx_.schema, fx_.person);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(store_.GetSlot(*obj, fx_.ssn).ok());
  EXPECT_EQ(store_.GetSlot(*obj, fx_.pay_rate).status().code(),
            StatusCode::kNotFound);
}

TEST_F(StoreTest, SetSlotRoundTrips) {
  auto obj = store_.CreateObject(fx_.schema, fx_.employee);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(store_.SetSlot(*obj, fx_.pay_rate, Value::Float(42.5)).ok());
  auto v = store_.GetSlot(*obj, fx_.pay_rate);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Float(42.5));
}

TEST_F(StoreTest, ExtentFollowsSubtypeSemantics) {
  auto p = store_.CreateObject(fx_.schema, fx_.person);
  auto e1 = store_.CreateObject(fx_.schema, fx_.employee);
  auto e2 = store_.CreateObject(fx_.schema, fx_.employee);
  ASSERT_TRUE(p.ok() && e1.ok() && e2.ok());
  EXPECT_EQ(store_.DirectExtent(fx_.person).size(), 1u);
  EXPECT_EQ(store_.DirectExtent(fx_.employee).size(), 2u);
  // An employee is a person (inclusion polymorphism).
  EXPECT_EQ(store_.Extent(fx_.schema, fx_.person).size(), 3u);
  EXPECT_EQ(store_.Extent(fx_.schema, fx_.employee).size(), 2u);
}

TEST_F(StoreTest, OutOfRangeAccessRejected) {
  EXPECT_FALSE(store_.GetSlot(99, fx_.ssn).ok());
  EXPECT_FALSE(store_.SetSlot(99, fx_.ssn, Value::Int(1)).ok());
  EXPECT_FALSE(store_.CreateObject(fx_.schema, 12345).ok());
}

TEST_F(StoreTest, DefaultValuesMatchValueTypes) {
  const Schema& s = fx_.schema;
  EXPECT_EQ(DefaultValueFor(s, s.builtins().int_type), Value::Int(0));
  EXPECT_EQ(DefaultValueFor(s, s.builtins().date_type), Value::Int(0));
  EXPECT_EQ(DefaultValueFor(s, s.builtins().float_type), Value::Float(0.0));
  EXPECT_EQ(DefaultValueFor(s, s.builtins().bool_type), Value::Bool(false));
  EXPECT_EQ(DefaultValueFor(s, s.builtins().string_type), Value::String(""));
  EXPECT_EQ(DefaultValueFor(s, fx_.person), Value::Void());
}

TEST_F(StoreTest, ValueToStringAndEquality) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Void().ToString(), "void");
  EXPECT_EQ(Value::Object(3).ToString(), "#3");
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Float(1.0));
}

}  // namespace
}  // namespace tyder
