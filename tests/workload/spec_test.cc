// Scenario-spec text form: canonical round trip on every checked-in pack,
// parse tolerance, and rejection of malformed specs (ISSUE 10 satellite).

#include "workload/spec.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace tyder::workload {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<std::filesystem::path> CheckedInPacks() {
  std::vector<std::filesystem::path> packs;
  for (const auto& entry :
       std::filesystem::directory_iterator(TYDER_SCENARIO_DIR)) {
    if (entry.path().extension() == ".scn") packs.push_back(entry.path());
  }
  std::sort(packs.begin(), packs.end());
  return packs;
}

TEST(ScenarioSpec, AllFourPacksAreCheckedIn) {
  std::set<std::string> names;
  for (const auto& pack : CheckedInPacks()) names.insert(pack.stem().string());
  EXPECT_TRUE(names.count("evolution-storm"));
  EXPECT_TRUE(names.count("dispatch-skew"));
  EXPECT_TRUE(names.count("durability-churn"));
  EXPECT_TRUE(names.count("mixed-populations"));
  EXPECT_GE(names.size(), 4u);
}

// The packs are stored in canonical form, so parse → format must reproduce
// the file byte for byte. This pins both directions of the codec at once and
// keeps `git diff` on a pack meaningful.
TEST(ScenarioSpec, CheckedInPacksRoundTripByteIdentically) {
  for (const auto& pack : CheckedInPacks()) {
    SCOPED_TRACE(pack.string());
    std::string text = ReadFile(pack);
    Result<ScenarioSpec> spec = ParseScenario(text);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    EXPECT_EQ(spec->name, pack.stem().string());
    EXPECT_EQ(FormatScenario(*spec), text);
  }
}

TEST(ScenarioSpec, FormatIsAFixpointEvenForNonCanonicalInput) {
  std::string text =
      "tyder-scenario v1\n"
      "# a comment the canonical form drops\n"
      "name tiny\n"
      "\n"
      "seed 7\n"
      "mode inproc\n"
      "schema seed=3 types=5 supers=2 attrs=2 gfs=3 mpg=1 stmts=2 mutators=0\n"
      "population solo weight=1 zipf=0 mix=ping:1\n"
      "phase only ops=4 burst=2 pace_us=0 faults=none power_loss_pct=0\n"
      "end\n";
  Result<ScenarioSpec> spec = ParseScenario(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::string canonical = FormatScenario(*spec);
  EXPECT_NE(canonical, text);  // the comment and blank line are gone
  Result<ScenarioSpec> again = ParseScenario(canonical);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(FormatScenario(*again), canonical);
}

TEST(ScenarioSpec, ParsePopulatesEveryField) {
  std::string text =
      "tyder-scenario v1\n"
      "name full\n"
      "seed 42\n"
      "mode wire\n"
      "schema seed=9 types=8 supers=3 attrs=2 gfs=4 mpg=2 stmts=3 mutators=1\n"
      "oracle every=25\n"
      "wire source=Employee attrs=SSN,pay_rate targets=Person,Employee "
      "gfs=age\n"
      "population hot weight=3 zipf=120 mix=dispatch:5,subtype:1\n"
      "population cold weight=1 zipf=0 mix=project:1,drop:1\n"
      "phase warm ops=10 burst=2 pace_us=50 faults=none power_loss_pct=0\n"
      "phase churn ops=20 burst=4 pace_us=0 "
      "faults=storage.wal.mid_fsync,env.sync@1 power_loss_pct=40\n"
      "end\n";
  Result<ScenarioSpec> spec = ParseScenario(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "full");
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_EQ(spec->mode, ScenarioMode::kWire);
  EXPECT_EQ(spec->schema.seed, 9u);
  EXPECT_EQ(spec->schema.types, 8);
  EXPECT_EQ(spec->schema.methods_per_gf, 2);
  EXPECT_TRUE(spec->schema.mutators);
  EXPECT_EQ(spec->oracle_every, 25);
  EXPECT_EQ(spec->wire.source, "Employee");
  ASSERT_EQ(spec->wire.attrs.size(), 2u);
  EXPECT_EQ(spec->wire.targets.size(), 2u);
  ASSERT_EQ(spec->populations.size(), 2u);
  EXPECT_EQ(spec->populations[0].name, "hot");
  EXPECT_EQ(spec->populations[0].zipf_centi, 120);
  ASSERT_EQ(spec->populations[0].mix.size(), 2u);
  EXPECT_EQ(spec->populations[0].mix[0].op, ScenarioOp::kDispatch);
  EXPECT_EQ(spec->populations[0].mix[0].weight, 5);
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_EQ(spec->phases[0].pace_us, 50);
  ASSERT_EQ(spec->phases[1].faults.size(), 2u);
  EXPECT_EQ(spec->phases[1].faults[1], "env.sync@1");
  EXPECT_EQ(spec->phases[1].power_loss_pct, 40);
  EXPECT_EQ(spec->TotalOps(), 30u);
}

TEST(ScenarioSpec, RejectsMalformedSpecs) {
  auto rejects = [](const std::string& text) {
    Result<ScenarioSpec> spec = ParseScenario(text);
    EXPECT_FALSE(spec.ok()) << "accepted:\n" << text;
  };
  rejects("");  // no header
  rejects("tyder-scenario v2\nname x\nend\n");
  // Missing populations / phases / end.
  rejects(
      "tyder-scenario v1\nname x\nseed 1\nmode inproc\n"
      "phase p ops=1 burst=1 pace_us=0 faults=none power_loss_pct=0\nend\n");
  rejects(
      "tyder-scenario v1\nname x\nseed 1\nmode inproc\n"
      "population p weight=1 zipf=0 mix=ping:1\nend\n");
  rejects(
      "tyder-scenario v1\nname x\nseed 1\nmode inproc\n"
      "population p weight=1 zipf=0 mix=ping:1\n"
      "phase p ops=1 burst=1 pace_us=0 faults=none power_loss_pct=0\n");
  // Duplicate population name.
  rejects(
      "tyder-scenario v1\nname x\nseed 1\nmode inproc\n"
      "population p weight=1 zipf=0 mix=ping:1\n"
      "population p weight=1 zipf=0 mix=ping:1\n"
      "phase q ops=1 burst=1 pace_us=0 faults=none power_loss_pct=0\nend\n");
  // Non-positive weight; unknown op; out-of-range power_loss_pct.
  rejects(
      "tyder-scenario v1\nname x\nseed 1\nmode inproc\n"
      "population p weight=0 zipf=0 mix=ping:1\n"
      "phase q ops=1 burst=1 pace_us=0 faults=none power_loss_pct=0\nend\n");
  rejects(
      "tyder-scenario v1\nname x\nseed 1\nmode inproc\n"
      "population p weight=1 zipf=0 mix=frobnicate:1\n"
      "phase q ops=1 burst=1 pace_us=0 faults=none power_loss_pct=0\nend\n");
  rejects(
      "tyder-scenario v1\nname x\nseed 1\nmode inproc\n"
      "population p weight=1 zipf=0 mix=ping:1\n"
      "phase q ops=1 burst=1 pace_us=0 faults=none power_loss_pct=101\nend\n");
}

TEST(ScenarioSpec, OpNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(ScenarioOp::kCrash); ++i) {
    ScenarioOp op = static_cast<ScenarioOp>(i);
    ScenarioOp back;
    ASSERT_TRUE(ScenarioOpFromName(ScenarioOpName(op), &back))
        << ScenarioOpName(op);
    EXPECT_EQ(back, op);
  }
  ScenarioOp out;
  EXPECT_FALSE(ScenarioOpFromName("definitely-not-an-op", &out));
  EXPECT_TRUE(IsMutation(ScenarioOp::kProject));
  // Crash steps are accounted separately (crashes/recoveries), not as
  // ordinary mutations.
  EXPECT_FALSE(IsMutation(ScenarioOp::kCrash));
  EXPECT_FALSE(IsMutation(ScenarioOp::kDispatch));
  EXPECT_FALSE(IsMutation(ScenarioOp::kPing));
}

}  // namespace
}  // namespace tyder::workload
