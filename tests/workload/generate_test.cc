// Workload generation: determinism, phase/population accounting, Zipf skew
// shape, and payload resolution (ISSUE 10 satellite).

#include "workload/generate.h"

#include <map>
#include <numeric>
#include <string>

#include "gtest/gtest.h"

namespace tyder::workload {
namespace {

ScenarioSpec TwoPopulationSpec() {
  ScenarioSpec spec;
  spec.name = "gen-test";
  spec.seed = 77;
  spec.populations.push_back(
      {"hot", 3, 150, {{ScenarioOp::kDispatch, 4}, {ScenarioOp::kSubtype, 1}}});
  spec.populations.push_back(
      {"cold", 1, 0, {{ScenarioOp::kProject, 1}, {ScenarioOp::kDrop, 1}}});
  spec.phases.push_back({"warm", 200, 1, 0, {}, 0});
  spec.phases.push_back({"main", 600, 8, 0, {}, 0});
  return spec;
}

TEST(GenerateWorkload, SameSpecSameSteps) {
  ScenarioSpec spec = TwoPopulationSpec();
  Workload a = GenerateWorkload(spec);
  Workload b = GenerateWorkload(spec);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].phase, b.steps[i].phase) << "step " << i;
    EXPECT_EQ(a.steps[i].population, b.steps[i].population) << "step " << i;
    EXPECT_EQ(a.steps[i].op, b.steps[i].op) << "step " << i;
    EXPECT_EQ(a.steps[i].a, b.steps[i].a) << "step " << i;
    EXPECT_EQ(a.steps[i].b, b.steps[i].b) << "step " << i;
    EXPECT_EQ(a.steps[i].c, b.steps[i].c) << "step " << i;
  }
}

TEST(GenerateWorkload, DifferentSeedsDiverge) {
  ScenarioSpec spec = TwoPopulationSpec();
  Workload a = GenerateWorkload(spec);
  spec.seed = 78;
  Workload b = GenerateWorkload(spec);
  ASSERT_EQ(a.steps.size(), b.steps.size());  // structure is seed-independent
  size_t diffs = 0;
  for (size_t i = 0; i < a.steps.size(); ++i) {
    if (a.steps[i].op != b.steps[i].op || a.steps[i].a != b.steps[i].a)
      ++diffs;
  }
  EXPECT_GT(diffs, a.steps.size() / 4);
}

TEST(GenerateWorkload, PhaseOpCountsAndOrderMatchSpec) {
  ScenarioSpec spec = TwoPopulationSpec();
  Workload w = GenerateWorkload(spec);
  ASSERT_EQ(w.steps.size(), spec.TotalOps());
  std::map<uint16_t, size_t> per_phase;
  uint16_t last_phase = 0;
  for (const WorkloadStep& step : w.steps) {
    EXPECT_GE(step.phase, last_phase);  // phases run in order
    last_phase = step.phase;
    ++per_phase[step.phase];
  }
  EXPECT_EQ(per_phase[0], 200u);
  EXPECT_EQ(per_phase[1], 600u);
}

TEST(GenerateWorkload, PopulationsDrawOnlyFromTheirOwnMix) {
  ScenarioSpec spec = TwoPopulationSpec();
  Workload w = GenerateWorkload(spec);
  size_t hot_steps = 0;
  for (const WorkloadStep& step : w.steps) {
    if (step.population == 0) {
      ++hot_steps;
      EXPECT_TRUE(step.op == ScenarioOp::kDispatch ||
                  step.op == ScenarioOp::kSubtype);
    } else {
      EXPECT_TRUE(step.op == ScenarioOp::kProject ||
                  step.op == ScenarioOp::kDrop);
    }
  }
  // weight 3-vs-1: the hot population should carry well over half.
  EXPECT_GT(hot_steps, w.steps.size() / 2);
  EXPECT_LT(hot_steps, w.steps.size());
}

TEST(GenerateWorkload, BurstKeepsPopulationStableWithinBursts) {
  ScenarioSpec spec = TwoPopulationSpec();
  spec.phases = {{"bursty", 400, 10, 0, {}, 0}};
  Workload w = GenerateWorkload(spec);
  ASSERT_EQ(w.steps.size(), 400u);
  for (size_t i = 0; i < w.steps.size(); i += 10) {
    for (size_t j = i + 1; j < i + 10; ++j)
      EXPECT_EQ(w.steps[j].population, w.steps[i].population)
          << "burst starting at " << i;
  }
}

TEST(ZipfWeights, HeadDominatesAndDecaysMonotonically) {
  std::vector<double> w = ZipfWeights(1.2);
  ASSERT_EQ(w.size(), static_cast<size_t>(kZipfRanks));
  for (size_t r = 1; r < w.size(); ++r) EXPECT_LT(w[r], w[r - 1]);
  double total = std::accumulate(w.begin(), w.end(), 0.0);
  double head = std::accumulate(w.begin(), w.begin() + 16, 0.0);
  // With s=1.2 the first 16 of 1024 ranks carry the bulk of the mass.
  EXPECT_GT(head / total, 0.5);
}

TEST(GenerateWorkload, ZipfPopulationsEmitRanksSkewedToTheHead) {
  ScenarioSpec spec = TwoPopulationSpec();
  Workload w = GenerateWorkload(spec);
  size_t zipf_draws = 0, head_draws = 0;
  for (const WorkloadStep& step : w.steps) {
    if (step.population != 0) continue;  // only "hot" is zipf-skewed
    ASSERT_LT(step.a, kZipfRanks);       // payload is a rank, not full-range
    ++zipf_draws;
    if (step.a < kZipfRanks / 16) ++head_draws;
  }
  ASSERT_GT(zipf_draws, 100u);
  // Uniform draws would put ~1/16 of the mass in the head; Zipf(1.5) puts
  // the large majority there.
  EXPECT_GT(head_draws * 2, zipf_draws);
}

TEST(ResolveIndex, ScalesZipfRanksAndWrapsUniformDraws) {
  ScenarioSpec spec = TwoPopulationSpec();
  WorkloadStep zipf_step;
  zipf_step.population = 0;  // zipf
  WorkloadStep uniform_step;
  uniform_step.population = 1;

  // Rank 0 always maps to index 0; the hottest rank stays the hottest entry.
  zipf_step.a = 0;
  EXPECT_EQ(ResolveIndex(spec, zipf_step, 7), 0u);
  // The top rank maps near the end of the candidate list, never out of range.
  zipf_step.a = kZipfRanks - 1;
  size_t top = ResolveIndex(spec, zipf_step, 7);
  EXPECT_LT(top, 7u);
  EXPECT_GE(top, 5u);
  // Scaling preserves order: higher rank ⇒ same-or-later index.
  size_t prev = 0;
  for (uint32_t r = 0; r < kZipfRanks; r += 64) {
    zipf_step.a = r;
    size_t idx = ResolveIndex(spec, zipf_step, 13);
    EXPECT_GE(idx, prev);
    prev = idx;
  }

  uniform_step.a = 4'000'000'123u;
  EXPECT_EQ(ResolveIndex(spec, uniform_step, 7), 4'000'000'123u % 7);
}

}  // namespace
}  // namespace tyder::workload
