// In-proc replay: determinism of the final catalog fingerprint, oracle
// lockstep accounting, and the crash-step durability contract
// (ISSUE 10 satellite).

#include "workload/replay.h"

#include <string>

#include "gtest/gtest.h"
#include "workload/generate.h"
#include "workload/spec.h"

namespace tyder::workload {
namespace {

ScenarioSpec SmallMixedSpec() {
  ScenarioSpec spec;
  spec.name = "replay-test";
  spec.seed = 4242;
  spec.schema.seed = 11;
  spec.schema.types = 7;
  spec.schema.gfs = 4;
  spec.oracle_every = 20;
  spec.populations.push_back({"movers",
                              2,
                              0,
                              {{ScenarioOp::kProject, 3},
                               {ScenarioOp::kDrop, 2},
                               {ScenarioOp::kNewType, 1},
                               {ScenarioOp::kCollapse, 1}}});
  spec.populations.push_back(
      {"lookers",
       1,
       100,
       {{ScenarioOp::kSubtype, 2}, {ScenarioOp::kDispatch, 2},
        {ScenarioOp::kViews, 1}, {ScenarioOp::kPing, 1}}});
  spec.phases.push_back({"run", 120, 4, 0, {}, 0});
  return spec;
}

TEST(ReplayInProc, SameWorkloadSameFingerprint) {
  Workload w = GenerateWorkload(SmallMixedSpec());
  Result<ScenarioReport> a = ReplayInProc(w);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  Result<ScenarioReport> b = ReplayInProc(w);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->final_crc, b->final_crc);
  EXPECT_EQ(a->final_types, b->final_types);
  EXPECT_EQ(a->final_views, b->final_views);
  EXPECT_EQ(a->mutations, b->mutations);
  EXPECT_EQ(a->reads, b->reads);
  EXPECT_EQ(a->refusals, b->refusals);
  EXPECT_EQ(a->skipped, b->skipped);
}

TEST(ReplayInProc, AccountsEveryStepAndRunsTheOracle) {
  Workload w = GenerateWorkload(SmallMixedSpec());
  Result<ScenarioReport> report = ReplayInProc(w);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->steps, w.steps.size());
  EXPECT_GT(report->mutations, 0u);
  EXPECT_GT(report->reads, 0u);
  // 120 steps at oracle_every=20 plus the final sweep.
  EXPECT_GE(report->oracle_passes, 6u);
  EXPECT_TRUE(report->oracle_clean);
  EXPECT_EQ(report->crashes, 0u);
  EXPECT_GT(report->elapsed_s, 0.0);
  EXPECT_GT(report->final_types, 0u);
  EXPECT_EQ(report->scenario, "replay-test");
  // Latency histograms saw the traffic.
  EXPECT_EQ(report->mutation_ns.count,
            report->mutations + report->refusals);
  EXPECT_GT(report->read_ns.count, 0u);
}

TEST(ReplayInProc, OracleEveryOverrideDisablesLockstepSweeps) {
  Workload w = GenerateWorkload(SmallMixedSpec());
  ReplayOptions options;
  options.oracle_every = 0;
  Result<ScenarioReport> report = ReplayInProc(w, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Lockstep (and the final sweep, which is gated the same way) is off.
  EXPECT_EQ(report->oracle_passes, 0u);
  EXPECT_TRUE(report->oracle_clean);
}

TEST(ReplayInProc, CrashStepsRecoverUnderFaultsAndPowerLoss) {
  ScenarioSpec spec = SmallMixedSpec();
  spec.name = "crash-test";
  spec.populations.push_back(
      {"saboteurs", 4, 0, {{ScenarioOp::kCrash, 1}}});
  spec.phases = {{"churn",
                  40,
                  2,
                  0,
                  {"storage.wal.after_append", "env.sync@1", "env.error@2"},
                  100}};
  Workload w = GenerateWorkload(spec);
  Result<ScenarioReport> report = ReplayInProc(w);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->crashes, 0u);
  EXPECT_EQ(report->recoveries, report->crashes);
  EXPECT_EQ(report->power_losses, report->crashes);  // pct=100
  EXPECT_EQ(report->recovery_ns.count, report->recoveries);
  EXPECT_TRUE(report->oracle_clean);

  // Crash adoption is part of the fingerprint: the run stays deterministic.
  Result<ScenarioReport> again = ReplayInProc(w);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->final_crc, report->final_crc);
  EXPECT_EQ(again->crashes, report->crashes);
}

}  // namespace
}  // namespace tyder::workload
