#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace tyder {
namespace {

std::vector<Token> LexOk(std::string_view src) {
  DiagnosticEngine diags;
  std::vector<Token> tokens = Lex(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.ToString();
  return tokens;
}

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = LexOk("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto tokens = LexOk("type Person method foo generic view");
  EXPECT_EQ(Kinds(tokens),
            (std::vector<TokenKind>{TokenKind::kType, TokenKind::kIdent,
                                    TokenKind::kMethod, TokenKind::kIdent,
                                    TokenKind::kGeneric, TokenKind::kView,
                                    TokenKind::kEnd}));
  EXPECT_EQ(tokens[1].text, "Person");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = LexOk("42 3.14 0");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLit);
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].kind, TokenKind::kIntLit);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = LexOk(R"("hello" "a\"b" "line\n")");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "line\n");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = LexOk("-> - = == < <= + * / : ; , ( ) { }");
  EXPECT_EQ(Kinds(tokens),
            (std::vector<TokenKind>{
                TokenKind::kArrow, TokenKind::kMinus, TokenKind::kAssign,
                TokenKind::kEqEq, TokenKind::kLt, TokenKind::kLe,
                TokenKind::kPlus, TokenKind::kStar, TokenKind::kSlash,
                TokenKind::kColon, TokenKind::kSemicolon, TokenKind::kComma,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
                TokenKind::kRBrace, TokenKind::kEnd}));
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = LexOk("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = LexOk("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].col, 3);
}

TEST(LexerTest, UnterminatedStringReported) {
  DiagnosticEngine diags;
  Lex("\"oops", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LexerTest, UnterminatedBlockCommentReported) {
  DiagnosticEngine diags;
  Lex("/* never closed", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LexerTest, UnexpectedCharacterReported) {
  DiagnosticEngine diags;
  std::vector<Token> tokens = Lex("a @ b", diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(tokens[1].kind, TokenKind::kError);
}

TEST(LexerTest, BooleanAndLogicalKeywords) {
  auto tokens = LexOk("true false and or if else return");
  EXPECT_EQ(Kinds(tokens),
            (std::vector<TokenKind>{TokenKind::kTrue, TokenKind::kFalse,
                                    TokenKind::kAnd, TokenKind::kOr,
                                    TokenKind::kIf, TokenKind::kElse,
                                    TokenKind::kReturn, TokenKind::kEnd}));
}

}  // namespace
}  // namespace tyder
