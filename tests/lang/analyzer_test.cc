#include "lang/analyzer.h"

#include <gtest/gtest.h>

#include "instances/interp.h"
#include "mir/printer.h"

namespace tyder {
namespace {

constexpr const char* kPersonTdl = R"(
  type Person {
    SSN: String;
    name: String;
    date_of_birth: Date;
  }
  type Employee : Person {
    pay_rate: Float;
    hrs_worked: Float;
  }
  accessors;
  method age (p: Person) -> Int {
    return 2026 - get_date_of_birth(p);
  }
  method income (e: Employee) -> Float {
    return get_pay_rate(e) * get_hrs_worked(e);
  }
)";

TEST(AnalyzerTest, BuildsTypesAndAttributes) {
  auto catalog = LoadTdl(kPersonTdl);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  const Schema& s = catalog->schema();
  auto employee = s.types().FindType("Employee");
  ASSERT_TRUE(employee.ok());
  EXPECT_EQ(s.types().CumulativeAttributes(*employee).size(), 5u);
  auto person = s.types().FindType("Person");
  ASSERT_TRUE(person.ok());
  EXPECT_TRUE(s.types().IsProperSubtype(*employee, *person));
}

TEST(AnalyzerTest, AccessorsDirectiveGeneratesReadersAndMutators) {
  auto catalog = LoadTdl(kPersonTdl);
  ASSERT_TRUE(catalog.ok());
  const Schema& s = catalog->schema();
  EXPECT_TRUE(s.FindGenericFunction("get_SSN").ok());
  EXPECT_TRUE(s.FindGenericFunction("set_SSN").ok());
  EXPECT_TRUE(s.FindGenericFunction("get_pay_rate").ok());
}

TEST(AnalyzerTest, MethodBodiesLowerAndRun) {
  auto catalog = LoadTdl(kPersonTdl);
  ASSERT_TRUE(catalog.ok());
  Schema& s = catalog->schema();
  ObjectStore store;
  auto employee = s.types().FindType("Employee");
  ASSERT_TRUE(employee.ok());
  auto obj = store.CreateObject(s, *employee);
  ASSERT_TRUE(obj.ok());
  auto dob = s.types().FindAttribute("date_of_birth");
  ASSERT_TRUE(dob.ok());
  ASSERT_TRUE(store.SetSlot(*obj, *dob, Value::Int(1980)).ok());
  Interpreter interp(s, &store);
  auto age = interp.CallByName("age", {Value::Object(*obj)});
  ASSERT_TRUE(age.ok()) << age.status();
  EXPECT_EQ(*age, Value::Int(46));
}

TEST(AnalyzerTest, SupertypePrecedenceFollowsDeclarationOrder) {
  auto catalog = LoadTdl(R"(
    type F { f1: Int; }
    type E { e1: Int; }
    type C : F, E { c1: Int; }
  )");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  const Schema& s = catalog->schema();
  auto c = s.types().FindType("C");
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(s.types().type(*c).supertypes().size(), 2u);
  EXPECT_EQ(s.types().TypeName(s.types().type(*c).supertypes()[0]), "F");
  EXPECT_EQ(s.types().TypeName(s.types().type(*c).supertypes()[1]), "E");
}

TEST(AnalyzerTest, MethodForSharedGenericFunction) {
  auto catalog = LoadTdl(R"(
    type A { a1: Int; }
    type B { b1: Int; }
    accessors;
    method u1 for u (x: A) { get_a1(x); }
    method u2 for u (x: B) { get_b1(x); }
  )");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  auto u = catalog->schema().FindGenericFunction("u");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(catalog->schema().gf(*u).methods.size(), 2u);
}

TEST(AnalyzerTest, ViewDeclarationRunsDerivation) {
  std::string tdl = std::string(kPersonTdl) +
                    "view EmployeeView = project Employee on "
                    "(SSN, date_of_birth, pay_rate);";
  auto catalog = LoadTdl(tdl);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  auto view = catalog->FindView("EmployeeView");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->op, ViewOpKind::kProjection);
  const Schema& s = catalog->schema();
  EXPECT_TRUE(s.types().FindType("EmployeeView").ok());
  EXPECT_TRUE(s.types().FindType("~Person").ok());
  // income must have been left behind; age rewritten to the surrogate.
  auto age = s.FindMethod("age");
  ASSERT_TRUE(age.ok());
  EXPECT_NE(PrintMethod(s, *age).find("~Person"), std::string::npos);
}

TEST(AnalyzerTest, SelectionViewDeclaration) {
  std::string tdl = std::string(kPersonTdl) + "view Staff = select Employee;";
  auto catalog = LoadTdl(tdl);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  auto staff = catalog->schema().types().FindType("Staff");
  ASSERT_TRUE(staff.ok());
  auto employee = catalog->schema().types().FindType("Employee");
  ASSERT_TRUE(employee.ok());
  EXPECT_TRUE(catalog->schema().types().IsProperSubtype(*staff, *employee));
}

TEST(AnalyzerTest, RenameViewFromTdl) {
  std::string tdl = std::string(kPersonTdl) +
                    "view HrView = rename Employee (pay_rate as hourly_wage);";
  auto catalog = LoadTdl(tdl);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  EXPECT_TRUE(catalog->schema().FindGenericFunction("get_hourly_wage").ok());
  auto view = catalog->FindView("HrView");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->op, ViewOpKind::kRename);
  ASSERT_EQ((*view)->renames.size(), 1u);
  EXPECT_EQ((*view)->renames[0].alias, "hourly_wage");
}

TEST(AnalyzerTest, GeneralizeViewFromTdl) {
  auto catalog = LoadTdl(R"(
    type Shared { s1: Int; }
    type Doctor : Shared { pager: Int; }
    type Nurse : Shared { shift: Int; }
    accessors;
    view Common = generalize Doctor, Nurse;
  )");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  auto view = catalog->FindView("Common");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->op, ViewOpKind::kGeneralization);
  auto common = catalog->schema().types().FindType("Common");
  ASSERT_TRUE(common.ok());
  // Common attributes of Doctor and Nurse = {s1}.
  EXPECT_EQ(catalog->schema().types().CumulativeAttributes(*common).size(),
            1u);
}

TEST(AnalyzerTest, UnknownSupertypeReported) {
  auto catalog = LoadTdl("type A : Ghost { }");
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().message().find("Ghost"), std::string::npos);
}

TEST(AnalyzerTest, UnknownAttributeTypeReported) {
  auto catalog = LoadTdl("type A { x: Ghost; }");
  EXPECT_FALSE(catalog.ok());
}

TEST(AnalyzerTest, UnknownGenericFunctionInBodyReported) {
  auto catalog = LoadTdl(R"(
    type A { a1: Int; }
    method m (x: A) { ghost(x); }
  )");
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().message().find("ghost"), std::string::npos);
}

TEST(AnalyzerTest, IllTypedBodyReported) {
  auto catalog = LoadTdl(R"(
    type A { a1: Int; }
    accessors;
    method m (x: A) -> Int { return get_a1(x) and true; }
  )");
  ASSERT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(), StatusCode::kTypeError);
}

TEST(AnalyzerTest, DuplicateTypeReported) {
  auto catalog = LoadTdl("type A { } type A { }");
  ASSERT_FALSE(catalog.ok());
  EXPECT_EQ(catalog.status().code(), StatusCode::kAlreadyExists);
}

TEST(AnalyzerTest, ForwardTypeReferencesResolve) {
  // Employee references Person declared later.
  auto catalog = LoadTdl(R"(
    type Employee : Person { pay: Float; }
    type Person { ssn: String; }
  )");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
}

}  // namespace
}  // namespace tyder
