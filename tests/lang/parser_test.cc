#include "lang/parser.h"

#include <gtest/gtest.h>

namespace tyder {
namespace {

TEST(ParserTest, TypeWithAttributesAndSupers) {
  auto ast = ParseTdl(R"(
    type Employee : Person, Insured {
      pay_rate: Float;
      hrs_worked: Float;
    }
  )");
  ASSERT_TRUE(ast.ok()) << ast.status();
  ASSERT_EQ(ast->types.size(), 1u);
  const AstType& t = ast->types[0];
  EXPECT_EQ(t.name, "Employee");
  EXPECT_EQ(t.supers, (std::vector<std::string>{"Person", "Insured"}));
  ASSERT_EQ(t.attrs.size(), 2u);
  EXPECT_EQ(t.attrs[0].name, "pay_rate");
  EXPECT_EQ(t.attrs[0].type_name, "Float");
}

TEST(ParserTest, TypeWithoutSupersOrAttrs) {
  auto ast = ParseTdl("type Empty { }");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_TRUE(ast->types[0].supers.empty());
  EXPECT_TRUE(ast->types[0].attrs.empty());
}

TEST(ParserTest, GenericDeclaration) {
  auto ast = ParseTdl("generic u/1; generic v/2;");
  ASSERT_TRUE(ast.ok()) << ast.status();
  ASSERT_EQ(ast->generics.size(), 2u);
  EXPECT_EQ(ast->generics[0].name, "u");
  EXPECT_EQ(ast->generics[0].arity, 1);
  EXPECT_EQ(ast->generics[1].arity, 2);
}

TEST(ParserTest, MethodWithForAndResult) {
  auto ast = ParseTdl(R"(
    method v1 for v (a: A, c: C) -> Int {
      return 1;
    }
  )");
  ASSERT_TRUE(ast.ok()) << ast.status();
  ASSERT_EQ(ast->methods.size(), 1u);
  const AstMethod& m = ast->methods[0];
  EXPECT_EQ(m.label, "v1");
  EXPECT_EQ(m.gf, "v");
  ASSERT_EQ(m.params.size(), 2u);
  EXPECT_EQ(m.params[0].name, "a");
  EXPECT_EQ(m.params[1].type_name, "C");
  EXPECT_EQ(m.result_type, "Int");
  ASSERT_EQ(m.body.size(), 1u);
  EXPECT_EQ(m.body[0]->kind, AstStmtKind::kReturn);
}

TEST(ParserTest, MethodWithoutForUsesOwnName) {
  auto ast = ParseTdl("method age (p: Person) -> Int { return 0; }");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->methods[0].label, "age");
  EXPECT_TRUE(ast->methods[0].gf.empty());
}

TEST(ParserTest, StatementForms) {
  auto ast = ParseTdl(R"(
    method m (a: A) {
      g: G;
      h: H = a;
      g = a;
      u(a);
      if (1 < 2) { return; } else { v(a, a); }
      return;
    }
  )");
  ASSERT_TRUE(ast.ok()) << ast.status();
  const auto& body = ast->methods[0].body;
  ASSERT_EQ(body.size(), 6u);
  EXPECT_EQ(body[0]->kind, AstStmtKind::kVarDecl);
  EXPECT_EQ(body[0]->var, "g");
  EXPECT_EQ(body[0]->expr, nullptr);
  EXPECT_EQ(body[1]->kind, AstStmtKind::kVarDecl);
  EXPECT_NE(body[1]->expr, nullptr);
  EXPECT_EQ(body[2]->kind, AstStmtKind::kAssign);
  EXPECT_EQ(body[3]->kind, AstStmtKind::kExprStmt);
  EXPECT_EQ(body[4]->kind, AstStmtKind::kIf);
  EXPECT_EQ(body[4]->then_body.size(), 1u);
  EXPECT_EQ(body[4]->else_body.size(), 1u);
  EXPECT_EQ(body[5]->kind, AstStmtKind::kReturn);
  EXPECT_EQ(body[5]->expr, nullptr);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto ast = ParseTdl("method m (a: A) -> Int { return 1 + 2 * 3 < 4 and true; }");
  ASSERT_TRUE(ast.ok()) << ast.status();
  const AstExprPtr& e = ast->methods[0].body[0]->expr;
  // ((1 + (2*3)) < 4) and true
  ASSERT_EQ(e->kind, AstExprKind::kBinOp);
  EXPECT_EQ(e->op, BinOpKind::kAnd);
  const AstExprPtr& cmp = e->children[0];
  EXPECT_EQ(cmp->op, BinOpKind::kLt);
  const AstExprPtr& add = cmp->children[0];
  EXPECT_EQ(add->op, BinOpKind::kAdd);
  EXPECT_EQ(add->children[1]->op, BinOpKind::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto ast = ParseTdl("method m (a: A) -> Int { return (1 + 2) * 3; }");
  ASSERT_TRUE(ast.ok());
  const AstExprPtr& e = ast->methods[0].body[0]->expr;
  EXPECT_EQ(e->op, BinOpKind::kMul);
  EXPECT_EQ(e->children[0]->op, BinOpKind::kAdd);
}

TEST(ParserTest, NestedCalls) {
  auto ast = ParseTdl("method m (a: A) { u(v(a, get_x(a))); }");
  ASSERT_TRUE(ast.ok()) << ast.status();
  const AstExprPtr& call = ast->methods[0].body[0]->expr;
  ASSERT_EQ(call->kind, AstExprKind::kCall);
  EXPECT_EQ(call->text, "u");
  ASSERT_EQ(call->children.size(), 1u);
  EXPECT_EQ(call->children[0]->text, "v");
  EXPECT_EQ(call->children[0]->children[1]->text, "get_x");
}

TEST(ParserTest, ProjectionViewDeclaration) {
  auto ast = ParseTdl(
      "view EmployeeView = project Employee on (SSN, date_of_birth);");
  ASSERT_TRUE(ast.ok()) << ast.status();
  ASSERT_EQ(ast->views.size(), 1u);
  EXPECT_EQ(ast->views[0].op, AstViewOp::kProject);
  EXPECT_EQ(ast->views[0].source, "Employee");
  EXPECT_EQ(ast->views[0].attrs,
            (std::vector<std::string>{"SSN", "date_of_birth"}));
}

TEST(ParserTest, SelectionViewDeclaration) {
  auto ast = ParseTdl("view WellPaid = select Employee;");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(ast->views[0].op, AstViewOp::kSelect);
  EXPECT_EQ(ast->views[0].source, "Employee");
}

TEST(ParserTest, RenameViewDeclaration) {
  auto ast = ParseTdl("view V = rename Employee (SSN as tax_id, pay as wage);");
  ASSERT_TRUE(ast.ok()) << ast.status();
  ASSERT_EQ(ast->views.size(), 1u);
  const AstView& v = ast->views[0];
  EXPECT_EQ(v.op, AstViewOp::kRename);
  EXPECT_EQ(v.source, "Employee");
  ASSERT_EQ(v.renames.size(), 2u);
  EXPECT_EQ(v.renames[0].attribute, "SSN");
  EXPECT_EQ(v.renames[0].alias, "tax_id");
  EXPECT_EQ(v.renames[1].attribute, "pay");
  EXPECT_EQ(v.renames[1].alias, "wage");
}

TEST(ParserTest, GeneralizeViewDeclaration) {
  auto ast = ParseTdl("view Common = generalize Doctor, Nurse;");
  ASSERT_TRUE(ast.ok()) << ast.status();
  const AstView& v = ast->views[0];
  EXPECT_EQ(v.op, AstViewOp::kGeneralize);
  EXPECT_EQ(v.source, "Doctor");
  EXPECT_EQ(v.source2, "Nurse");
}

TEST(ParserTest, MalformedRenameReported) {
  auto ast = ParseTdl("view V = rename T (a b);");
  EXPECT_FALSE(ast.ok());
}

TEST(ParserTest, AccessorsDirective) {
  auto ast = ParseTdl("type T { x: Int; } accessors;");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->accessors_directive);
}

TEST(ParserTest, SyntaxErrorsCollected) {
  auto ast = ParseTdl("type { }");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, MultipleErrorsReportedTogether) {
  auto ast = ParseTdl("type A type B");
  ASSERT_FALSE(ast.ok());
  // Both missing braces are reported.
  EXPECT_NE(ast.status().message().find("expected"), std::string::npos);
}

TEST(ParserTest, UnknownTopLevelTokenRecovered) {
  auto ast = ParseTdl("; type A { }");
  ASSERT_FALSE(ast.ok());  // the stray ';' is an error, but A is still parsed
}

}  // namespace
}  // namespace tyder
