// Robustness of the TDL front end: arbitrary inputs must produce a Status,
// never a crash, hang, or acceptance of garbage.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "lang/analyzer.h"
#include "lang/parser.h"

namespace tyder {
namespace {

TEST(RobustnessTest, RandomPrintableGarbageNeverCrashes) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int> len(0, 200);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int round = 0; round < 300; ++round) {
    std::string input;
    int n = len(rng);
    for (int i = 0; i < n; ++i) input += static_cast<char>(ch(rng));
    auto result = LoadTdl(input);  // must return, whatever the verdict
    (void)result;
  }
}

TEST(RobustnessTest, RandomTokenSoupNeverCrashes) {
  // Valid tokens in random order — exercises parser recovery paths rather
  // than the lexer.
  const char* kTokens[] = {"type",  "method", "view",   "{",     "}",  "(",
                           ")",     ";",      ",",      ":",     "->", "=",
                           "Ident", "42",     "3.14",   "\"s\"", "if", "else",
                           "return", "accessors", "project", "on", "as",
                           "rename", "generalize", "select", "+", "*", "<"};
  std::mt19937 rng(99);
  std::uniform_int_distribution<size_t> pick(0, std::size(kTokens) - 1);
  std::uniform_int_distribution<int> len(1, 60);
  for (int round = 0; round < 300; ++round) {
    std::string input;
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      input += kTokens[pick(rng)];
      input += ' ';
    }
    auto result = LoadTdl(input);
    (void)result;
  }
}

TEST(RobustnessTest, PathologicalNesting) {
  // Deep parenthesization parses (recursive descent) without blowing up at
  // this depth.
  std::string deep = "method m (a: Int) -> Int { return ";
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += ")";
  deep += "; }";
  auto ast = ParseTdl(deep);
  EXPECT_TRUE(ast.ok()) << ast.status();
}

TEST(RobustnessTest, TruncatedInputsReportErrors) {
  const char* kPrefixes[] = {
      "type",
      "type A",
      "type A :",
      "type A : B {",
      "type A { x",
      "type A { x:",
      "method m",
      "method m (",
      "method m (a: A) {",
      "method m (a: A) { return",
      "view V",
      "view V =",
      "view V = project",
      "view V = project T on (",
      "view V = rename T (a as",
      "view V = generalize A,",
      "generic f/",
      "\"unterminated",
      "/* unterminated",
  };
  for (const char* prefix : kPrefixes) {
    auto result = LoadTdl(prefix);
    EXPECT_FALSE(result.ok()) << "accepted: " << prefix;
  }
}

TEST(RobustnessTest, ExcessiveExpressionNestingReportsError) {
  // ~100k levels of parenthesization: a naive recursive-descent parser blows
  // the stack here; the depth guard must turn this into a ParseError instead.
  constexpr int kDepth = 100000;
  std::string deep = "method m (a: Int) -> Int { return ";
  deep.reserve(deep.size() + 2 * kDepth + 16);
  for (int i = 0; i < kDepth; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < kDepth; ++i) deep += ")";
  deep += "; }";
  auto ast = ParseTdl(deep);
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("maximum depth"), std::string::npos)
      << ast.status();
}

TEST(RobustnessTest, ExcessiveStatementNestingReportsError) {
  constexpr int kDepth = 100000;
  std::string body;
  body.reserve(14 * kDepth + 32);
  for (int i = 0; i < kDepth; ++i) body += "if (true) { ";
  body += "return 1;";
  for (int i = 0; i < kDepth; ++i) body += " }";
  std::string src = "method m (a: Int) -> Int { " + body + " return 0; }";
  auto ast = ParseTdl(src);
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("maximum depth"), std::string::npos)
      << ast.status();
}

TEST(RobustnessTest, UnclosedDeepNestingReportsErrorWithoutCrash) {
  // Open brackets with no closers: the depth guard fires and recovery must
  // still terminate at end-of-input instead of looping or crashing.
  std::string open = "method m (a: Int) -> Int { return ";
  for (int i = 0; i < 100000; ++i) open += "(";
  EXPECT_FALSE(ParseTdl(open).ok());
  std::string mixed = "method m (a: Int) -> Int { ";
  for (int i = 0; i < 50000; ++i) mixed += "if (true) { (";
  EXPECT_FALSE(ParseTdl(mixed).ok());
}

TEST(RobustnessTest, NestingJustUnderTheCapStillParses) {
  // The guard must not reject deep-but-legal inputs (cap is 1000).
  std::string deep = "method m (a: Int) -> Int { return ";
  for (int i = 0; i < 900; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 900; ++i) deep += ")";
  deep += "; }";
  auto ast = ParseTdl(deep);
  EXPECT_TRUE(ast.ok()) << ast.status();
}

TEST(RobustnessTest, DeeplyNestedIfChainsParse) {
  std::string body;
  for (int i = 0; i < 100; ++i) body += "if (true) { ";
  body += "return 1;";
  for (int i = 0; i < 100; ++i) body += " }";
  std::string src = "method m (a: Int) -> Int { " + body + " return 0; }";
  auto ast = ParseTdl(src);
  EXPECT_TRUE(ast.ok()) << ast.status();
}

}  // namespace
}  // namespace tyder
