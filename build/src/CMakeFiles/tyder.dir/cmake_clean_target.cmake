file(REMOVE_RECURSE
  "libtyder.a"
)
