
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/tyder.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/tyder.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/diff.cc" "src/CMakeFiles/tyder.dir/catalog/diff.cc.o" "gcc" "src/CMakeFiles/tyder.dir/catalog/diff.cc.o.d"
  "/root/repo/src/catalog/export_tdl.cc" "src/CMakeFiles/tyder.dir/catalog/export_tdl.cc.o" "gcc" "src/CMakeFiles/tyder.dir/catalog/export_tdl.cc.o.d"
  "/root/repo/src/catalog/serialize.cc" "src/CMakeFiles/tyder.dir/catalog/serialize.cc.o" "gcc" "src/CMakeFiles/tyder.dir/catalog/serialize.cc.o.d"
  "/root/repo/src/common/dag.cc" "src/CMakeFiles/tyder.dir/common/dag.cc.o" "gcc" "src/CMakeFiles/tyder.dir/common/dag.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tyder.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tyder.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/tyder.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/tyder.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/symbol.cc" "src/CMakeFiles/tyder.dir/common/symbol.cc.o" "gcc" "src/CMakeFiles/tyder.dir/common/symbol.cc.o.d"
  "/root/repo/src/core/algebra.cc" "src/CMakeFiles/tyder.dir/core/algebra.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/algebra.cc.o.d"
  "/root/repo/src/core/augment.cc" "src/CMakeFiles/tyder.dir/core/augment.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/augment.cc.o.d"
  "/root/repo/src/core/collapse.cc" "src/CMakeFiles/tyder.dir/core/collapse.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/collapse.cc.o.d"
  "/root/repo/src/core/factor_methods.cc" "src/CMakeFiles/tyder.dir/core/factor_methods.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/factor_methods.cc.o.d"
  "/root/repo/src/core/factor_state.cc" "src/CMakeFiles/tyder.dir/core/factor_state.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/factor_state.cc.o.d"
  "/root/repo/src/core/is_applicable.cc" "src/CMakeFiles/tyder.dir/core/is_applicable.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/is_applicable.cc.o.d"
  "/root/repo/src/core/projection.cc" "src/CMakeFiles/tyder.dir/core/projection.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/projection.cc.o.d"
  "/root/repo/src/core/revert.cc" "src/CMakeFiles/tyder.dir/core/revert.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/revert.cc.o.d"
  "/root/repo/src/core/verify.cc" "src/CMakeFiles/tyder.dir/core/verify.cc.o" "gcc" "src/CMakeFiles/tyder.dir/core/verify.cc.o.d"
  "/root/repo/src/instances/interp.cc" "src/CMakeFiles/tyder.dir/instances/interp.cc.o" "gcc" "src/CMakeFiles/tyder.dir/instances/interp.cc.o.d"
  "/root/repo/src/instances/object.cc" "src/CMakeFiles/tyder.dir/instances/object.cc.o" "gcc" "src/CMakeFiles/tyder.dir/instances/object.cc.o.d"
  "/root/repo/src/instances/store.cc" "src/CMakeFiles/tyder.dir/instances/store.cc.o" "gcc" "src/CMakeFiles/tyder.dir/instances/store.cc.o.d"
  "/root/repo/src/instances/store_serialize.cc" "src/CMakeFiles/tyder.dir/instances/store_serialize.cc.o" "gcc" "src/CMakeFiles/tyder.dir/instances/store_serialize.cc.o.d"
  "/root/repo/src/instances/value.cc" "src/CMakeFiles/tyder.dir/instances/value.cc.o" "gcc" "src/CMakeFiles/tyder.dir/instances/value.cc.o.d"
  "/root/repo/src/instances/view_materialize.cc" "src/CMakeFiles/tyder.dir/instances/view_materialize.cc.o" "gcc" "src/CMakeFiles/tyder.dir/instances/view_materialize.cc.o.d"
  "/root/repo/src/lang/analyzer.cc" "src/CMakeFiles/tyder.dir/lang/analyzer.cc.o" "gcc" "src/CMakeFiles/tyder.dir/lang/analyzer.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/tyder.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/tyder.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/diagnostics.cc" "src/CMakeFiles/tyder.dir/lang/diagnostics.cc.o" "gcc" "src/CMakeFiles/tyder.dir/lang/diagnostics.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/tyder.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/tyder.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/tyder.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/tyder.dir/lang/parser.cc.o.d"
  "/root/repo/src/lang/token.cc" "src/CMakeFiles/tyder.dir/lang/token.cc.o" "gcc" "src/CMakeFiles/tyder.dir/lang/token.cc.o.d"
  "/root/repo/src/methods/accessor_gen.cc" "src/CMakeFiles/tyder.dir/methods/accessor_gen.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/accessor_gen.cc.o.d"
  "/root/repo/src/methods/applicability.cc" "src/CMakeFiles/tyder.dir/methods/applicability.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/applicability.cc.o.d"
  "/root/repo/src/methods/consistency.cc" "src/CMakeFiles/tyder.dir/methods/consistency.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/consistency.cc.o.d"
  "/root/repo/src/methods/dispatch.cc" "src/CMakeFiles/tyder.dir/methods/dispatch.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/dispatch.cc.o.d"
  "/root/repo/src/methods/method.cc" "src/CMakeFiles/tyder.dir/methods/method.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/method.cc.o.d"
  "/root/repo/src/methods/precedence.cc" "src/CMakeFiles/tyder.dir/methods/precedence.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/precedence.cc.o.d"
  "/root/repo/src/methods/schema.cc" "src/CMakeFiles/tyder.dir/methods/schema.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/schema.cc.o.d"
  "/root/repo/src/methods/signature.cc" "src/CMakeFiles/tyder.dir/methods/signature.cc.o" "gcc" "src/CMakeFiles/tyder.dir/methods/signature.cc.o.d"
  "/root/repo/src/mir/builder.cc" "src/CMakeFiles/tyder.dir/mir/builder.cc.o" "gcc" "src/CMakeFiles/tyder.dir/mir/builder.cc.o.d"
  "/root/repo/src/mir/call_graph.cc" "src/CMakeFiles/tyder.dir/mir/call_graph.cc.o" "gcc" "src/CMakeFiles/tyder.dir/mir/call_graph.cc.o.d"
  "/root/repo/src/mir/dataflow.cc" "src/CMakeFiles/tyder.dir/mir/dataflow.cc.o" "gcc" "src/CMakeFiles/tyder.dir/mir/dataflow.cc.o.d"
  "/root/repo/src/mir/expr.cc" "src/CMakeFiles/tyder.dir/mir/expr.cc.o" "gcc" "src/CMakeFiles/tyder.dir/mir/expr.cc.o.d"
  "/root/repo/src/mir/printer.cc" "src/CMakeFiles/tyder.dir/mir/printer.cc.o" "gcc" "src/CMakeFiles/tyder.dir/mir/printer.cc.o.d"
  "/root/repo/src/mir/type_check.cc" "src/CMakeFiles/tyder.dir/mir/type_check.cc.o" "gcc" "src/CMakeFiles/tyder.dir/mir/type_check.cc.o.d"
  "/root/repo/src/objmodel/attribute.cc" "src/CMakeFiles/tyder.dir/objmodel/attribute.cc.o" "gcc" "src/CMakeFiles/tyder.dir/objmodel/attribute.cc.o.d"
  "/root/repo/src/objmodel/builtin_types.cc" "src/CMakeFiles/tyder.dir/objmodel/builtin_types.cc.o" "gcc" "src/CMakeFiles/tyder.dir/objmodel/builtin_types.cc.o.d"
  "/root/repo/src/objmodel/hierarchy_analysis.cc" "src/CMakeFiles/tyder.dir/objmodel/hierarchy_analysis.cc.o" "gcc" "src/CMakeFiles/tyder.dir/objmodel/hierarchy_analysis.cc.o.d"
  "/root/repo/src/objmodel/linearize.cc" "src/CMakeFiles/tyder.dir/objmodel/linearize.cc.o" "gcc" "src/CMakeFiles/tyder.dir/objmodel/linearize.cc.o.d"
  "/root/repo/src/objmodel/schema_printer.cc" "src/CMakeFiles/tyder.dir/objmodel/schema_printer.cc.o" "gcc" "src/CMakeFiles/tyder.dir/objmodel/schema_printer.cc.o.d"
  "/root/repo/src/objmodel/type.cc" "src/CMakeFiles/tyder.dir/objmodel/type.cc.o" "gcc" "src/CMakeFiles/tyder.dir/objmodel/type.cc.o.d"
  "/root/repo/src/objmodel/type_graph.cc" "src/CMakeFiles/tyder.dir/objmodel/type_graph.cc.o" "gcc" "src/CMakeFiles/tyder.dir/objmodel/type_graph.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/tyder.dir/query/query.cc.o" "gcc" "src/CMakeFiles/tyder.dir/query/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
