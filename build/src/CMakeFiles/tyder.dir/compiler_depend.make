# Empty compiler generated dependencies file for tyder.
# This may be replaced when dependencies are built.
