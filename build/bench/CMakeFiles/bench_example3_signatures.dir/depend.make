# Empty dependencies file for bench_example3_signatures.
# This may be replaced when dependencies are built.
