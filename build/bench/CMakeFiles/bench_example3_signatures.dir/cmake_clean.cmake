file(REMOVE_RECURSE
  "CMakeFiles/bench_example3_signatures.dir/bench_example3_signatures.cc.o"
  "CMakeFiles/bench_example3_signatures.dir/bench_example3_signatures.cc.o.d"
  "bench_example3_signatures"
  "bench_example3_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example3_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
