file(REMOVE_RECURSE
  "CMakeFiles/tyder_bench_workloads.dir/workloads.cc.o"
  "CMakeFiles/tyder_bench_workloads.dir/workloads.cc.o.d"
  "libtyder_bench_workloads.a"
  "libtyder_bench_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tyder_bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
