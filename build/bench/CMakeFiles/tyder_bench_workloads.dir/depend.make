# Empty dependencies file for tyder_bench_workloads.
# This may be replaced when dependencies are built.
