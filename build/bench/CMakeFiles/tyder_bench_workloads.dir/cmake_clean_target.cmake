file(REMOVE_RECURSE
  "libtyder_bench_workloads.a"
)
