file(REMOVE_RECURSE
  "CMakeFiles/bench_subtype_cache.dir/bench_subtype_cache.cc.o"
  "CMakeFiles/bench_subtype_cache.dir/bench_subtype_cache.cc.o.d"
  "bench_subtype_cache"
  "bench_subtype_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subtype_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
