# Empty compiler generated dependencies file for bench_subtype_cache.
# This may be replaced when dependencies are built.
