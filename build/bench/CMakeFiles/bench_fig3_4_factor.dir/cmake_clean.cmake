file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_4_factor.dir/bench_fig3_4_factor.cc.o"
  "CMakeFiles/bench_fig3_4_factor.dir/bench_fig3_4_factor.cc.o.d"
  "bench_fig3_4_factor"
  "bench_fig3_4_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_4_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
