# Empty dependencies file for bench_fig3_4_factor.
# This may be replaced when dependencies are built.
