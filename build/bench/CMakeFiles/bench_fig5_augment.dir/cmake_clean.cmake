file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_augment.dir/bench_fig5_augment.cc.o"
  "CMakeFiles/bench_fig5_augment.dir/bench_fig5_augment.cc.o.d"
  "bench_fig5_augment"
  "bench_fig5_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
