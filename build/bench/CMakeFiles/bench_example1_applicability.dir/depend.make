# Empty dependencies file for bench_example1_applicability.
# This may be replaced when dependencies are built.
