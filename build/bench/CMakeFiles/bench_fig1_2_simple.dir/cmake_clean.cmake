file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_2_simple.dir/bench_fig1_2_simple.cc.o"
  "CMakeFiles/bench_fig1_2_simple.dir/bench_fig1_2_simple.cc.o.d"
  "bench_fig1_2_simple"
  "bench_fig1_2_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_2_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
