# Empty dependencies file for bench_applicability_scale.
# This may be replaced when dependencies are built.
