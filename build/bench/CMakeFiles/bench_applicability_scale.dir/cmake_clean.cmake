file(REMOVE_RECURSE
  "CMakeFiles/bench_applicability_scale.dir/bench_applicability_scale.cc.o"
  "CMakeFiles/bench_applicability_scale.dir/bench_applicability_scale.cc.o.d"
  "bench_applicability_scale"
  "bench_applicability_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_applicability_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
