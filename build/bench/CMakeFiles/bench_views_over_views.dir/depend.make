# Empty dependencies file for bench_views_over_views.
# This may be replaced when dependencies are built.
