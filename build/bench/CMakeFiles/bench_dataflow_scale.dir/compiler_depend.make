# Empty compiler generated dependencies file for bench_dataflow_scale.
# This may be replaced when dependencies are built.
