file(REMOVE_RECURSE
  "CMakeFiles/bench_dataflow_scale.dir/bench_dataflow_scale.cc.o"
  "CMakeFiles/bench_dataflow_scale.dir/bench_dataflow_scale.cc.o.d"
  "bench_dataflow_scale"
  "bench_dataflow_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataflow_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
