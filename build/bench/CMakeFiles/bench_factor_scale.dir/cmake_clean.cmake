file(REMOVE_RECURSE
  "CMakeFiles/bench_factor_scale.dir/bench_factor_scale.cc.o"
  "CMakeFiles/bench_factor_scale.dir/bench_factor_scale.cc.o.d"
  "bench_factor_scale"
  "bench_factor_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_factor_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
