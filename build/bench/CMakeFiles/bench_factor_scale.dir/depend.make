# Empty dependencies file for bench_factor_scale.
# This may be replaced when dependencies are built.
