# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/objmodel_test[1]_include.cmake")
include("/root/repo/build/tests/methods_test[1]_include.cmake")
include("/root/repo/build/tests/mir_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/instances_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
