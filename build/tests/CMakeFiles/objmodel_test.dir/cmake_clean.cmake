file(REMOVE_RECURSE
  "CMakeFiles/objmodel_test.dir/objmodel/hierarchy_analysis_test.cc.o"
  "CMakeFiles/objmodel_test.dir/objmodel/hierarchy_analysis_test.cc.o.d"
  "CMakeFiles/objmodel_test.dir/objmodel/schema_printer_test.cc.o"
  "CMakeFiles/objmodel_test.dir/objmodel/schema_printer_test.cc.o.d"
  "CMakeFiles/objmodel_test.dir/objmodel/subtype_cache_test.cc.o"
  "CMakeFiles/objmodel_test.dir/objmodel/subtype_cache_test.cc.o.d"
  "CMakeFiles/objmodel_test.dir/objmodel/type_graph_test.cc.o"
  "CMakeFiles/objmodel_test.dir/objmodel/type_graph_test.cc.o.d"
  "objmodel_test"
  "objmodel_test.pdb"
  "objmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
