
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/algebra_test.cc" "tests/CMakeFiles/core_test.dir/core/algebra_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/algebra_test.cc.o.d"
  "/root/repo/tests/core/augment_test.cc" "tests/CMakeFiles/core_test.dir/core/augment_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/augment_test.cc.o.d"
  "/root/repo/tests/core/collapse_test.cc" "tests/CMakeFiles/core_test.dir/core/collapse_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/collapse_test.cc.o.d"
  "/root/repo/tests/core/factor_methods_test.cc" "tests/CMakeFiles/core_test.dir/core/factor_methods_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/factor_methods_test.cc.o.d"
  "/root/repo/tests/core/factor_state_test.cc" "tests/CMakeFiles/core_test.dir/core/factor_state_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/factor_state_test.cc.o.d"
  "/root/repo/tests/core/is_applicable_test.cc" "tests/CMakeFiles/core_test.dir/core/is_applicable_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/is_applicable_test.cc.o.d"
  "/root/repo/tests/core/projection_test.cc" "tests/CMakeFiles/core_test.dir/core/projection_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/projection_test.cc.o.d"
  "/root/repo/tests/core/rename_test.cc" "tests/CMakeFiles/core_test.dir/core/rename_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rename_test.cc.o.d"
  "/root/repo/tests/core/revert_test.cc" "tests/CMakeFiles/core_test.dir/core/revert_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/revert_test.cc.o.d"
  "/root/repo/tests/core/verify_test.cc" "tests/CMakeFiles/core_test.dir/core/verify_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/verify_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tyder.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/tyder_testing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
