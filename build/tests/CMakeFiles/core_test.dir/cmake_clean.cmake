file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/algebra_test.cc.o"
  "CMakeFiles/core_test.dir/core/algebra_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/augment_test.cc.o"
  "CMakeFiles/core_test.dir/core/augment_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/collapse_test.cc.o"
  "CMakeFiles/core_test.dir/core/collapse_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/factor_methods_test.cc.o"
  "CMakeFiles/core_test.dir/core/factor_methods_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/factor_state_test.cc.o"
  "CMakeFiles/core_test.dir/core/factor_state_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/is_applicable_test.cc.o"
  "CMakeFiles/core_test.dir/core/is_applicable_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/projection_test.cc.o"
  "CMakeFiles/core_test.dir/core/projection_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rename_test.cc.o"
  "CMakeFiles/core_test.dir/core/rename_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/revert_test.cc.o"
  "CMakeFiles/core_test.dir/core/revert_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/verify_test.cc.o"
  "CMakeFiles/core_test.dir/core/verify_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
