file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration/behavior_preservation_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/behavior_preservation_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/full_lifecycle_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/full_lifecycle_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/paper_examples_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/paper_examples_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/tdl_end_to_end_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/tdl_end_to_end_test.cc.o.d"
  "CMakeFiles/integration_test.dir/integration/views_over_views_test.cc.o"
  "CMakeFiles/integration_test.dir/integration/views_over_views_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
  "integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
