file(REMOVE_RECURSE
  "CMakeFiles/tyder_testing.dir/testing/fixtures.cc.o"
  "CMakeFiles/tyder_testing.dir/testing/fixtures.cc.o.d"
  "CMakeFiles/tyder_testing.dir/testing/random_schema.cc.o"
  "CMakeFiles/tyder_testing.dir/testing/random_schema.cc.o.d"
  "libtyder_testing.a"
  "libtyder_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tyder_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
