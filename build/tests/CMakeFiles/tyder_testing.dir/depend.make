# Empty dependencies file for tyder_testing.
# This may be replaced when dependencies are built.
