file(REMOVE_RECURSE
  "libtyder_testing.a"
)
