
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/instances/interp_test.cc" "tests/CMakeFiles/instances_test.dir/instances/interp_test.cc.o" "gcc" "tests/CMakeFiles/instances_test.dir/instances/interp_test.cc.o.d"
  "/root/repo/tests/instances/store_serialize_test.cc" "tests/CMakeFiles/instances_test.dir/instances/store_serialize_test.cc.o" "gcc" "tests/CMakeFiles/instances_test.dir/instances/store_serialize_test.cc.o.d"
  "/root/repo/tests/instances/store_test.cc" "tests/CMakeFiles/instances_test.dir/instances/store_test.cc.o" "gcc" "tests/CMakeFiles/instances_test.dir/instances/store_test.cc.o.d"
  "/root/repo/tests/instances/view_materialize_test.cc" "tests/CMakeFiles/instances_test.dir/instances/view_materialize_test.cc.o" "gcc" "tests/CMakeFiles/instances_test.dir/instances/view_materialize_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tyder.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/tyder_testing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
