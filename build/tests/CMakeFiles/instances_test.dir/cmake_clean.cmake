file(REMOVE_RECURSE
  "CMakeFiles/instances_test.dir/instances/interp_test.cc.o"
  "CMakeFiles/instances_test.dir/instances/interp_test.cc.o.d"
  "CMakeFiles/instances_test.dir/instances/store_serialize_test.cc.o"
  "CMakeFiles/instances_test.dir/instances/store_serialize_test.cc.o.d"
  "CMakeFiles/instances_test.dir/instances/store_test.cc.o"
  "CMakeFiles/instances_test.dir/instances/store_test.cc.o.d"
  "CMakeFiles/instances_test.dir/instances/view_materialize_test.cc.o"
  "CMakeFiles/instances_test.dir/instances/view_materialize_test.cc.o.d"
  "instances_test"
  "instances_test.pdb"
  "instances_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instances_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
