file(REMOVE_RECURSE
  "CMakeFiles/federated_integration.dir/federated_integration.cpp.o"
  "CMakeFiles/federated_integration.dir/federated_integration.cpp.o.d"
  "federated_integration"
  "federated_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
