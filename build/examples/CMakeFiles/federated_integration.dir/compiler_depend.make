# Empty compiler generated dependencies file for federated_integration.
# This may be replaced when dependencies are built.
