file(REMOVE_RECURSE
  "CMakeFiles/payroll_views.dir/payroll_views.cpp.o"
  "CMakeFiles/payroll_views.dir/payroll_views.cpp.o.d"
  "payroll_views"
  "payroll_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
