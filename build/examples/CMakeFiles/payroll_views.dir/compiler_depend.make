# Empty compiler generated dependencies file for payroll_views.
# This may be replaced when dependencies are built.
