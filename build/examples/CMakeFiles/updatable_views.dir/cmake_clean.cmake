file(REMOVE_RECURSE
  "CMakeFiles/updatable_views.dir/updatable_views.cpp.o"
  "CMakeFiles/updatable_views.dir/updatable_views.cpp.o.d"
  "updatable_views"
  "updatable_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updatable_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
