# Empty compiler generated dependencies file for updatable_views.
# This may be replaced when dependencies are built.
