# Empty dependencies file for tyderc.
# This may be replaced when dependencies are built.
