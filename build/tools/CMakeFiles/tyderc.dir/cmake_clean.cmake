file(REMOVE_RECURSE
  "CMakeFiles/tyderc.dir/tyderc.cc.o"
  "CMakeFiles/tyderc.dir/tyderc.cc.o.d"
  "tyderc"
  "tyderc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tyderc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
