// Transparency of the refactoring at dispatch time: the paper requires
// existing types to keep the same behavior; this bench quantifies the *cost*
// side — how much slower multi-method dispatch gets once surrogate types
// lengthen the class precedence lists. Also measures interpreter call
// throughput before and after a derivation.

#include <benchmark/benchmark.h>

#include "core/projection.h"
#include "instances/interp.h"
#include "methods/dispatch.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

using tyder::testing::BuildPersonEmployee;
using tyder::testing::PersonEmployeeFixture;

void BM_DispatchOriginal(benchmark::State& state) {
  auto fx = BuildPersonEmployee();
  if (!fx.ok()) {
    state.SkipWithError(fx.status().ToString().c_str());
    return;
  }
  auto age = fx->schema.FindGenericFunction("age");
  for (auto _ : state) {
    auto m = Dispatch(fx->schema, *age, {fx->employee});
    benchmark::DoNotOptimize(m.ok());
  }
}
BENCHMARK(BM_DispatchOriginal);

void BM_DispatchAfterDerivation(benchmark::State& state) {
  auto fx = BuildPersonEmployee();
  if (!fx.ok()) {
    state.SkipWithError(fx.status().ToString().c_str());
    return;
  }
  auto derived = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  if (!derived.ok()) {
    state.SkipWithError(derived.status().ToString().c_str());
    return;
  }
  auto age = fx->schema.FindGenericFunction("age");
  for (auto _ : state) {
    auto m = Dispatch(fx->schema, *age, {fx->employee});
    benchmark::DoNotOptimize(m.ok());
  }
}
BENCHMARK(BM_DispatchAfterDerivation);

void BM_DispatchOnDerivedType(benchmark::State& state) {
  auto fx = BuildPersonEmployee();
  if (!fx.ok()) {
    state.SkipWithError(fx.status().ToString().c_str());
    return;
  }
  auto derived = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  if (!derived.ok()) {
    state.SkipWithError(derived.status().ToString().c_str());
    return;
  }
  auto age = fx->schema.FindGenericFunction("age");
  for (auto _ : state) {
    auto m = Dispatch(fx->schema, *age, {derived->derived});
    benchmark::DoNotOptimize(m.ok());
  }
}
BENCHMARK(BM_DispatchOnDerivedType);

void InterpreterThroughput(benchmark::State& state, bool derive_first) {
  auto fx = BuildPersonEmployee();
  if (!fx.ok()) {
    state.SkipWithError(fx.status().ToString().c_str());
    return;
  }
  if (derive_first) {
    auto derived = DeriveProjectionByName(
        fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
        "EmployeeView");
    if (!derived.ok()) {
      state.SkipWithError(derived.status().ToString().c_str());
      return;
    }
  }
  ObjectStore store;
  auto obj = store.CreateObject(fx->schema, fx->employee);
  (void)store.SetSlot(*obj, fx->date_of_birth, Value::Int(1990));
  (void)store.SetSlot(*obj, fx->pay_rate, Value::Float(55));
  (void)store.SetSlot(*obj, fx->hrs_worked, Value::Float(40));
  Interpreter interp(fx->schema, &store);
  for (auto _ : state) {
    auto income = interp.CallByName("income", {Value::Object(*obj)});
    auto promote = interp.CallByName("promote", {Value::Object(*obj)});
    benchmark::DoNotOptimize(income.ok() && promote.ok());
  }
}

void BM_InterpreterOriginal(benchmark::State& state) {
  InterpreterThroughput(state, false);
}
BENCHMARK(BM_InterpreterOriginal);

void BM_InterpreterAfterDerivation(benchmark::State& state) {
  InterpreterThroughput(state, true);
}
BENCHMARK(BM_InterpreterAfterDerivation);

}  // namespace
}  // namespace tyder::bench
