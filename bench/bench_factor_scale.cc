// Scalability of FactorState (Section 5.1) and the full derivation pipeline
// over deep chains and wide/diamond-heavy hierarchies. Each iteration clones
// the schema (derivations mutate in place), so a baseline that only clones is
// reported for reference.

#include <benchmark/benchmark.h>

#include "core/projection.h"
#include "workloads.h"

namespace tyder::bench {
namespace {

void RunProjection(benchmark::State& state, const Schema& pristine,
                   TypeId source, const std::vector<AttrId>& attrs,
                   bool verify) {
  int64_t surrogates = 0;
  for (auto _ : state) {
    Schema schema = pristine;
    ProjectionSpec spec;
    spec.source = source;
    spec.attributes = attrs;
    spec.view_name = "BenchView";
    ProjectionOptions options;
    options.verify = verify;
    auto result = DeriveProjection(schema, spec, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    surrogates = static_cast<int64_t>(result->surrogates.created.size());
    benchmark::DoNotOptimize(result->derived);
  }
  state.counters["surrogates"] = static_cast<double>(surrogates);
}

// Deep linear chain: FactorState recursion depth == chain depth.
void BM_FactorStateChainDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto schema = BuildChainSchema(depth);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("T0");
  // Keep every attribute: every chain type gets factored.
  RunProjection(state, *schema, *source,
                schema->types().CumulativeAttributes(*source),
                /*verify=*/false);
}
BENCHMARK(BM_FactorStateChainDepth)->RangeMultiplier(2)->Range(4, 128);

// Wide fan-in: source inherits from `width` unrelated supertypes.
void BM_FactorStateFanIn(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  auto schema = BuildWideSchema(width);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("Src");
  RunProjection(state, *schema, *source,
                schema->types().CumulativeAttributes(*source),
                /*verify=*/false);
}
BENCHMARK(BM_FactorStateFanIn)->RangeMultiplier(2)->Range(4, 128);

// Diamond-heavy binary-tree hierarchy (2^depth - 1 types).
void BM_FactorStateTree(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto schema = BuildTreeSchema(depth);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("N0_0");
  RunProjection(state, *schema, *source,
                schema->types().CumulativeAttributes(*source),
                /*verify=*/false);
}
BENCHMARK(BM_FactorStateTree)->DenseRange(3, 8);

// Cost of the built-in behavior-preservation verifier (ablation: the same
// chain with and without verify).
void BM_DerivationWithVerifier(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto schema = BuildChainSchema(depth);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("T0");
  RunProjection(state, *schema, *source,
                schema->types().CumulativeAttributes(*source),
                /*verify=*/true);
}
BENCHMARK(BM_DerivationWithVerifier)->RangeMultiplier(2)->Range(4, 64);

// Baseline: schema clone alone, to subtract from the numbers above.
void BM_SchemaCloneBaseline(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto schema = BuildChainSchema(depth);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Schema copy = *schema;
    benchmark::DoNotOptimize(copy.NumMethods());
  }
}
BENCHMARK(BM_SchemaCloneBaseline)->RangeMultiplier(2)->Range(4, 128);

}  // namespace
}  // namespace tyder::bench
