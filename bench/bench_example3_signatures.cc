// Reproduces Example 3 (Section 6.2): the factored method signatures after
// the full derivation — v1(Ã, C̃), u3(B̃), w2(C̃), get_h2(B̃) — and that no
// inapplicable method was touched.

#include <iostream>

#include "core/projection.h"
#include "repro_util.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

int Run() {
  ReproCheck check("Example 3: factored method signatures");

  auto fx = testing::BuildExample1();
  if (!fx.ok()) {
    std::cerr << "fixture failed: " << fx.status() << "\n";
    return 1;
  }
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  auto result = DeriveProjection(fx->schema, spec);
  if (!result.ok()) {
    std::cerr << "derivation failed: " << result.status() << "\n";
    return 1;
  }

  auto sig = [&](MethodId m) {
    const Method& method = fx->schema.method(m);
    return SignatureToString(fx->schema.types(),
                             fx->schema.gf(method.gf).name.view(), method.sig);
  };
  check.Expect("v1", "v(ProjA, ~C) -> Void", sig(fx->v1));
  check.Expect("u3", "u(~B) -> Void", sig(fx->u3));
  check.Expect("w2", "w(~C) -> Void", sig(fx->w2));
  check.Expect("get_h2", "get_h2(~B) -> Int", sig(fx->get_h2));

  check.Expect("u1 untouched", "u(A) -> Void", sig(fx->u1));
  check.Expect("v2 untouched", "v(B, C) -> Void", sig(fx->v2));
  check.Expect("x1 untouched", "x(A, B) -> Void", sig(fx->x1));
  check.Expect("y1 untouched", "y(A, B) -> Void", sig(fx->y1));
  check.Expect("get_a1 untouched", "get_a1(A) -> Int", sig(fx->get_a1));
  return check.ExitCode();
}

}  // namespace
}  // namespace tyder::bench

int main() { return tyder::bench::Run(); }
