// Throughput of the static analyses underpinning the derivation pipeline:
// whole-schema type checking, per-method def-use flow analysis, and
// relevant-call extraction, on randomly generated schemas of growing size.

#include <benchmark/benchmark.h>

#include "mir/call_graph.h"
#include "mir/dataflow.h"
#include "mir/type_check.h"
#include "testing/random_schema.h"

namespace tyder::bench {
namespace {

tyder::testing::RandomSchemaOptions OptionsFor(int scale) {
  tyder::testing::RandomSchemaOptions options;
  options.seed = 42;
  options.num_types = scale;
  options.num_general_methods = scale * 2;
  options.max_stmts_per_body = 6;
  return options;
}

void BM_TypeCheckSchema(benchmark::State& state) {
  auto schema =
      tyder::testing::GenerateRandomSchema(OptionsFor(static_cast<int>(state.range(0))));
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Status status = TypeCheckSchema(*schema);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.counters["methods"] = static_cast<double>(schema->NumMethods());
}
BENCHMARK(BM_TypeCheckSchema)->RangeMultiplier(2)->Range(8, 64);

void BM_FlowAnalysisAllMethods(benchmark::State& state) {
  auto schema =
      tyder::testing::GenerateRandomSchema(OptionsFor(static_cast<int>(state.range(0))));
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    for (MethodId m = 0; m < schema->NumMethods(); ++m) {
      auto flow = AnalyzeFlow(*schema, m);
      if (!flow.ok()) {
        state.SkipWithError(flow.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(flow->var_reached_by.size());
    }
  }
  state.counters["methods"] = static_cast<double>(schema->NumMethods());
}
BENCHMARK(BM_FlowAnalysisAllMethods)->RangeMultiplier(2)->Range(8, 64);

void BM_RelevantCallExtraction(benchmark::State& state) {
  auto schema =
      tyder::testing::GenerateRandomSchema(OptionsFor(static_cast<int>(state.range(0))));
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  TypeId source = kInvalidType;
  std::vector<AttrId> attrs;
  if (!tyder::testing::PickRandomProjection(*schema, 7, &source, &attrs)) {
    state.SkipWithError("no projectable type");
    return;
  }
  for (auto _ : state) {
    for (MethodId m = 0; m < schema->NumMethods(); ++m) {
      auto calls = ExtractRelevantCalls(*schema, m, source);
      if (!calls.ok()) {
        state.SkipWithError(calls.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(calls->size());
    }
  }
}
BENCHMARK(BM_RelevantCallExtraction)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace tyder::bench
