// Durability cost (src/storage/): what an fsynced WAL append adds to a
// committed mutation, what snapshot compaction costs, and how recovery time
// scales with the number of log records that must be replayed. Each append
// is one write(2) plus one fsync(2), so WalAppend is dominated by the
// filesystem's sync latency — docs/PERFORMANCE.md quotes these numbers.

#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "storage/durable_catalog.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_bench_wal_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// The raw unit of durability: append one record and fsync it.
void BM_WalAppend(benchmark::State& state) {
  std::string dir = FreshDir("append");
  auto writer = storage::WalWriter::Open(dir + "/wal.log");
  if (!writer.ok()) {
    state.SkipWithError(writer.status().ToString().c_str());
    return;
  }
  uint64_t lsn = 0;
  std::string payload = "project EmployeeView Employee SSN,pay_rate verify";
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer->Append(++lsn, payload).ok());
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend);

// A logged derivation end to end: derive + append + fsync, against the
// in-memory Catalog::DefineProjectionView cost visible in bench_transaction.
void BM_LoggedDerivation(benchmark::State& state) {
  std::string dir = FreshDir("logged");
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    auto fx = testing::BuildPersonEmployee();
    auto db = storage::DurableCatalog::Open(dir);
    if (!fx.ok() || !db.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    if (!db->Seed(Catalog(std::move(fx->schema))).ok()) {
      state.SkipWithError("seed failed");
      return;
    }
    state.ResumeTiming();
    auto view = db->DefineProjectionView("EmployeeView", "Employee",
                                         {"SSN", "date_of_birth", "pay_rate"});
    benchmark::DoNotOptimize(view.ok());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_LoggedDerivation);

// --- Env indirection cost (PR 7) ------------------------------------------
//
// Every WAL byte now routes through the virtual storage::Env interface. This
// pair isolates what that indirection adds to an un-synced append: both
// variants issue the same write(2) into the page cache (no fsync, so sync
// latency cannot mask the dispatch), in batches of kAppendBatch with the file
// truncated between batches so the benchmark does not fill /tmp. Dispatch
// must stay within 2% of Raw — docs/PERFORMANCE.md quotes the pair.

constexpr int kAppendBatch = 4096;
constexpr std::string_view kAppendPayload =
    "project EmployeeView Employee SSN,pay_rate verify";

// Through the interface: guard checks + failpoint probe + virtual hop.
void BM_EnvAppendDispatch(benchmark::State& state) {
  std::string dir = FreshDir("env_dispatch");
  auto file = storage::Env::Posix().OpenAppendable(dir + "/wal.log");
  if (!file.ok()) {
    state.SkipWithError(file.status().ToString().c_str());
    return;
  }
  while (state.KeepRunningBatch(kAppendBatch)) {
    for (int i = 0; i < kAppendBatch; ++i) {
      benchmark::DoNotOptimize((*file)->Append(kAppendPayload).ok());
    }
    state.PauseTiming();
    if (!(*file)->Truncate(0).ok()) {
      state.SkipWithError("truncate failed");
      return;
    }
    state.ResumeTiming();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(kAppendPayload.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_EnvAppendDispatch);

// The floor: a bare write(2) loop with the same EINTR/short-write handling
// PosixEnv uses, minus the interface.
void BM_EnvAppendRaw(benchmark::State& state) {
  std::string dir = FreshDir("env_raw");
  int fd = ::open((dir + "/wal.log").c_str(),
                  O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    state.SkipWithError("open failed");
    return;
  }
  while (state.KeepRunningBatch(kAppendBatch)) {
    for (int i = 0; i < kAppendBatch; ++i) {
      const char* p = kAppendPayload.data();
      size_t left = kAppendPayload.size();
      while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
          if (errno == EINTR) continue;
          state.SkipWithError("write failed");
          ::close(fd);
          return;
        }
        p += n;
        left -= static_cast<size_t>(n);
      }
      benchmark::DoNotOptimize(left);
    }
    state.PauseTiming();
    if (::ftruncate(fd, 0) != 0) {
      state.SkipWithError("ftruncate failed");
      ::close(fd);
      return;
    }
    state.ResumeTiming();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(kAppendPayload.size()));
  ::close(fd);
  fs::remove_all(dir);
}
BENCHMARK(BM_EnvAppendRaw);

// Snapshot + log truncation: the amortized cost of bounding recovery time.
void BM_Compact(benchmark::State& state) {
  std::string dir = FreshDir("compact");
  auto fx = testing::BuildPersonEmployee();
  auto db = storage::DurableCatalog::Open(dir);
  if (!fx.ok() || !db.ok() ||
      !db->Seed(Catalog(std::move(fx->schema))).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Compact().ok());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_Compact);

// Recovery vs. log length: open a directory whose WAL holds N derivation
// records (alternating define/drop so the catalog stays small while the
// replay work grows linearly).
void BM_Recovery(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  std::string dir = FreshDir("recovery_" + std::to_string(records));
  {
    auto fx = testing::BuildPersonEmployee();
    auto db = storage::DurableCatalog::Open(dir);
    if (!fx.ok() || !db.ok() ||
        !db->Seed(Catalog(std::move(fx->schema))).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    for (int i = 0; i < records / 2; ++i) {
      // Dropped views leave tombstone types that keep owning the name, so
      // every round needs a fresh one.
      std::string name = "V" + std::to_string(i);
      if (!db->DefineProjectionView(name, "Employee", {"SSN"}).ok() ||
          !db->DropView(name).ok()) {
        state.SkipWithError("log construction failed");
        return;
      }
    }
  }
  for (auto _ : state) {
    auto db = storage::DurableCatalog::Open(dir);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(db->recovery().replayed_records);
  }
  state.SetItemsProcessed(state.iterations() * records);
  fs::remove_all(dir);
}
BENCHMARK(BM_Recovery)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace tyder::bench
