// Ablation: the memoized subtype-reachability cache vs. per-query BFS, on
// the operations that hammer IsSubtype — full dispatch sweeps and whole
// derivations over tree-shaped hierarchies.

#include <benchmark/benchmark.h>

#include "core/projection.h"
#include "methods/precedence.h"
#include "workloads.h"

namespace tyder::bench {
namespace {

void DispatchSweep(benchmark::State& state, bool cache) {
  int depth = static_cast<int>(state.range(0));
  auto schema = BuildTreeSchema(depth);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  schema->types().set_subtype_cache_enabled(cache);
  size_t n = schema->types().NumTypes();
  for (auto _ : state) {
    for (GfId g = 0; g < schema->NumGenericFunctions(); ++g) {
      for (TypeId t = 0; t < n; ++t) {
        auto m = MostSpecificApplicable(*schema, g, {t});
        benchmark::DoNotOptimize(m.ok());
      }
    }
  }
  state.counters["types"] = static_cast<double>(n);
}

void BM_DispatchSweepCached(benchmark::State& state) {
  DispatchSweep(state, true);
}
BENCHMARK(BM_DispatchSweepCached)->DenseRange(3, 7);

void BM_DispatchSweepUncached(benchmark::State& state) {
  DispatchSweep(state, false);
}
BENCHMARK(BM_DispatchSweepUncached)->DenseRange(3, 7);

void Derivation(benchmark::State& state, bool cache) {
  int depth = static_cast<int>(state.range(0));
  auto schema = BuildTreeSchema(depth);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("N0_0");
  std::vector<AttrId> attrs = schema->types().CumulativeAttributes(*source);
  for (auto _ : state) {
    Schema copy = *schema;
    copy.types().set_subtype_cache_enabled(cache);
    ProjectionSpec spec;
    spec.source = *source;
    spec.attributes = attrs;
    spec.view_name = "CacheView";
    ProjectionOptions options;
    options.verify = false;
    auto result = DeriveProjection(copy, spec, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->derived);
  }
}

void BM_DerivationCached(benchmark::State& state) { Derivation(state, true); }
BENCHMARK(BM_DerivationCached)->DenseRange(3, 7);

void BM_DerivationUncached(benchmark::State& state) {
  Derivation(state, false);
}
BENCHMARK(BM_DerivationUncached)->DenseRange(3, 7);

}  // namespace
}  // namespace tyder::bench
