#include "workloads.h"

#include "methods/accessor_gen.h"
#include "mir/builder.h"
#include "mir/type_check.h"

namespace tyder::bench {

namespace {

Result<MethodId> AddChainMethod(Schema& schema, const std::string& label,
                                GfId gf, TypeId formal, ExprPtr body) {
  Method m;
  m.label = Symbol::Intern(label);
  m.gf = gf;
  m.kind = MethodKind::kGeneral;
  m.sig = Signature{{formal}, schema.builtins().void_type};
  m.param_names = {Symbol::Intern("p")};
  m.body = std::move(body);
  return schema.AddMethod(std::move(m));
}

}  // namespace

Result<Schema> BuildChainSchema(int depth) {
  TYDER_ASSIGN_OR_RETURN(Schema schema, Schema::Create());
  TypeId int_t = schema.builtins().int_type;
  std::vector<TypeId> types;
  std::vector<AttrId> attrs;
  for (int i = 0; i < depth; ++i) {
    TYDER_ASSIGN_OR_RETURN(
        TypeId t,
        schema.types().DeclareType("T" + std::to_string(i), TypeKind::kUser));
    if (i > 0) {
      // T_{i-1} is the subtype: chain grows upward from T0.
      TYDER_RETURN_IF_ERROR(schema.types().AddSupertype(types.back(), t));
    }
    TYDER_ASSIGN_OR_RETURN(
        AttrId a,
        schema.types().DeclareAttribute(t, "a" + std::to_string(i), int_t));
    TYDER_RETURN_IF_ERROR(GenerateReader(schema, a).status());
    types.push_back(t);
    attrs.push_back(a);
  }
  // Generic functions first so bodies can call forward.
  std::vector<GfId> gfs;
  for (int i = 0; i < depth; ++i) {
    TYDER_ASSIGN_OR_RETURN(
        GfId gf, schema.DeclareGenericFunction("m" + std::to_string(i), 1));
    gfs.push_back(gf);
  }
  for (int i = 0; i < depth; ++i) {
    ExprPtr call;
    if (i + 1 < depth) {
      call = mir::Call(gfs[i + 1], {mir::Param(0)});
    } else {
      MethodId reader = schema.ReaderOf(attrs.back());
      call = mir::Call(schema.method(reader).gf, {mir::Param(0)});
    }
    TYDER_RETURN_IF_ERROR(AddChainMethod(schema, "m" + std::to_string(i) + "_impl",
                                         gfs[i], types[0],
                                         mir::Seq({mir::ExprStmt(call)}))
                              .status());
  }
  TYDER_RETURN_IF_ERROR(TypeCheckSchema(schema));
  return schema;
}

Result<Schema> BuildWideSchema(int width) {
  TYDER_ASSIGN_OR_RETURN(Schema schema, Schema::Create());
  TypeId int_t = schema.builtins().int_type;
  TYDER_ASSIGN_OR_RETURN(TypeId src,
                         schema.types().DeclareType("Src", TypeKind::kUser));
  for (int i = 0; i < width; ++i) {
    TYDER_ASSIGN_OR_RETURN(
        TypeId s,
        schema.types().DeclareType("S" + std::to_string(i), TypeKind::kUser));
    TYDER_RETURN_IF_ERROR(schema.types().AddSupertype(src, s));
    TYDER_ASSIGN_OR_RETURN(
        AttrId a,
        schema.types().DeclareAttribute(s, "w" + std::to_string(i), int_t));
    TYDER_ASSIGN_OR_RETURN(MethodId reader, GenerateReader(schema, a));
    TYDER_ASSIGN_OR_RETURN(
        GfId gf, schema.DeclareGenericFunction("f" + std::to_string(i), 1));
    TYDER_RETURN_IF_ERROR(
        AddChainMethod(schema, "f" + std::to_string(i) + "_impl", gf, s,
                       mir::Seq({mir::ExprStmt(mir::Call(
                           schema.method(reader).gf, {mir::Param(0)}))}))
            .status());
  }
  TYDER_RETURN_IF_ERROR(TypeCheckSchema(schema));
  return schema;
}

Result<Schema> BuildCyclicSchema(int n) {
  TYDER_ASSIGN_OR_RETURN(Schema schema, Schema::Create());
  TypeId int_t = schema.builtins().int_type;
  TYDER_ASSIGN_OR_RETURN(TypeId t,
                         schema.types().DeclareType("T", TypeKind::kUser));
  TYDER_ASSIGN_OR_RETURN(AttrId kept,
                         schema.types().DeclareAttribute(t, "kept", int_t));
  TYDER_ASSIGN_OR_RETURN(MethodId reader, GenerateReader(schema, kept));
  std::vector<GfId> gfs;
  for (int i = 0; i < n; ++i) {
    TYDER_ASSIGN_OR_RETURN(
        GfId gf, schema.DeclareGenericFunction("c" + std::to_string(i), 1));
    gfs.push_back(gf);
  }
  for (int i = 0; i < n; ++i) {
    // Each method calls the next around the ring and also reads the kept
    // attribute, so the whole ring resolves applicable after one optimistic
    // cycle assumption.
    TYDER_RETURN_IF_ERROR(
        AddChainMethod(
            schema, "c" + std::to_string(i) + "_impl", gfs[i], t,
            mir::Seq({mir::ExprStmt(mir::Call(gfs[(i + 1) % n],
                                              {mir::Param(0)})),
                      mir::ExprStmt(mir::Call(schema.method(reader).gf,
                                              {mir::Param(0)}))}))
            .status());
  }
  TYDER_RETURN_IF_ERROR(TypeCheckSchema(schema));
  return schema;
}

Result<Schema> BuildTreeSchema(int depth) {
  TYDER_ASSIGN_OR_RETURN(Schema schema, Schema::Create());
  TypeId int_t = schema.builtins().int_type;
  // Level 0 is the root source type; each node has two supertypes at the
  // next level up; attributes live at the top level.
  int total_levels = depth;
  std::vector<std::vector<TypeId>> levels(total_levels);
  for (int level = total_levels - 1; level >= 0; --level) {
    int count = 1 << level;
    for (int i = 0; i < count; ++i) {
      std::string name = "N" + std::to_string(level) + "_" + std::to_string(i);
      TYDER_ASSIGN_OR_RETURN(
          TypeId t, schema.types().DeclareType(name, TypeKind::kUser));
      levels[level].push_back(t);
      if (level + 1 < total_levels) {
        TYDER_RETURN_IF_ERROR(
            schema.types().AddSupertype(t, levels[level + 1][2 * i]));
        TYDER_RETURN_IF_ERROR(
            schema.types().AddSupertype(t, levels[level + 1][2 * i + 1]));
      } else {
        TYDER_RETURN_IF_ERROR(schema.types()
                                  .DeclareAttribute(t, "leaf" + name, int_t)
                                  .status());
      }
    }
  }
  TYDER_RETURN_IF_ERROR(GenerateAllAccessors(schema, /*with_mutators=*/false));
  return schema;
}

std::vector<AttrId> FirstAttributes(const Schema& schema, TypeId source,
                                    size_t keep) {
  std::vector<AttrId> attrs = schema.types().CumulativeAttributes(source);
  if (attrs.size() > keep) attrs.resize(keep);
  return attrs;
}

}  // namespace tyder::bench
