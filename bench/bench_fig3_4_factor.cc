// Reproduces Figure 3 (original hierarchy), Example 2 (the FactorState call
// sequence) and Figure 4 (the factored hierarchy after Π_{a2,e2,h2} A).

#include <iostream>

#include "core/factor_state.h"
#include "objmodel/schema_printer.h"
#include "repro_util.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

int Run() {
  ReproCheck check("Figures 3-4 / Example 2: FactorState for Π_{a2,e2,h2} A");

  auto fx = testing::BuildExample1();
  if (!fx.ok()) {
    std::cerr << "fixture failed: " << fx.status() << "\n";
    return 1;
  }
  check.Expect("Figure 3: original hierarchy",
               "H {h1: Int, h2: Int}\n"
               "G {g1: Int}\n"
               "D {d1: Int}\n"
               "E {e1: Int, e2: Int} <- G(0), H(1)\n"
               "F {f1: Int} <- H(0)\n"
               "C {c1: Int} <- F(0), E(1)\n"
               "B {b1: Int} <- D(0), E(1)\n"
               "A {a1: Int, a2: Int} <- C(0), B(1)\n",
               PrintHierarchy(fx->schema.types()));

  SurrogateSet surrogates;
  std::vector<std::string> trace;
  auto derived = FactorState(fx->schema, fx->a, fx->Projection(), "ProjA",
                             &surrogates, &trace);
  if (!derived.ok()) {
    std::cerr << "FactorState failed: " << derived.status() << "\n";
    return 1;
  }

  std::string calls;
  for (const std::string& line : trace) {
    if (line.rfind("FactorState(", 0) == 0) calls += line + "\n";
  }
  check.Expect("Example 2: recursive call sequence",
               "FactorState({a2,e2,h2}, A, -, 0)\n"
               "FactorState({e2,h2}, C, ProjA, 1)\n"
               "FactorState({h2}, F, ~C, 1)\n"
               "FactorState({h2}, H, ~F, 1)\n"
               "FactorState({e2,h2}, E, ~C, 2)\n"
               "FactorState({h2}, H, ~E, 2)\n"
               "FactorState({e2,h2}, B, ProjA, 2)\n"
               "FactorState({e2,h2}, E, ~B, 2)\n",
               calls);

  check.Expect("Figure 4: factored hierarchy",
               "H {h1: Int} <- ~H(0)\n"
               "G {g1: Int}\n"
               "D {d1: Int}\n"
               "E {e1: Int} <- ~E(0), G(1), H(2)\n"
               "F {f1: Int} <- ~F(0), H(1)\n"
               "C {c1: Int} <- ~C(0), F(1), E(2)\n"
               "B {b1: Int} <- ~B(0), D(1), E(2)\n"
               "A {a1: Int} <- ProjA(0), C(1), B(2)\n"
               "ProjA [surrogate of A] {a2: Int} <- ~C(0), ~B(1)\n"
               "~C [surrogate of C] {} <- ~F(0), ~E(1)\n"
               "~F [surrogate of F] {} <- ~H(0)\n"
               "~H [surrogate of H] {h2: Int}\n"
               "~E [surrogate of E] {e2: Int} <- ~H(0)\n"
               "~B [surrogate of B] {} <- ~E(0)\n",
               PrintHierarchy(fx->schema.types()));

  check.ExpectTrue("schema still validates",
                   fx->schema.Validate().ok());
  return check.ExitCode();
}

}  // namespace
}  // namespace tyder::bench

int main() { return tyder::bench::Run(); }
