// Scalability of the IsApplicable algorithm (Section 4.1), probing the cost
// drivers the paper leaves unevaluated: method call-graph depth, breadth
// (independent methods), and cycle density (the MethodStack/dependency-list
// machinery).

#include <benchmark/benchmark.h>

#include "core/is_applicable.h"
#include "workloads.h"

namespace tyder::bench {
namespace {

// Projection keeps only the last chain attribute, so the verdict of every
// chain method depends on resolving the whole call chain.
void BM_ApplicabilityCallChainDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto schema = BuildChainSchema(depth);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("T0");
  std::vector<AttrId> cumulative =
      schema->types().CumulativeAttributes(*source);
  std::set<AttrId> projection = {cumulative.back()};
  for (auto _ : state) {
    auto result = ComputeApplicableMethods(*schema, *source, projection);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->applicable.size());
  }
  state.counters["methods"] = static_cast<double>(schema->NumMethods());
}
BENCHMARK(BM_ApplicabilityCallChainDepth)->RangeMultiplier(2)->Range(4, 256);

// Independent methods: cost should be linear in their number.
void BM_ApplicabilityBreadth(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  auto schema = BuildWideSchema(width);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("Src");
  std::vector<AttrId> cumulative =
      schema->types().CumulativeAttributes(*source);
  std::set<AttrId> projection(cumulative.begin(),
                              cumulative.begin() + cumulative.size() / 2);
  for (auto _ : state) {
    auto result = ComputeApplicableMethods(*schema, *source, projection);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->applicable.size());
  }
  state.counters["methods"] = static_cast<double>(schema->NumMethods());
}
BENCHMARK(BM_ApplicabilityBreadth)->RangeMultiplier(2)->Range(4, 256);

// A full ring of mutually recursive methods: every check trips the optimistic
// cycle path once.
void BM_ApplicabilityCycleRing(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto schema = BuildCyclicSchema(n);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("T");
  auto kept = schema->types().FindAttribute("kept");
  std::set<AttrId> projection = {*kept};
  for (auto _ : state) {
    auto result = ComputeApplicableMethods(*schema, *source, projection);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->applicable.size());
  }
}
BENCHMARK(BM_ApplicabilityCycleRing)->RangeMultiplier(2)->Range(4, 128);

// The failing-cycle variant: drop the kept attribute from the projection so
// the whole ring collapses to NotApplicable through dependency eviction.
void BM_ApplicabilityCycleRingAllFail(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto schema = BuildCyclicSchema(n);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("T");
  // Project a fresh attribute so "kept" is excluded.
  auto extra = schema->types().DeclareAttribute(*source, "other",
                                                schema->builtins().int_type);
  std::set<AttrId> projection = {*extra};
  for (auto _ : state) {
    auto result = ComputeApplicableMethods(*schema, *source, projection);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->not_applicable.size());
  }
}
BENCHMARK(BM_ApplicabilityCycleRingAllFail)->RangeMultiplier(2)->Range(4, 128);

}  // namespace
}  // namespace tyder::bench
