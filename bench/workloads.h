// Synthetic schema workloads for the scalability benches. Each generator is
// deterministic in its parameters so benchmark runs are comparable.

#ifndef TYDER_BENCH_WORKLOADS_H_
#define TYDER_BENCH_WORKLOADS_H_

#include "common/result.h"
#include "methods/schema.h"

namespace tyder::bench {

// A linear subtype chain T0 ≼ T1 ≼ … ≼ T_{depth-1}, one Int attribute and one
// reader per type, plus a method chain m_0(T0) → m_1(T0) → … → m_{depth-1}
// whose last link reads the attribute of T_{depth-1}. Exercises IsApplicable
// call-graph depth and FactorState recursion depth.
Result<Schema> BuildChainSchema(int depth);

// One source type inheriting from `width` unrelated supertypes, each with an
// attribute, a reader, and an independent method. Exercises breadth.
Result<Schema> BuildWideSchema(int width);

// `n` generic functions whose single methods call each other in a ring
// (m_i calls m_{(i+1) % n}), all on one type with one projected attribute.
// Exercises the MethodStack/dependency-list cycle machinery.
Result<Schema> BuildCyclicSchema(int n);

// A binary-tree hierarchy of the given depth (2^depth - 1 types), attributes
// at the leaves. Exercises FactorState/Augment on diamonds and fan-out.
Result<Schema> BuildTreeSchema(int depth);

// Projection request helpers: first `keep` attributes of the source type.
std::vector<AttrId> FirstAttributes(const Schema& schema, TypeId source,
                                    size_t keep);

}  // namespace tyder::bench

#endif  // TYDER_BENCH_WORKLOADS_H_
