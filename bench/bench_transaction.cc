// Cost of the all-or-nothing machinery (core/transaction.h): what a schema
// snapshot costs on the happy path, what a rollback costs on the failure
// path, and that an inactive fault point is free. The snapshot is a
// structure-only copy — method bodies are shared shared_ptrs — so commit
// overhead must stay a small fraction of the derivation it protects.

#include <benchmark/benchmark.h>

#include "common/failpoint.h"
#include "core/projection.h"
#include "core/transaction.h"
#include "testing/fixtures.h"
#include "testing/random_schema.h"

namespace tyder::bench {
namespace {

using tyder::testing::BuildPersonEmployee;

Schema LargeRandomSchema() {
  testing::RandomSchemaOptions options;
  options.seed = 7;
  options.num_types = 40;
  options.num_general_methods = 30;
  auto schema = testing::GenerateRandomSchema(options);
  if (!schema.ok()) std::abort();
  return *std::move(schema);
}

// Baseline for the snapshot benches: a bare schema copy.
void BM_SchemaCopy(benchmark::State& state) {
  Schema schema = LargeRandomSchema();
  for (auto _ : state) {
    Schema copy = schema;
    benchmark::DoNotOptimize(copy.types().NumTypes());
  }
}
BENCHMARK(BM_SchemaCopy);

void BM_TransactionCommit(benchmark::State& state) {
  Schema schema = LargeRandomSchema();
  for (auto _ : state) {
    SchemaTransaction txn(schema);
    benchmark::DoNotOptimize(txn.Commit().ok());
    benchmark::DoNotOptimize(txn.committed());
  }
}
BENCHMARK(BM_TransactionCommit);

void BM_TransactionRollback(benchmark::State& state) {
  Schema schema = LargeRandomSchema();
  for (auto _ : state) {
    SchemaTransaction txn(schema);
    // No commit: the destructor restores the (unchanged) snapshot.
  }
  benchmark::DoNotOptimize(schema.types().NumTypes());
}
BENCHMARK(BM_TransactionRollback);

// The full failure path: derivation runs to the last phase boundary, fails,
// and rolls back — versus the same derivation succeeding.
void BM_DerivationWithRollback(benchmark::State& state) {
  failpoint::Activate("verify.before");
  for (auto _ : state) {
    state.PauseTiming();
    auto fx = BuildPersonEmployee();
    if (!fx.ok()) {
      state.SkipWithError(fx.status().ToString().c_str());
      failpoint::DeactivateAll();
      return;
    }
    state.ResumeTiming();
    auto result = DeriveProjectionByName(
        fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V");
    benchmark::DoNotOptimize(result.ok());
  }
  failpoint::DeactivateAll();
}
BENCHMARK(BM_DerivationWithRollback);

void BM_DerivationCommitted(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto fx = BuildPersonEmployee();
    if (!fx.ok()) {
      state.SkipWithError(fx.status().ToString().c_str());
      return;
    }
    state.ResumeTiming();
    auto result = DeriveProjectionByName(
        fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"}, "V");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_DerivationCommitted);

// An inactive fault point must cost one relaxed atomic load — nothing.
Status HitInactiveFaultPoint() {
  TYDER_FAULT_POINT("verify.before");
  return Status::OK();
}

void BM_FaultPointInactive(benchmark::State& state) {
  failpoint::DeactivateAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(HitInactiveFaultPoint().ok());
  }
}
BENCHMARK(BM_FaultPointInactive);

}  // namespace
}  // namespace tyder::bench
