// Reproduces Example 1 (Section 4.2): the IsApplicable run for
// Ã = Π_{a2,e2,h2} A over the Figure 3 hierarchy, including the algorithm
// trace (accessor verdicts, the optimistic x1/y1 cycle, eviction of y1).

#include <iostream>

#include "core/is_applicable.h"
#include "repro_util.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

std::string LabelSet(const Schema& schema, const std::vector<MethodId>& ms) {
  std::set<std::string> labels;
  for (MethodId m : ms) labels.insert(schema.method(m).label.str());
  std::string out;
  for (const std::string& label : labels) {
    if (!out.empty()) out += ", ";
    out += label;
  }
  return out;
}

int Run() {
  ReproCheck check("Example 1: method applicability for Π_{a2,e2,h2} A");

  auto fx = testing::BuildExample1();
  if (!fx.ok()) {
    std::cerr << "fixture failed: " << fx.status() << "\n";
    return 1;
  }
  auto result = ComputeApplicableMethods(fx->schema, fx->a, fx->Projection(),
                                         /*record_trace=*/true);
  if (!result.ok()) {
    std::cerr << "IsApplicable failed: " << result.status() << "\n";
    return 1;
  }

  std::string trace;
  for (const std::string& line : result->trace) trace += line + "\n";
  check.Block("algorithm trace", trace);

  check.Expect("Applicable (paper: u3, v1, w2, get_h2)",
               "get_h2, u3, v1, w2",
               LabelSet(fx->schema, result->applicable));
  check.Expect(
      "NotApplicable (paper: the rest)",
      "get_a1, get_b1, get_g1, u1, u2, v2, w1, x1, y1",
      LabelSet(fx->schema, result->not_applicable));

  // The trace must exhibit the paper's key events.
  auto contains = [&trace](const std::string& needle) {
    return trace.find(needle) != std::string::npos;
  };
  check.ExpectTrue("trace: get_a1 rejected on unprojected a1",
                   contains("accessor get_a1 reads a1 (not projected)"));
  check.ExpectTrue("trace: optimistic cycle assumption for x1",
                   contains("cycle: assume x1 applicable"));
  check.ExpectTrue("trace: y1 evicted when x1 fails", contains("evict y1"));
  return check.ExitCode();
}

}  // namespace
}  // namespace tyder::bench

int main() { return tyder::bench::Run(); }
