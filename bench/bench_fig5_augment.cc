// Reproduces Example 4 and Figure 5 (Sections 6.3–6.5): with the z methods
// that assign parameters into G- and D-typed locals, the analysis finds
// Z = {D, G}; Augment adds the state-less surrogates ~G and ~D with the
// precedence layout of Figure 5, and the z1 body is retyped per Section 6.3.

#include <iostream>

#include "core/projection.h"
#include "mir/printer.h"
#include "objmodel/schema_printer.h"
#include "repro_util.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

int Run() {
  ReproCheck check("Figure 5 / Example 4: hierarchy augmentation");

  auto fx = testing::BuildExample1(/*with_z_methods=*/true);
  if (!fx.ok()) {
    std::cerr << "fixture failed: " << fx.status() << "\n";
    return 1;
  }
  ProjectionSpec spec;
  spec.source = fx->a;
  spec.attributes = {fx->a2, fx->e2, fx->h2};
  spec.view_name = "ProjA";
  ProjectionOptions options;
  options.record_trace = true;
  auto result = DeriveProjection(fx->schema, spec, options);
  if (!result.ok()) {
    std::cerr << "derivation failed: " << result.status() << "\n";
    return 1;
  }

  std::set<std::string> z_sorted;
  for (TypeId t : result->augment_z) {
    z_sorted.insert(fx->schema.types().TypeName(t));
  }
  std::string z_names;
  for (const std::string& name : z_sorted) {
    if (!z_names.empty()) z_names += ", ";
    z_names += name;
  }
  check.Expect("Example 4: Z set", "D, G", z_names);

  check.Expect("Figure 5: augmented hierarchy",
               "H {h1: Int} <- ~H(0)\n"
               "G {g1: Int} <- ~G(0)\n"
               "D {d1: Int} <- ~D(0)\n"
               "E {e1: Int} <- ~E(0), G(1), H(2)\n"
               "F {f1: Int} <- ~F(0), H(1)\n"
               "C {c1: Int} <- ~C(0), F(1), E(2)\n"
               "B {b1: Int} <- ~B(0), D(1), E(2)\n"
               "A {a1: Int} <- ProjA(0), C(1), B(2)\n"
               "ProjA [surrogate of A] {a2: Int} <- ~C(0), ~B(1)\n"
               "~C [surrogate of C] {} <- ~F(0), ~E(1)\n"
               "~F [surrogate of F] {} <- ~H(0)\n"
               "~H [surrogate of H] {h2: Int}\n"
               "~E [surrogate of E] {e2: Int} <- ~G(0), ~H(1)\n"
               "~B [surrogate of B] {} <- ~D(0), ~E(1)\n"
               "~G [surrogate of G] {}\n"
               "~D [surrogate of D] {}\n",
               PrintHierarchy(fx->schema.types()));

  check.Expect("Section 6.3: retyped z1",
               "z1: z(~C) -> ~G = { gv: ~G; gv = pc; u(pc); return gv; }",
               PrintMethod(fx->schema, fx->z1));
  check.Expect("Section 6.3: retyped z2",
               "z2: zz(~B) -> Void = { dv: ~D; dv = pb; get_h2(pb); }",
               PrintMethod(fx->schema, fx->z2));
  return check.ExitCode();
}

}  // namespace
}  // namespace tyder::bench

int main() { return tyder::bench::Run(); }
