// Overhead budget for the always-on observability layer.
//
// Two bench families live here:
//
//  1. Instrumented hot-path clones, compiled in BOTH observability modes.
//     `scripts/run_all.sh obs` builds this binary twice — TYDER_OBS=OFF and
//     ON — and feeds the two BENCHJSON reports through bench_compare.py
//     with a hard 5% threshold: always-on counters, timers and the flight
//     recorder together must not cost the engine's hot paths more than
//     that. The workloads clone the PR 3 cache/dispatch benches
//     (bench_subtype_cache.cc) plus the transaction rollback path, which
//     crosses TYDER_COUNT, TYDER_TIMED and a flight-recorder append.
//
//  2. Micro benches of the primitives themselves (per-thread-sharded
//     counter vs. the legacy single atomic, lock-free histogram record and
//     snapshot, flight-recorder append, stats snapshot line). These only
//     exist in ON builds, so the comparison sees them as NEW/REMOVED rows —
//     informational, never a gate failure.

#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "core/projection.h"
#include "core/transaction.h"
#include "methods/precedence.h"
#include "obs/obs.h"
#include "obs/snapshotter.h"
#include "workloads.h"

namespace tyder::bench {
namespace {

// --- family 1: engine hot paths, built in ON and OFF modes ----------------

// Clone of bench_subtype_cache.cc DispatchSweep (cached): every generic
// function dispatched on every type of a depth-5 tree hierarchy.
void BM_ObsDispatchSweep(benchmark::State& state) {
  auto schema = BuildTreeSchema(5);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  size_t n = schema->types().NumTypes();
  for (auto _ : state) {
    for (GfId g = 0; g < schema->NumGenericFunctions(); ++g) {
      for (TypeId t = 0; t < n; ++t) {
        auto m = MostSpecificApplicable(*schema, g, {t});
        benchmark::DoNotOptimize(m.ok());
      }
    }
  }
  state.counters["types"] = static_cast<double>(n);
}
BENCHMARK(BM_ObsDispatchSweep);

// Clone of bench_subtype_cache.cc Derivation (cached): one full projection
// derivation over a copy of a depth-5 tree schema per iteration.
void BM_ObsDerivation(benchmark::State& state) {
  auto schema = BuildTreeSchema(5);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("N0_0");
  std::vector<AttrId> attrs = schema->types().CumulativeAttributes(*source);
  for (auto _ : state) {
    Schema copy = *schema;
    ProjectionSpec spec;
    spec.source = *source;
    spec.attributes = attrs;
    spec.view_name = "ObsView";
    ProjectionOptions options;
    options.verify = false;
    auto result = DeriveProjection(copy, spec, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->derived);
  }
}
BENCHMARK(BM_ObsDerivation);

// Transaction snapshot + rollback: the rollback path crosses TYDER_COUNT,
// TYDER_TIMED, a flight-recorder append and a narration call.
void BM_ObsTransactionRollback(benchmark::State& state) {
  auto schema = BuildTreeSchema(4);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    SchemaTransaction txn(*schema);  // no Commit: dtor rolls back
    benchmark::DoNotOptimize(&txn);
  }
}
BENCHMARK(BM_ObsTransactionRollback);

#if TYDER_OBS_ENABLED

// --- family 2: primitive micro benches (ON builds only) -------------------

void BM_ObsCounterAdd(benchmark::State& state) {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench.obs_counter");
  for (auto _ : state) counter->Add(1);
}
BENCHMARK(BM_ObsCounterAdd);
BENCHMARK(BM_ObsCounterAdd)->Threads(4);

// The PR 1 design: every thread hammering one atomic — the cache-line
// bounce the sharded counter exists to avoid.
void BM_ObsLegacyAtomicCounter(benchmark::State& state) {
  static std::atomic<uint64_t> counter{0};
  for (auto _ : state) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }
}
BENCHMARK(BM_ObsLegacyAtomicCounter);
BENCHMARK(BM_ObsLegacyAtomicCounter)->Threads(4);

void BM_ObsHistogramRecord(benchmark::State& state) {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("bench.obs_histogram");
  int64_t value = 0;
  for (auto _ : state) {
    histogram->Record(value);
    value = (value + 4097) & 0xFFFFF;  // sweep buckets, stay branch-friendly
  }
}
BENCHMARK(BM_ObsHistogramRecord);
BENCHMARK(BM_ObsHistogramRecord)->Threads(4);

void BM_ObsHistogramSnap(benchmark::State& state) {
  obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("bench.obs_snap_histogram");
  for (int64_t i = 0; i < 10000; ++i) histogram->Record(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram->Snap());
  }
}
BENCHMARK(BM_ObsHistogramSnap);

void BM_ObsFlightRecord(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    obs::FlightRecorder::Record(obs::FlightEventKind::kMark, "bench.flight",
                                i++);
  }
}
BENCHMARK(BM_ObsFlightRecord);
BENCHMARK(BM_ObsFlightRecord)->Threads(4);

void BM_ObsSnapshotLine(benchmark::State& state) {
  TYDER_COUNT("bench.obs_snapshot_line");  // ensure a non-empty registry
  uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::StatsSnapshotter::SnapshotLine(seq++));
  }
}
BENCHMARK(BM_ObsSnapshotLine);

#endif  // TYDER_OBS_ENABLED

}  // namespace
}  // namespace tyder::bench
