// Throughput of the testing machinery itself: the differential oracle
// sweeps (src/oracle) and the operation-sequence fuzzer (tests/fuzz). The
// oracle's cost bounds how exhaustively each fuzz step can check, so a
// regression here directly shrinks the coverage a fixed fuzz budget buys.

#include <benchmark/benchmark.h>

#include "fuzz/fuzzer.h"
#include "oracle/differential.h"
#include "testing/random_schema.h"

namespace tyder::bench {
namespace {

Result<Schema> OracleSchema(int num_types) {
  testing::RandomSchemaOptions options;
  options.seed = 7;
  options.num_types = num_types;
  options.methods_per_gf = 2;
  options.with_mutators = true;
  return testing::GenerateRandomSchema(options);
}

void BM_OracleSubtypeCheck(benchmark::State& state) {
  auto schema = OracleSchema(static_cast<int>(state.range(0)));
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Status s = oracle::CheckSubtypeOracle(*schema);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  size_t n = schema->types().NumTypes();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n));  // pairs checked
}
BENCHMARK(BM_OracleSubtypeCheck)->Arg(8)->Arg(16)->Arg(32);

void BM_OracleDispatchCheck(benchmark::State& state) {
  auto schema = OracleSchema(static_cast<int>(state.range(0)));
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  oracle::DifferentialOptions options;
  options.seed = 11;
  options.tuples_per_gf = 4;
  options.exhaustive_tuple_limit = 64;
  for (auto _ : state) {
    Status s = oracle::CheckDispatchOracle(*schema, options);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_OracleDispatchCheck)->Arg(8)->Arg(16);

// One full fuzz trace per iteration — schema generation, the lockstep
// catalog/model run, and every per-step oracle sweep. items/s is ops/s.
void BM_FuzzSequence(benchmark::State& state) {
  fuzz::FuzzProfile profile;
  profile.with_crash_ops = false;  // keep the benchmark off the filesystem
  fuzz::FuzzTrace trace = fuzz::GenerateTrace(state.range(0), profile);
  for (auto _ : state) {
    fuzz::RunResult result = fuzz::RunTrace(trace);
    if (!result.status.ok()) {
      state.SkipWithError(result.status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.ops.size()));
  state.counters["ops"] = static_cast<double>(trace.ops.size());
}
BENCHMARK(BM_FuzzSequence)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace tyder::bench
