// Query throughput: predicate evaluation over growing extents, on the base
// type vs. a derived view (the view pays extra class-precedence-list work
// per dispatch — the same transparency cost bench_dispatch isolates).

#include <benchmark/benchmark.h>

#include "core/projection.h"
#include "query/query.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

using tyder::testing::BuildPersonEmployee;
using tyder::testing::PersonEmployeeFixture;

struct Workload {
  PersonEmployeeFixture fx;
  ObjectStore store;
};

Result<Workload> BuildWorkload(int num_objects, bool with_view) {
  Workload w;
  TYDER_ASSIGN_OR_RETURN(w.fx, BuildPersonEmployee());
  if (with_view) {
    TYDER_RETURN_IF_ERROR(
        DeriveProjectionByName(w.fx.schema, "Employee",
                               {"SSN", "date_of_birth", "pay_rate"},
                               "EmployeeView")
            .status());
  }
  for (int i = 0; i < num_objects; ++i) {
    TYDER_ASSIGN_OR_RETURN(ObjectId obj,
                           w.store.CreateObject(w.fx.schema, w.fx.employee));
    TYDER_RETURN_IF_ERROR(
        w.store.SetSlot(obj, w.fx.date_of_birth, Value::Int(1950 + i % 60)));
    TYDER_RETURN_IF_ERROR(w.store.SetSlot(
        obj, w.fx.pay_rate, Value::Float(20.0 + (i * 7) % 150)));
  }
  return w;
}

void RunQuery(benchmark::State& state, const char* type_name, bool with_view) {
  auto workload = BuildWorkload(static_cast<int>(state.range(0)), with_view);
  if (!workload.ok()) {
    state.SkipWithError(workload.status().ToString().c_str());
    return;
  }
  Query query(workload->fx.schema, type_name);
  query.WhereTdl("get_pay_rate(self) < 100.0 and age(self) < 65")
      .Column("get_SSN");
  size_t matched = 0;
  for (auto _ : state) {
    auto result = query.Execute(workload->store);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    matched = result->objects.size();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matched"] = static_cast<double>(matched);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_QueryBaseType(benchmark::State& state) {
  RunQuery(state, "Employee", /*with_view=*/false);
}
BENCHMARK(BM_QueryBaseType)->RangeMultiplier(4)->Range(64, 4096);

void BM_QueryAfterDerivation(benchmark::State& state) {
  // Same extent and predicate, but the schema carries the factored
  // hierarchy; the rewritten accessors dispatch through surrogates.
  RunQuery(state, "Employee", /*with_view=*/true);
}
BENCHMARK(BM_QueryAfterDerivation)->RangeMultiplier(4)->Range(64, 4096);

void BM_QueryViaViewType(benchmark::State& state) {
  RunQuery(state, "EmployeeView", /*with_view=*/true);
}
BENCHMARK(BM_QueryViaViewType)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace
}  // namespace tyder::bench
