// Throughput of the DeriveBatch driver (core/derive_batch.h): many
// independent projections analyzed concurrently over one shared read-only
// schema. The analysis phase is the paper's IsApplicable, which only reads —
// the subtype closure, dispatch tables, and relevant-call cache are all
// concurrent-reader safe — so throughput should scale with --jobs up to the
// machine's core count. Real time is the scaling metric (cpu_time sums all
// workers); SetItemsProcessed reports projections/second.

#include <benchmark/benchmark.h>

#include "core/derive_batch.h"
#include "workloads.h"

namespace tyder::bench {
namespace {

// A batch of `count` distinct projections of Src in a wide schema: item i
// keeps a rotating half-window of the cumulative attributes, so every item
// runs a full applicability analysis with a different verdict pattern.
std::vector<ProjectionSpec> RotatingSpecs(const Schema& schema, TypeId source,
                                          size_t count) {
  std::vector<AttrId> cumulative = schema.types().CumulativeAttributes(source);
  std::vector<ProjectionSpec> specs;
  for (size_t i = 0; i < count; ++i) {
    ProjectionSpec spec;
    spec.source = source;
    spec.view_name = "V" + std::to_string(i);
    size_t half = cumulative.size() / 2;
    for (size_t k = 0; k < half; ++k) {
      spec.attributes.push_back(cumulative[(i + k) % cumulative.size()]);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

// Analysis-only batch (apply=false): the schema stays frozen, so every
// iteration measures the same work and the jobs axis isolates parallel
// analysis scaling.
void BM_ParallelDeriveAnalysis(benchmark::State& state) {
  int jobs = static_cast<int>(state.range(0));
  auto schema = BuildWideSchema(64);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("Src");
  std::vector<ProjectionSpec> specs = RotatingSpecs(*schema, *source, 64);
  BatchDeriveOptions options;
  options.jobs = jobs;
  options.apply = false;
  for (auto _ : state) {
    BatchDeriveReport report = DeriveBatch(*schema, specs, options);
    if (report.failed != 0) {
      state.SkipWithError("batch analysis failed");
      return;
    }
    benchmark::DoNotOptimize(report.analyzed_ok);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(specs.size()));
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_ParallelDeriveAnalysis)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// End-to-end batch: parallel analysis plus the serialized apply phase (each
// item commits through its own SchemaTransaction). The schema is copied per
// iteration so every run applies onto a clean hierarchy.
void BM_ParallelDeriveApply(benchmark::State& state) {
  int jobs = static_cast<int>(state.range(0));
  auto schema = BuildTreeSchema(4);
  if (!schema.ok()) {
    state.SkipWithError(schema.status().ToString().c_str());
    return;
  }
  auto source = schema->types().FindType("N0_0");
  std::vector<ProjectionSpec> specs = RotatingSpecs(*schema, *source, 8);
  BatchDeriveOptions options;
  options.jobs = jobs;
  options.apply = true;
  options.verify = false;
  for (auto _ : state) {
    Schema working = *schema;
    BatchDeriveReport report = DeriveBatch(working, specs, options);
    if (report.applied != static_cast<int>(specs.size())) {
      state.SkipWithError("batch apply failed");
      return;
    }
    benchmark::DoNotOptimize(report.applied);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(specs.size()));
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_ParallelDeriveApply)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace tyder::bench
