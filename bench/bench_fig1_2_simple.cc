// Reproduces Figures 1 and 2 (Section 3.1): the Person/Employee hierarchy,
// the projection Π_{SSN, date_of_birth, pay_rate} Employee, the inferred
// method verdicts (income drops; age and promote survive), and the
// refactored hierarchy with the ~Person surrogate.

#include <iostream>

#include "core/projection.h"
#include "objmodel/schema_printer.h"
#include "repro_util.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

int Run() {
  ReproCheck check("Figures 1-2: projection over Employee (Section 3.1)");

  auto fx = testing::BuildPersonEmployee();
  if (!fx.ok()) {
    std::cerr << "fixture failed: " << fx.status() << "\n";
    return 1;
  }

  check.Expect(
      "Figure 1: original hierarchy",
      "Person {SSN: String, name: String, date_of_birth: Date}\n"
      "Employee {pay_rate: Float, hrs_worked: Float} <- Person(0)\n",
      PrintHierarchy(fx->schema.types()));

  auto result = DeriveProjectionByName(
      fx->schema, "Employee", {"SSN", "date_of_birth", "pay_rate"},
      "EmployeeView");
  if (!result.ok()) {
    std::cerr << "derivation failed: " << result.status() << "\n";
    return 1;
  }

  check.Expect(
      "Figure 2: refactored hierarchy",
      "Person {name: String} <- ~Person(0)\n"
      "Employee {hrs_worked: Float} <- EmployeeView(0), Person(1)\n"
      "EmployeeView [surrogate of Employee] {pay_rate: Float} <- ~Person(0)\n"
      "~Person [surrogate of Person] {SSN: String, date_of_birth: Date}\n",
      PrintHierarchy(fx->schema.types()));

  check.ExpectTrue("income not applicable to the derived type",
                   !result->applicability.IsApplicable(fx->income));
  check.ExpectTrue("age applicable to the derived type",
                   result->applicability.IsApplicable(fx->age));
  check.ExpectTrue("promote applicable to the derived type",
                   result->applicability.IsApplicable(fx->promote));
  return check.ExitCode();
}

}  // namespace
}  // namespace tyder::bench

int main() { return tyder::bench::Run(); }
