// Group commit (src/storage/wal.h GroupWal) and epoch-pinned readers
// (src/core/epoch.h): the two halves of the MVCC + batched-fsync commit
// pipeline. The throughput pair shows fsync amortization — N contending
// committers share a handful of fsyncs per batch window instead of paying
// one each — and the reader pair shows that pinning an epoch keeps query
// latency flat while a writer storms commits past it. docs/PERFORMANCE.md
// "Schema epochs and group commit" quotes these numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "storage/durable_catalog.h"
#include "storage/wal.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kCommitPayload =
    "project EmployeeView Employee SSN,pay_rate verify";

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_bench_group_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Shared fixture for the multi-threaded committer benchmarks: a WAL behind a
// GroupWal, plus the owner-side sequencing lock (lsn assignment + Enqueue
// must be serialized; Wait runs unlocked — exactly the DurableCatalog
// commit protocol).
struct SharedGroup {
  std::string dir;
  std::unique_ptr<Result<storage::WalWriter>> wal;
  std::unique_ptr<storage::GroupWal> group;
  std::mutex seq_mu;
  uint64_t lsn = 0;
};
SharedGroup* g_group = nullptr;

void RunCommitterLoop(benchmark::State& state, size_t max_batch) {
  if (state.thread_index() == 0) {
    auto* shared = new SharedGroup;
    shared->dir = FreshDir("commit_b" + std::to_string(max_batch) + "_t" +
                           std::to_string(state.threads()));
    shared->wal = std::make_unique<Result<storage::WalWriter>>(
        storage::WalWriter::Open(shared->dir + "/wal.log"));
    if (!shared->wal->ok()) {
      state.SkipWithError((*shared->wal).status().ToString().c_str());
      delete shared;
      return;
    }
    storage::GroupCommitOptions options;
    options.max_batch = max_batch;
    shared->group = std::make_unique<storage::GroupWal>(
        &shared->wal->value(), options);
    g_group = shared;
  }
  for (auto _ : state) {
    SharedGroup& shared = *g_group;
    storage::GroupWal::Ticket ticket;
    {
      std::lock_guard<std::mutex> lock(shared.seq_mu);
      Status queued = shared.group->Enqueue(ticket, ++shared.lsn,
                                            std::string(kCommitPayload));
      if (!queued.ok()) {
        state.SkipWithError(queued.ToString().c_str());
        break;
      }
    }
    Status committed = shared.group->Wait(ticket);
    if (!committed.ok()) {
      state.SkipWithError(committed.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    fs::remove_all(g_group->dir);
    delete g_group;
    g_group = nullptr;
  }
}

// Opportunistic group commit: the queue that builds behind an in-flight
// fsync becomes the next batch. Throughput at /threads:8 vs /threads:1 is
// the fsync-amortization win (acceptance: >= 3x).
void BM_GroupCommitThroughput(benchmark::State& state) {
  RunCommitterLoop(state, /*max_batch=*/64);
}
BENCHMARK(BM_GroupCommitThroughput)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The counterfactual: the same contending committers forced through
// max_batch = 1, i.e. one fsync per commit — what the pre-group-commit WAL
// did to a committer fleet.
void BM_FsyncPerCommitThroughput(benchmark::State& state) {
  RunCommitterLoop(state, /*max_batch=*/1);
}
BENCHMARK(BM_FsyncPerCommitThroughput)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Reader latency against a pinned epoch, with (/1) and without (/0) a
// writer storming group commits through the same DurableCatalog. Each
// iteration pins the current epoch and runs the frozen-schema query mix;
// per-op wall latencies feed the p50/p99 counters. Acceptance: the /1 p99
// stays within 10% of /0 — readers never block on the writer.
void BM_PinnedReaderQuery(benchmark::State& state) {
  const bool storm = state.range(0) != 0;
  std::string dir = FreshDir(storm ? "reader_storm" : "reader_quiet");
  auto fx = testing::BuildPersonEmployee();
  auto db = storage::DurableCatalog::Open(dir);
  if (!fx.ok() || !db.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  TypeId person = fx->person;
  TypeId employee = fx->employee;
  if (!db->Seed(Catalog(std::move(fx->schema))).ok()) {
    state.SkipWithError("seed failed");
    return;
  }

  std::atomic<bool> stop{false};
  std::thread writer;
  if (storm) {
    writer = std::thread([&] {
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::string name = "Storm" + std::to_string(n++);
        if (!db->DefineProjectionView(name, "Employee", {"SSN"}).ok() ||
            !db->DropView(name).ok()) {
          return;  // a refused storm op just ends the storm
        }
      }
    });
  }

  std::vector<uint64_t> latencies;
  latencies.reserve(1 << 20);
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto pin = db->PinSnapshot();
    const TypeGraph& types = pin->schema().types();
    benchmark::DoNotOptimize(types.IsSubtype(employee, person));
    benchmark::DoNotOptimize(types.IsSubtype(person, employee));
    benchmark::DoNotOptimize(pin->views().size());
    auto t1 = std::chrono::steady_clock::now();
    latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (latencies.size() - 1));
      return static_cast<double>(latencies[idx]);
    };
    state.counters["p50_ns"] = pct(0.50);
    state.counters["p99_ns"] = pct(0.99);
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_PinnedReaderQuery)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace
}  // namespace tyder::bench
