// Helpers shared by the figure-reproduction binaries: print a labeled block,
// compare expected vs measured, and keep a process-wide pass/fail verdict.

#ifndef TYDER_BENCH_REPRO_UTIL_H_
#define TYDER_BENCH_REPRO_UTIL_H_

#include <iostream>
#include <string>

namespace tyder::bench {

class ReproCheck {
 public:
  explicit ReproCheck(std::string title) {
    std::cout << "==== " << title << " ====\n";
  }

  void Block(const std::string& label, const std::string& content) {
    std::cout << "--- " << label << " ---\n" << content;
    if (content.empty() || content.back() != '\n') std::cout << "\n";
  }

  // Prints measured content and compares against the paper's expectation.
  void Expect(const std::string& label, const std::string& expected,
              const std::string& measured) {
    Block(label + " (measured)", measured);
    if (expected == measured) {
      std::cout << "[OK] " << label << " matches the paper\n";
    } else {
      Block(label + " (paper)", expected);
      std::cout << "[MISMATCH] " << label << "\n";
      failed_ = true;
    }
  }

  void ExpectTrue(const std::string& label, bool ok) {
    std::cout << (ok ? "[OK] " : "[MISMATCH] ") << label << "\n";
    if (!ok) failed_ = true;
  }

  // 0 on success, 1 on any mismatch.
  int ExitCode() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

}  // namespace tyder::bench

#endif  // TYDER_BENCH_REPRO_UTIL_H_
