// Helpers shared by the figure-reproduction binaries: print a labeled block,
// compare expected vs measured, keep a process-wide pass/fail verdict, and
// emit the machine-readable one-line JSON report that `scripts/run_all.sh
// bench` assembles into BENCH_baseline.json. The google-benchmark binaries
// get the same JSON line from bench_main.cc.

#ifndef TYDER_BENCH_REPRO_UTIL_H_
#define TYDER_BENCH_REPRO_UTIL_H_

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"

namespace tyder::bench {

// One line, prefix-tagged so scripts can grep it out of human output:
//   BENCHJSON: {"bench":"<name>","results":[...],...extra}
// `results` entries come pre-rendered as JSON objects; `extra` is rendered
// as additional top-level key/value pairs.
inline void EmitBenchJsonLine(
    const std::string& bench_name, const std::vector<std::string>& results,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  std::ostringstream out;
  out << "BENCHJSON: {\"bench\":\"" << obs::JsonEscape(bench_name) << "\"";
  for (const auto& [key, value] : extra) {
    out << ",\"" << obs::JsonEscape(key) << "\":" << value;
  }
  out << ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out << ",";
    out << results[i];
  }
  out << "]}";
  std::cout << out.str() << "\n";
}

class ReproCheck {
 public:
  explicit ReproCheck(std::string title)
      : title_(std::move(title)), start_(std::chrono::steady_clock::now()) {
    std::cout << "==== " << title_ << " ====\n";
  }

  void Block(const std::string& label, const std::string& content) {
    std::cout << "--- " << label << " ---\n" << content;
    if (content.empty() || content.back() != '\n') std::cout << "\n";
  }

  // Prints measured content and compares against the paper's expectation.
  void Expect(const std::string& label, const std::string& expected,
              const std::string& measured) {
    Block(label + " (measured)", measured);
    ++checks_;
    if (expected == measured) {
      std::cout << "[OK] " << label << " matches the paper\n";
    } else {
      Block(label + " (paper)", expected);
      std::cout << "[MISMATCH] " << label << "\n";
      failed_ = true;
    }
  }

  void ExpectTrue(const std::string& label, bool ok) {
    std::cout << (ok ? "[OK] " : "[MISMATCH] ") << label << "\n";
    ++checks_;
    if (!ok) failed_ = true;
  }

  // Records a named measurement for the JSON report.
  void Metric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  // 0 on success, 1 on any mismatch. Also emits the BENCHJSON line.
  int ExitCode() const {
    double elapsed_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::vector<std::string> results;
    for (const auto& [name, value] : metrics_) {
      std::ostringstream r;
      r << "{\"name\":\"" << obs::JsonEscape(name) << "\",\"value\":" << value
        << "}";
      results.push_back(r.str());
    }
    std::ostringstream elapsed;
    elapsed << elapsed_ms;
    EmitBenchJsonLine(title_, results,
                      {{"passed", failed_ ? "false" : "true"},
                       {"checks", std::to_string(checks_)},
                       {"elapsed_ms", elapsed.str()}});
    return failed_ ? 1 : 0;
  }

 private:
  std::string title_;
  std::chrono::steady_clock::time_point start_;
  int checks_ = 0;
  std::vector<std::pair<std::string, double>> metrics_;
  bool failed_ = false;
};

}  // namespace tyder::bench

#endif  // TYDER_BENCH_REPRO_UTIL_H_
