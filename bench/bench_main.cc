// Shared main for the google-benchmark binaries: runs the normal console
// reporter and additionally emits the one-line JSON report consumed by
// `scripts/run_all.sh bench` (same BENCHJSON channel as ReproCheck).

#include <benchmark/benchmark.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "repro_util.h"

namespace tyder::bench {
namespace {

double TimeUnitToNs(benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kSecond:
      return 1e9;
    case benchmark::kMillisecond:
      return 1e6;
    case benchmark::kMicrosecond:
      return 1e3;
    case benchmark::kNanosecond:
      return 1.0;
  }
  return 1.0;
}

class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::ostringstream r;
      r << "{\"name\":\"" << obs::JsonEscape(run.benchmark_name())
        << "\",\"real_time_ns\":"
        << run.GetAdjustedRealTime() * TimeUnitToNs(run.time_unit)
        << ",\"cpu_time_ns\":"
        << run.GetAdjustedCPUTime() * TimeUnitToNs(run.time_unit)
        << ",\"iterations\":" << run.iterations;
      for (const auto& [name, counter] : run.counters) {
        r << ",\"" << obs::JsonEscape(name) << "\":" << counter.value;
      }
      r << "}";
      results_.push_back(r.str());
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<std::string>& results() const { return results_; }

 private:
  std::vector<std::string> results_;
};

}  // namespace
}  // namespace tyder::bench

int main(int argc, char** argv) {
  std::string bench_name = argv[0];
  size_t slash = bench_name.find_last_of('/');
  if (slash != std::string::npos) bench_name = bench_name.substr(slash + 1);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  tyder::bench::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  tyder::bench::EmitBenchJsonLine(bench_name, reporter.results());
  benchmark::Shutdown();
  return 0;
}
