// Section 7's open problem, quantified: surrogate growth when views are
// defined over views, with and without the empty-surrogate collapse pass.
// The `live_surrogates` / `after_collapse` counters are the series for the
// EXPERIMENTS.md table.

#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

Result<Catalog> BuildChainCatalog(int depth) {
  TYDER_ASSIGN_OR_RETURN(tyder::testing::PersonEmployeeFixture fx,
                         tyder::testing::BuildPersonEmployee());
  Catalog catalog(std::move(fx.schema));
  std::string source = "Employee";
  for (int i = 0; i < depth; ++i) {
    std::string name = "V" + std::to_string(i);
    TYDER_RETURN_IF_ERROR(
        catalog
            .DefineProjectionView(name, source,
                                  {"SSN", "date_of_birth", "pay_rate"})
            .status());
    source = name;
  }
  return catalog;
}

void BM_ViewChainNoCollapse(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  size_t surrogates = 0;
  for (auto _ : state) {
    auto catalog = BuildChainCatalog(depth);
    if (!catalog.ok()) {
      state.SkipWithError(catalog.status().ToString().c_str());
      return;
    }
    surrogates = catalog->LiveSurrogateCount();
    benchmark::DoNotOptimize(surrogates);
  }
  state.counters["live_surrogates"] = static_cast<double>(surrogates);
}
BENCHMARK(BM_ViewChainNoCollapse)->DenseRange(1, 8);

void BM_ViewChainWithCollapse(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  size_t before = 0, after = 0;
  for (auto _ : state) {
    auto catalog = BuildChainCatalog(depth);
    if (!catalog.ok()) {
      state.SkipWithError(catalog.status().ToString().c_str());
      return;
    }
    before = catalog->LiveSurrogateCount();
    auto report = catalog->Collapse();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    after = catalog->LiveSurrogateCount();
    benchmark::DoNotOptimize(after);
  }
  state.counters["live_surrogates"] = static_cast<double>(before);
  state.counters["after_collapse"] = static_cast<double>(after);
}
BENCHMARK(BM_ViewChainWithCollapse)->DenseRange(1, 8);

}  // namespace
}  // namespace tyder::bench
