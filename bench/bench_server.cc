// Serving-path benchmarks (src/net): request round trips through a real
// loopback tyderd serving core — framing, CRC, request parsing, admission
// control, worker execution, and (for mutations) the group-commit WAL — as
// a function of concurrent client count. The ping series prices the pure
// serving overhead, the query series the epoch-pinned read path, and the
// project/drop series the full durable mutation pipeline; throughput
// scaling across /threads is the admission-control + group-commit win.
// docs/ROBUSTNESS.md "Serving and overload" quotes these numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/durable_catalog.h"
#include "testing/fixtures.h"

namespace tyder::bench {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (fs::temp_directory_path() / ("tyder_bench_server_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Shared fixture: one server per benchmark run, one client per benchmark
// thread. Thread 0 boots the server before its iteration loop; the other
// threads connect lazily on their first iteration (benchmark's start
// barrier guarantees the server exists by then).
struct SharedServer {
  std::string dir;
  std::optional<storage::DurableCatalog> db;
  std::unique_ptr<net::Server> server;
};
SharedServer* g_server = nullptr;
std::atomic<uint64_t> g_name_seq{0};

thread_local std::optional<net::Client> tl_client;

bool BootServer(benchmark::State& state, const std::string& name) {
  auto* shared = new SharedServer;
  shared->dir = FreshDir(name + "_t" + std::to_string(state.threads()));
  auto fx = testing::BuildPersonEmployee();
  auto db = storage::DurableCatalog::Open(shared->dir);
  if (!fx.ok() || !db.ok()) {
    state.SkipWithError("setup failed");
    delete shared;
    return false;
  }
  shared->db.emplace(std::move(*db));
  if (!shared->db->Seed(Catalog(std::move(fx->schema))).ok()) {
    state.SkipWithError("seed failed");
    delete shared;
    return false;
  }
  net::ServerOptions options;
  auto server = net::Server::Start(&*shared->db, options);
  if (!server.ok()) {
    state.SkipWithError("server start failed");
    delete shared;
    return false;
  }
  shared->server = std::move(*server);
  g_server = shared;
  return true;
}

bool EnsureClient(benchmark::State& state) {
  if (tl_client.has_value() && tl_client->connected()) return true;
  auto client = net::Client::Connect(g_server->server->port(), 5'000);
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return false;
  }
  tl_client.emplace(std::move(*client));
  return true;
}

void TearDown(benchmark::State& state) {
  tl_client.reset();
  if (state.thread_index() == 0 && g_server != nullptr) {
    g_server->server->Stop();
    fs::remove_all(g_server->dir);
    delete g_server;
    g_server = nullptr;
  }
}

void RunRoundTripLoop(benchmark::State& state, const std::string& name,
                      const std::string& command,
                      const std::vector<std::string>& args) {
  if (state.thread_index() == 0 && !BootServer(state, name)) return;
  for (auto _ : state) {
    if (!EnsureClient(state)) break;
    auto answer = tl_client->Call(command, args, 5'000);
    if (!answer.ok() || !answer->ok()) {
      state.SkipWithError("round trip failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  TearDown(state);
}

// One ping round trip per iteration: frame encode + CRC + accept-side read
// + dispatch + response write, no catalog work. The serving floor.
void BM_ServerPingThroughput(benchmark::State& state) {
  RunRoundTripLoop(state, "ping", "ping", {});
}
BENCHMARK(BM_ServerPingThroughput)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Read path under concurrency: each request pins the current epoch and
// walks the view list. Scaling across /threads shows reads never serialize
// behind the writer lock.
void BM_ServerQueryViewsThroughput(benchmark::State& state) {
  RunRoundTripLoop(state, "query", "query", {"views"});
}
BENCHMARK(BM_ServerQueryViewsThroughput)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Full durable mutation pipeline under concurrency: define a selection
// view, commit through the group WAL, then drop it (a second commit).
// Selection views build no shared surrogate structure, so drops from
// different clients stay independent; contending /threads clients share
// batch fsyncs — the group-commit amortization seen from the wire.
// (Concurrent projections of the same attribute set deliberately entangle —
// later derivations reuse the earlier factoring — which makes their drop
// order-dependent and wrong for a throughput loop.)
void BM_ServerSelectDropThroughput(benchmark::State& state) {
  if (state.thread_index() == 0 && !BootServer(state, "mutate")) return;
  for (auto _ : state) {
    if (!EnsureClient(state)) break;
    std::string name =
        "B" + std::to_string(g_name_seq.fetch_add(1, std::memory_order_relaxed));
    auto defined = tl_client->Call("select", {name, "Employee"}, 10'000);
    if (!defined.ok() || !defined->ok()) {
      state.SkipWithError("select failed");
      break;
    }
    auto dropped = tl_client->Call("drop", {name}, 10'000);
    if (!dropped.ok() || !dropped->ok()) {
      state.SkipWithError("drop failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  TearDown(state);
}
BENCHMARK(BM_ServerSelectDropThroughput)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The derivation pipeline over the wire, single client: project (verify
// on), then drop. Single-threaded because identical concurrent projections
// share structure by design.
void BM_ServerProjectDropThroughput(benchmark::State& state) {
  if (!BootServer(state, "derive")) return;
  for (auto _ : state) {
    if (!EnsureClient(state)) break;
    std::string name =
        "P" + std::to_string(g_name_seq.fetch_add(1, std::memory_order_relaxed));
    auto defined = tl_client->Call(
        "project", {name, "Employee", "SSN,pay_rate"}, 10'000);
    if (!defined.ok() || !defined->ok()) {
      state.SkipWithError("project failed");
      break;
    }
    auto dropped = tl_client->Call("drop", {name}, 10'000);
    if (!dropped.ok() || !dropped->ok()) {
      state.SkipWithError("drop failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  TearDown(state);
}
BENCHMARK(BM_ServerProjectDropThroughput)->UseRealTime();

// Per-request wall latency of the serving floor, single client: p50/p99 of
// a ping round trip on an otherwise idle server.
void BM_ServerPingLatency(benchmark::State& state) {
  if (!BootServer(state, "latency")) return;
  std::vector<uint64_t> latencies;
  latencies.reserve(1 << 20);
  for (auto _ : state) {
    if (!EnsureClient(state)) break;
    auto t0 = std::chrono::steady_clock::now();
    auto answer = tl_client->Call("ping", {}, 5'000);
    auto t1 = std::chrono::steady_clock::now();
    if (!answer.ok() || !answer->ok()) {
      state.SkipWithError("ping failed");
      break;
    }
    latencies.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * (latencies.size() - 1));
      return static_cast<double>(latencies[idx]);
    };
    state.counters["p50_ns"] = pct(0.50);
    state.counters["p99_ns"] = pct(0.99);
  }
  state.SetItemsProcessed(state.iterations());
  TearDown(state);
}
BENCHMARK(BM_ServerPingLatency)->UseRealTime();

}  // namespace
}  // namespace tyder::bench
