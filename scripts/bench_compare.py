#!/usr/bin/env python3
"""Compare two tyder bench reports and flag regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Both inputs are the tyder-bench-v1 JSON files written by
`scripts/run_all.sh bench [build-dir] [out-file]`. The tool pairs results by
(bench binary, benchmark name), prints a per-benchmark delta table, and exits
non-zero if any paired benchmark's cpu_time_ns regressed by more than the
threshold (default 25%).

Reproduction binaries (bench_fig*/bench_example*) report `match` flags
instead of timings; a result without cpu_time_ns is compared for
correctness-flag regressions only.

Benchmarks present in only one file are reported but never fail the
comparison — new benchmarks appear and old ones retire as the codebase
grows.

A purely relative threshold is meaningless for benchmarks whose whole body
is a couple of machine instructions: at ~1ns per iteration a single cycle
of code/data-placement jitter (guard variable or heap object landing on a
different line in the new binary — instruction-identical loops, verified by
objdump) is already ±30%. Deltas where the absolute change is below
--floor-ns (default 5ns) are therefore reported as "sub-floor" and never
gate, mirroring the combined relative+absolute thresholds of LNT-style
harnesses.

Multi-threaded benchmarks (name contains "/threads:") and any result that
reports items_per_second on both sides are compared by throughput instead
of cpu_time_ns: with N contending threads, aggregate CPU time measures
contention overhead, not progress — a group-commit batch that doubles
commit throughput also burns more total CPU in the leader — and the
scenario replays (BENCH_scenario_*.json) report steps/mutations/reads per
second the same way. A drop in items/sec beyond the threshold is the
regression; the ns floor does not apply (throughput benches are never
instruction-scale).

Scenario reports are newer than most recorded baselines: a baseline file
that predates `run_all.sh scenarios` simply has no scenario_* entries, so
every scenario result shows as "NEW (not compared)" and the gate still
passes. --allow-missing-baseline extends the same tolerance to a wholly
absent baseline FILE (first run on a fresh checkout): everything reports
as new and the exit status is 0.
"""

import argparse
import json
import sys


def load_results(path, missing_ok=False):
    """-> {(bench, name): result-dict}, preserving insertion order.

    With missing_ok, an unreadable file is treated as an empty report (every
    current result becomes NEW) instead of a fatal error.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        if missing_ok:
            print(f"bench_compare: no baseline at {path} ({e.__class__.__name__}); "
                  "everything will report as NEW")
            return {}
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("schema") != "tyder-bench-v1":
        sys.exit(f"bench_compare: {path} is not a tyder-bench-v1 report")
    out = {}
    for bench in doc.get("benches", []):
        binary = bench.get("bench", "?")
        for result in bench.get("results", []):
            out[(binary, result.get("name", "?"))] = result
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="regression threshold in percent (default 25)")
    parser.add_argument("--floor-ns", type=float, default=5.0,
                        help="absolute deltas below this never gate "
                             "(default 5ns; see module docstring)")
    parser.add_argument("--allow-missing-baseline", action="store_true",
                        help="treat an absent/unreadable baseline file as an "
                             "empty report (everything NEW, exit 0) instead "
                             "of a fatal error")
    args = parser.parse_args()

    baseline = load_results(args.baseline,
                            missing_ok=args.allow_missing_baseline)
    current = load_results(args.current)

    regressions = []
    improvements = []
    rows = []
    for key, cur in current.items():
        base = baseline.get(key)
        label = f"{key[0]}:{key[1]}"
        if base is None:
            rows.append((label, None, None, "NEW (not compared)"))
            continue
        # Correctness flags from the reproduction binaries and the scenario
        # replays (oracle_clean/ledger_clean/deterministic): any true->false
        # flip is a regression regardless of timing.
        for flag, base_value in base.items():
            if isinstance(base_value, bool) and base_value \
                    and cur.get(flag) is False:
                regressions.append(f"{label}: {flag} flipped true -> false")
        if "items_per_second" in base and "items_per_second" in cur:
            base_tp, cur_tp = base["items_per_second"], cur["items_per_second"]
            if base_tp <= 0:
                rows.append((label, None, None, "zero-baseline"))
                continue
            drop_pct = 100.0 * (base_tp - cur_tp) / base_tp
            status = f"{-drop_pct:+.1f}% items/s"
            if drop_pct > args.threshold:
                status += " REGRESSION"
                regressions.append(
                    f"{label}: {base_tp:.0f} -> {cur_tp:.0f} items/s "
                    f"({-drop_pct:+.1f}% < -{args.threshold:.0f}%)")
            elif drop_pct < -args.threshold:
                status += " improved"
                improvements.append(label)
            rows.append((label, f"{base_tp:.0f}/s", f"{cur_tp:.0f}/s", status))
            continue
        if "cpu_time_ns" not in base or "cpu_time_ns" not in cur:
            rows.append((label, None, None, "no-timing"))
            continue
        base_ns, cur_ns = base["cpu_time_ns"], cur["cpu_time_ns"]
        if base_ns <= 0:
            rows.append((label, base_ns, cur_ns, "zero-baseline"))
            continue
        delta_pct = 100.0 * (cur_ns - base_ns) / base_ns
        status = f"{delta_pct:+.1f}%"
        if abs(cur_ns - base_ns) < args.floor_ns:
            if abs(delta_pct) > args.threshold:
                status += " sub-floor"
        elif delta_pct > args.threshold:
            status += " REGRESSION"
            regressions.append(
                f"{label}: {base_ns:.0f}ns -> {cur_ns:.0f}ns "
                f"({delta_pct:+.1f}% > {args.threshold:.0f}%)")
        elif delta_pct < -args.threshold:
            status += " improved"
            improvements.append(label)
        rows.append((label, base_ns, cur_ns, status))

    for key in baseline:
        if key not in current:
            rows.append((f"{key[0]}:{key[1]}", None, None, "REMOVED"))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    def fmt(v):
        # Throughput rows carry pre-formatted "N/s" strings; timing rows
        # carry raw nanoseconds (float, or int when the JSON value happened
        # to be integral).
        if isinstance(v, str):
            return v
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            return f"{v:.0f}ns"
        return "-"

    for label, base_ns, cur_ns, status in rows:
        base_s = fmt(base_ns)
        cur_s = fmt(cur_ns)
        print(f"{label:<{width}}  {base_s:>12}  {cur_s:>12}  {status}")

    print(f"\n{len(rows)} compared, {len(improvements)} improved >"
          f"{args.threshold:.0f}%, {len(regressions)} regressed >"
          f"{args.threshold:.0f}%")
    if regressions:
        print("\nregressions:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
