#!/usr/bin/env bash
# Builds everything and reproduces the full evaluation:
#   1. the test suite (unit + integration + property),
#   2. every paper figure/example reproduction binary (exit non-zero on any
#      deviation from the paper),
#   3. the scalability/ablation benchmarks,
#   4. the runnable examples.
#
# Usage: scripts/run_all.sh [build-dir]
#        scripts/run_all.sh bench [build-dir] [out-file]
#        scripts/run_all.sh asan [build-dir]
#        scripts/run_all.sh tsan [build-dir]
#        scripts/run_all.sh ubsan [build-dir]
#        scripts/run_all.sh crash [build-dir]
#        scripts/run_all.sh fuzz [seconds] [build-dir]
#
# The `bench` mode runs every bench binary, collects the one-line JSON each
# emits on its BENCHJSON channel (see bench/repro_util.h), validates it, and
# assembles <out-file> (default: BENCH_baseline.json) at the repo root. The
# step fails if any bench crashes or emits unparseable JSON. Compare two
# bench reports with scripts/bench_compare.py.
#
# The `asan` mode builds with -DTYDER_SANITIZE=address,undefined (default
# build dir: build-asan) and runs the tier-1 test suite — including the
# fault-injection/rollback tests — under ASan+UBSan.
#
# The `tsan` mode builds with -DTYDER_SANITIZE=thread (default build dir:
# build-tsan) and runs the concurrency-sensitive suites — the parallel
# batch-derivation driver, the dispatch-table/call-site-cache tests, and the
# subtype-closure cache tests — under ThreadSanitizer.
#
# The `ubsan` mode builds with -DTYDER_SANITIZE=undefined alone (default
# build dir: build-ubsan) and runs the full tier-1 suite — catches UB that
# ASan's instrumentation can mask, and exercises the snapshot/WAL binary
# parsers under strict bounds/alignment checking.
#
# The `crash` mode runs the in-process crash-injection suite and then an
# out-of-process matrix: for every storage.* fault point `tyderc` reports,
# a real tyderc process is killed mid-operation via TYDER_FAULTS and the
# database directory must recover on the next open.
#
# The `fuzz` mode replays the checked-in regression corpus and then runs a
# time-boxed differential fuzzing campaign (default 30 s; pass a number of
# seconds as the first argument) with the operation-sequence fuzzer. See
# docs/TESTING.md for the seed/replay/shrink workflow.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=all
if [ "${1:-}" = "bench" ]; then
  MODE=bench
  shift
elif [ "${1:-}" = "asan" ]; then
  MODE=asan
  shift
elif [ "${1:-}" = "tsan" ]; then
  MODE=tsan
  shift
elif [ "${1:-}" = "ubsan" ]; then
  MODE=ubsan
  shift
elif [ "${1:-}" = "crash" ]; then
  MODE=crash
  shift
elif [ "${1:-}" = "fuzz" ]; then
  MODE=fuzz
  shift
fi

if [ "$MODE" = "asan" ]; then
  BUILD="${1:-build-asan}"
  cmake -B "$BUILD" -G Ninja -DTYDER_SANITIZE=address,undefined
  cmake --build "$BUILD"
  echo "=== tests (ASan+UBSan) ==="
  ctest --test-dir "$BUILD" --output-on-failure
  echo "ASAN GREEN"
  exit 0
fi

if [ "$MODE" = "tsan" ]; then
  BUILD="${1:-build-tsan}"
  cmake -B "$BUILD" -G Ninja -DTYDER_SANITIZE=thread
  cmake --build "$BUILD"
  echo "=== tests (TSan) ==="
  ctest --test-dir "$BUILD" --output-on-failure \
    -R 'DeriveBatch|DispatchTable|DispatchCache|SubtypeCache|OracleStress'
  echo "TSAN GREEN"
  exit 0
fi

if [ "$MODE" = "ubsan" ]; then
  BUILD="${1:-build-ubsan}"
  cmake -B "$BUILD" -G Ninja -DTYDER_SANITIZE=undefined
  cmake --build "$BUILD"
  echo "=== tests (UBSan) ==="
  ctest --test-dir "$BUILD" --output-on-failure
  echo "UBSAN GREEN"
  exit 0
fi

if [ "$MODE" = "crash" ]; then
  BUILD="${1:-build}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
  echo "=== in-process crash matrix ==="
  ctest --test-dir "$BUILD" --output-on-failure \
    -R 'CrashMatrix|Wal|DurableCatalog|AllOrNothing|Transaction'
  echo "=== out-of-process crash matrix ==="
  TYDERC="$BUILD/tools/tyderc"
  TDL=examples/payroll.tdl
  for point in $("$TYDERC" --list-faults | grep '^storage\.'); do
    echo "--- $point"
    DB="$(mktemp -d)/db"
    "$TYDERC" "$TDL" --db "$DB" > /dev/null
    # The armed fault aborts the mutating op (and, for the compact points,
    # the compaction) partway through its disk protocol — the process exits
    # non-zero with the directory in whatever state the "crash" left it.
    case "$point" in
      storage.compact.*)
        if TYDER_FAULTS="$point" "$TYDERC" --db "$DB" --compact > /dev/null 2>&1; then
          echo "ERROR: fault $point did not fire" >&2
          exit 1
        fi ;;
      *)
        if TYDER_FAULTS="$point" "$TYDERC" --db "$DB" \
             --project Employee SSN,pay_rate CrashView > /dev/null 2>&1; then
          echo "ERROR: fault $point did not fire" >&2
          exit 1
        fi ;;
    esac
    # Recovery: the next open must succeed and land on a valid catalog.
    "$TYDERC" --db "$DB" > /dev/null
    rm -rf "$(dirname "$DB")"
  done
  echo "CRASH GREEN"
  exit 0
fi

if [ "$MODE" = "fuzz" ]; then
  SECONDS_BUDGET="${1:-30}"
  BUILD="${2:-build}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
  echo "=== corpus replay ==="
  ctest --test-dir "$BUILD" --output-on-failure -R 'FuzzCorpus'
  echo "=== fuzz campaign (${SECONDS_BUDGET}s) ==="
  "$BUILD/tests/tyder_fuzz" --seconds "$SECONDS_BUDGET"
  echo "FUZZ GREEN"
  exit 0
fi

BUILD="${1:-build}"
BENCH_OUT="${2:-BENCH_baseline.json}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

run_bench_mode() {
  echo "=== bench (JSON) ==="
  local lines_file
  lines_file="$(mktemp)"
  trap 'rm -f "$lines_file"' RETURN
  local b out
  for b in "$BUILD"/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "--- $b"
    case "$b" in
      # Figure/example reproductions take no google-benchmark flags.
      *bench_fig*|*bench_example*)
        out="$("$b")" ;;
      *)
        # Longer sampling than the quick-look runs below: recorded numbers
        # feed bench_compare.py, where sub-10µs benches need the extra
        # iterations to stay inside the regression threshold's noise floor.
        out="$("$b" --benchmark_min_time=0.1)" ;;
    esac
    # The console reporter may leave ANSI escapes before the marker, so
    # match anywhere in the line and strip through the marker.
    if ! printf '%s\n' "$out" | grep -a 'BENCHJSON: ' >> "$lines_file"; then
      echo "ERROR: $b emitted no BENCHJSON line" >&2
      return 1
    fi
  done
  sed -i 's/^.*BENCHJSON: //' "$lines_file"
  python3 - "$lines_file" > "$BENCH_OUT" <<'PY'
import json, sys
benches = []
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        benches.append(json.loads(line))  # raises on unparseable JSON
json.dump({"schema": "tyder-bench-v1", "benches": benches},
          sys.stdout, indent=2)
print()
PY
  echo "wrote $BENCH_OUT ($(wc -c < "$BENCH_OUT") bytes)"
}

if [ "$MODE" = "bench" ]; then
  run_bench_mode
  echo "BENCH GREEN"
  exit 0
fi

echo "=== tests ==="
ctest --test-dir "$BUILD" --output-on-failure

echo "=== paper artifact reproductions ==="
for b in "$BUILD"/bench/bench_fig* "$BUILD"/bench/bench_example*; do
  echo "--- $b"
  "$b"
done

echo "=== benchmarks ==="
for b in "$BUILD"/bench/bench_*_scale "$BUILD"/bench/bench_dispatch \
         "$BUILD"/bench/bench_views_over_views "$BUILD"/bench/bench_subtype_cache \
         "$BUILD"/bench/bench_query "$BUILD"/bench/bench_parallel_derive; do
  echo "--- $b"
  "$b" --benchmark_min_time=0.02
done

echo "=== examples ==="
for e in "$BUILD"/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "--- $e"
  "$e"
done

echo "ALL GREEN"
