#!/usr/bin/env bash
# Builds everything and reproduces the full evaluation:
#   1. the test suite (unit + integration + property),
#   2. every paper figure/example reproduction binary (exit non-zero on any
#      deviation from the paper),
#   3. the scalability/ablation benchmarks,
#   4. the runnable examples.
#
# Usage: scripts/run_all.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "=== tests ==="
ctest --test-dir "$BUILD" --output-on-failure

echo "=== paper artifact reproductions ==="
for b in "$BUILD"/bench/bench_fig* "$BUILD"/bench/bench_example*; do
  echo "--- $b"
  "$b"
done

echo "=== benchmarks ==="
for b in "$BUILD"/bench/bench_*_scale "$BUILD"/bench/bench_dispatch \
         "$BUILD"/bench/bench_views_over_views "$BUILD"/bench/bench_subtype_cache \
         "$BUILD"/bench/bench_query; do
  echo "--- $b"
  "$b" --benchmark_min_time=0.02
done

echo "=== examples ==="
for e in "$BUILD"/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "--- $e"
  "$e"
done

echo "ALL GREEN"
