#!/usr/bin/env bash
# Builds everything and reproduces the full evaluation:
#   1. the test suite (unit + integration + property),
#   2. every paper figure/example reproduction binary (exit non-zero on any
#      deviation from the paper),
#   3. the scalability/ablation benchmarks,
#   4. the runnable examples.
#
# Usage: scripts/run_all.sh [build-dir]
#        scripts/run_all.sh bench [build-dir] [out-file]
#        scripts/run_all.sh asan [build-dir]
#        scripts/run_all.sh tsan [build-dir]
#        scripts/run_all.sh ubsan [build-dir]
#        scripts/run_all.sh crash [build-dir]
#        scripts/run_all.sh iofault [seconds] [build-dir]
#        scripts/run_all.sh fuzz [seconds] [build-dir]
#        scripts/run_all.sh obs [build-dir] [off-build-dir]
#        scripts/run_all.sh epoch [seconds] [build-dir]
#        scripts/run_all.sh serve [seconds] [build-dir]
#        scripts/run_all.sh scenarios [build-dir] [out-dir]
#        scripts/run_all.sh scenarios long [seconds] [build-dir]
#
# The `bench` mode runs every bench binary, collects the one-line JSON each
# emits on its BENCHJSON channel (see bench/repro_util.h), validates it, and
# assembles <out-file> (default: BENCH_baseline.json) at the repo root. The
# step fails if any bench crashes or emits unparseable JSON. Compare two
# bench reports with scripts/bench_compare.py.
#
# The `asan` mode builds with -DTYDER_SANITIZE=address,undefined (default
# build dir: build-asan) and runs the tier-1 test suite — including the
# fault-injection/rollback tests — under ASan+UBSan.
#
# The `tsan` mode builds with -DTYDER_SANITIZE=thread (default build dir:
# build-tsan) and runs the concurrency-sensitive suites — the parallel
# batch-derivation driver, the dispatch-table/call-site-cache tests, and the
# subtype-closure cache tests — under ThreadSanitizer.
#
# The `ubsan` mode builds with -DTYDER_SANITIZE=undefined alone (default
# build dir: build-ubsan) and runs the full tier-1 suite — catches UB that
# ASan's instrumentation can mask, and exercises the snapshot/WAL binary
# parsers under strict bounds/alignment checking.
#
# The `crash` mode runs the in-process crash-injection suite and then an
# out-of-process matrix: for every storage.* fault point `tyderc` reports,
# a real tyderc process is killed mid-operation via TYDER_FAULTS and the
# database directory must recover on the next open.
#
# The `iofault` mode is the storage robustness gate (docs/ROBUSTNESS.md):
# the Env contract tests, the degraded-mode suite, and the exhaustive
# FaultyEnv call-site × fault-kind × power-loss matrix, followed by an
# out-of-process check that a WAL fsync failure drops tyderc into degraded
# mode with exit code 3, and a time-boxed fuzz campaign (default 60 s) whose
# op mix includes the envfault op.
#
# The `fuzz` mode replays the checked-in regression corpus and then runs a
# time-boxed differential fuzzing campaign (default 30 s; pass a number of
# seconds as the first argument) with the operation-sequence fuzzer. See
# docs/TESTING.md for the seed/replay/shrink workflow.
#
# The `obs` mode is the observability layer's own gate
# (docs/OBSERVABILITY.md): it builds with -DTYDER_OBS=OFF (default build
# dir: build-obs-off) and asserts the metrics/flight-recorder symbols are
# really absent from tyderc, then compares the shared hot-path benches in
# bench_obs between the OFF and ON builds — the always-on instrumentation
# must cost less than 5%.
#
# The `serve` mode is the serving-layer robustness gate
# (docs/ROBUSTNESS.md "Serving and overload"): it runs the net unit and
# fault-matrix suites, boots a real tyderd with --admin on an ephemeral
# port, drives a time-boxed chaos campaign (default 30 s) against it with
# the full net.* fault family plus storage.env.sync faults, and requires
# the acked/nacked ledger and the differential oracle to verify clean over
# the wire; after the campaign the daemon must still answer health and shut
# down cleanly on SIGTERM, and the database directory must reopen healthy.
# A second leg re-runs the net concurrency suites under ThreadSanitizer.
#
# The `scenarios` mode is the macro-workload gate (docs/TESTING.md
# "Scenario packs"): every checked-in bench/scenarios/*.scn pack replays
# deterministically — in-proc packs run twice under --check-determinism with
# the differential oracle in lockstep; wire packs are driven over the tyder1
# protocol against a real tyderd booted for the run (acked/nacked ledger +
# server-side verify must come back clean, the daemon must shut down cleanly
# on SIGTERM afterwards). Each pack's BENCHJSON report is written to
# <out-dir>/BENCH_scenario_<name>.json (default: a temp dir; pass `.` to
# re-record the committed baselines) and compared against the committed
# BENCH_scenario_<name>.json trajectory with bench_compare.py — correctness
# flags (oracle_clean/ledger_clean/deterministic) gate hard, throughput
# gates at a tolerant 50% because scenario replays are macro numbers.
# `scenarios long [seconds]` is the sustained-load variant: repeated timed
# replays (phase pace honored, fresh seed per round) until the budget is
# spent — a soak, not a gate; reports are printed but not recorded.
#
# The `epoch` mode is the MVCC + group-commit concurrency gate
# (docs/PERFORMANCE.md "Schema epochs and group commit"): it builds with
# ThreadSanitizer and runs the epoch reclamation suite, the epoch-churn
# oracle stress (readers pin snapshots while a writer commits past them),
# the concurrent group-commit corpus trace, and a time-boxed fuzz campaign
# whose op mix includes the concommit op — all under TSan.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=all
if [ "${1:-}" = "bench" ]; then
  MODE=bench
  shift
elif [ "${1:-}" = "asan" ]; then
  MODE=asan
  shift
elif [ "${1:-}" = "tsan" ]; then
  MODE=tsan
  shift
elif [ "${1:-}" = "ubsan" ]; then
  MODE=ubsan
  shift
elif [ "${1:-}" = "crash" ]; then
  MODE=crash
  shift
elif [ "${1:-}" = "iofault" ]; then
  MODE=iofault
  shift
elif [ "${1:-}" = "fuzz" ]; then
  MODE=fuzz
  shift
elif [ "${1:-}" = "obs" ]; then
  MODE=obs
  shift
elif [ "${1:-}" = "epoch" ]; then
  MODE=epoch
  shift
elif [ "${1:-}" = "serve" ]; then
  MODE=serve
  shift
elif [ "${1:-}" = "scenarios" ]; then
  MODE=scenarios
  shift
fi

if [ "$MODE" = "asan" ]; then
  BUILD="${1:-build-asan}"
  cmake -B "$BUILD" -G Ninja -DTYDER_SANITIZE=address,undefined
  cmake --build "$BUILD"
  echo "=== tests (ASan+UBSan) ==="
  ctest --test-dir "$BUILD" --output-on-failure
  echo "ASAN GREEN"
  exit 0
fi

if [ "$MODE" = "tsan" ]; then
  BUILD="${1:-build-tsan}"
  cmake -B "$BUILD" -G Ninja -DTYDER_SANITIZE=thread
  cmake --build "$BUILD"
  echo "=== tests (TSan) ==="
  ctest --test-dir "$BUILD" --output-on-failure \
    -R 'DeriveBatch|DispatchTable|DispatchCache|SubtypeCache|OracleStress|ObsStress|EpochCatalog|ServerTest|NetFaultMatrix|ChaosTest'
  echo "TSAN GREEN"
  exit 0
fi

if [ "$MODE" = "serve" ]; then
  SECONDS_BUDGET="${1:-30}"
  BUILD="${2:-build}"
  TSAN_BUILD="${3:-build-tsan}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
  echo "=== net unit + fault-matrix suites ==="
  ctest --test-dir "$BUILD" --output-on-failure \
    -R 'FrameTest|ProtocolTest|ServerTest|NetFaultMatrix|ChaosTest'
  echo "=== out-of-process chaos campaign ($((SECONDS_BUDGET))s) ==="
  DB="$(mktemp -d)/db"
  DAEMON_LOG="$(mktemp)"
  "$BUILD/tools/tyderd" --db "$DB" examples/payroll.tdl --admin \
    > "$DAEMON_LOG" 2>&1 &
  DAEMON_PID=$!
  # tyderd prints "LISTENING <port>" once the accept loop is up; an
  # ephemeral port means parallel CI runs never collide.
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(grep -aoE '^LISTENING [0-9]+' "$DAEMON_LOG" | awk '{print $2}' || true)"
    [ -n "$PORT" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
      echo "ERROR: tyderd died before listening" >&2
      cat "$DAEMON_LOG" >&2
      exit 1
    }
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "ERROR: tyderd never reported LISTENING" >&2
    kill "$DAEMON_PID" 2>/dev/null || true
    exit 1
  fi
  set +e
  "$BUILD/tests/tyder_chaos" --port "$PORT" --duration-ms \
    $((SECONDS_BUDGET * 1000)) --net-faults --storage-faults
  rc=$?
  set -e
  if [ "$rc" -ne 0 ]; then
    echo "ERROR: chaos campaign exited $rc" >&2
    kill "$DAEMON_PID" 2>/dev/null || true
    exit 1
  fi
  # Graceful shutdown: SIGTERM must take the daemon down cleanly (exit 0)
  # within its poll tick, not leave it to be KILLed.
  kill -TERM "$DAEMON_PID"
  DAEMON_RC=0
  wait "$DAEMON_PID" || DAEMON_RC=$?
  if [ "$DAEMON_RC" -ne 0 ]; then
    echo "ERROR: tyderd exited $DAEMON_RC on SIGTERM, want 0" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
  fi
  # Everything the campaign acked must have survived the restart boundary:
  # the directory reopens healthy (recovery replays the WAL tail).
  "$BUILD/tools/tyderc" --db "$DB" --health | grep -q "state: healthy" || {
    echo "ERROR: db did not reopen healthy after the campaign" >&2
    exit 1
  }
  rm -rf "$(dirname "$DB")" "$DAEMON_LOG"
  echo "=== net concurrency suites (TSan) ==="
  cmake -B "$TSAN_BUILD" -G Ninja -DTYDER_SANITIZE=thread
  cmake --build "$TSAN_BUILD"
  ctest --test-dir "$TSAN_BUILD" --output-on-failure \
    -R 'ServerTest|NetFaultMatrix|ChaosTest'
  echo "SERVE GREEN"
  exit 0
fi

if [ "$MODE" = "scenarios" ]; then
  LONG=0
  if [ "${1:-}" = "long" ]; then
    LONG=1
    shift
    SECONDS_BUDGET="${1:-120}"
    BUILD="${2:-build}"
    OUT_DIR=""
  else
    BUILD="${1:-build}"
    OUT_DIR="${2:-}"
  fi
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
  WORKLOAD="$BUILD/tools/tyder_workload"

  # Split the checked-in packs by mode: wire packs need a live tyderd.
  INPROC_PACKS=()
  WIRE_PACKS=()
  for pack in bench/scenarios/*.scn; do
    if grep -q '^mode wire$' "$pack"; then
      WIRE_PACKS+=("$pack")
    else
      INPROC_PACKS+=("$pack")
    fi
  done

  DAEMON_PID=""
  boot_tyderd() {
    DB="$(mktemp -d)/db"
    DAEMON_LOG="$(mktemp)"
    "$BUILD/tools/tyderd" --db "$DB" examples/payroll.tdl --admin \
      > "$DAEMON_LOG" 2>&1 &
    DAEMON_PID=$!
    PORT=""
    for _ in $(seq 1 100); do
      PORT="$(grep -aoE '^LISTENING [0-9]+' "$DAEMON_LOG" | awk '{print $2}' || true)"
      [ -n "$PORT" ] && break
      kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "ERROR: tyderd died before listening" >&2
        cat "$DAEMON_LOG" >&2
        exit 1
      }
      sleep 0.1
    done
    if [ -z "$PORT" ]; then
      echo "ERROR: tyderd never reported LISTENING" >&2
      kill "$DAEMON_PID" 2>/dev/null || true
      exit 1
    fi
  }
  stop_tyderd() {
    kill -TERM "$DAEMON_PID"
    DAEMON_RC=0
    wait "$DAEMON_PID" || DAEMON_RC=$?
    if [ "$DAEMON_RC" -ne 0 ]; then
      echo "ERROR: tyderd exited $DAEMON_RC on SIGTERM, want 0" >&2
      cat "$DAEMON_LOG" >&2
      exit 1
    fi
    # Everything the replay acked must survive the restart boundary.
    "$BUILD/tools/tyderc" --db "$DB" --health | grep -q "state: healthy" || {
      echo "ERROR: db did not reopen healthy after the scenario replay" >&2
      exit 1
    }
    rm -rf "$(dirname "$DB")" "$DAEMON_LOG"
    DAEMON_PID=""
  }

  if [ "$LONG" = 1 ]; then
    echo "=== long scenario soak (${SECONDS_BUDGET}s, timed replays) ==="
    if [ "${#WIRE_PACKS[@]}" -gt 0 ]; then boot_tyderd; fi
    round=0
    SECONDS=0
    while [ "$SECONDS" -lt "$SECONDS_BUDGET" ]; do
      for pack in "${INPROC_PACKS[@]}"; do
        echo "--- $pack (round $round, timed)"
        "$WORKLOAD" --pack "$pack" --timed --seed $((7000 + round)) \
          | grep -v '^BENCHJSON: '
      done
      for pack in "${WIRE_PACKS[@]}"; do
        echo "--- $pack over the wire (round $round, timed)"
        "$WORKLOAD" --pack "$pack" --port "$PORT" --timed \
          --seed $((7000 + round)) | grep -v '^BENCHJSON: '
      done
      round=$((round + 1))
    done
    if [ -n "$DAEMON_PID" ]; then stop_tyderd; fi
    echo "SCENARIOS GREEN (long, $round rounds)"
    exit 0
  fi

  if [ -z "$OUT_DIR" ]; then
    OUT_DIR="$(mktemp -d)"
  fi
  mkdir -p "$OUT_DIR"

  run_pack() {  # <pack-file> [driver args...]
    local pack="$1"
    shift
    local name out line
    name="$(basename "$pack" .scn)"
    out="$("$WORKLOAD" --pack "$pack" "$@")"
    printf '%s\n' "$out" | grep -v '^BENCHJSON: '
    line="$(printf '%s\n' "$out" | grep -a 'BENCHJSON: ' \
      | sed 's/^.*BENCHJSON: //')"
    if [ -z "$line" ]; then
      echo "ERROR: $pack emitted no BENCHJSON line" >&2
      return 1
    fi
    printf '{"schema":"tyder-bench-v1","benches":[%s]}\n' "$line" \
      > "$OUT_DIR/BENCH_scenario_$name.json"
    echo "wrote $OUT_DIR/BENCH_scenario_$name.json"
    # Gate against the committed trajectory: correctness flags hard, macro
    # throughput tolerant. A baseline that predates this pack passes as NEW.
    python3 scripts/bench_compare.py "BENCH_scenario_$name.json" \
      "$OUT_DIR/BENCH_scenario_$name.json" \
      --threshold 50 --allow-missing-baseline
  }

  echo "=== in-proc scenario replays (oracle lockstep, determinism check) ==="
  for pack in "${INPROC_PACKS[@]}"; do
    echo "--- $pack"
    run_pack "$pack" --check-determinism
  done

  if [ "${#WIRE_PACKS[@]}" -gt 0 ]; then
    echo "=== wire scenario replays (real tyderd, ack ledger) ==="
    boot_tyderd
    for pack in "${WIRE_PACKS[@]}"; do
      echo "--- $pack over the wire (port $PORT)"
      run_pack "$pack" --port "$PORT"
    done
    stop_tyderd
  fi
  echo "SCENARIOS GREEN"
  exit 0
fi

if [ "$MODE" = "epoch" ]; then
  SECONDS_BUDGET="${1:-30}"
  BUILD="${2:-build-tsan}"
  cmake -B "$BUILD" -G Ninja -DTYDER_SANITIZE=thread
  cmake --build "$BUILD"
  echo "=== epoch lifecycle + churn stress (TSan) ==="
  ctest --test-dir "$BUILD" --output-on-failure -R 'EpochCatalog|OracleStress'
  echo "=== concurrent group-commit corpus (TSan) ==="
  "$BUILD/tests/tyder_fuzz" --replay tests/fuzz/corpus/seq-026-concommit.trace
  echo "=== concommit fuzz campaign (TSan, ${SECONDS_BUDGET}s) ==="
  "$BUILD/tests/tyder_fuzz" --seconds "$SECONDS_BUDGET"
  echo "EPOCH GREEN"
  exit 0
fi

if [ "$MODE" = "ubsan" ]; then
  BUILD="${1:-build-ubsan}"
  cmake -B "$BUILD" -G Ninja -DTYDER_SANITIZE=undefined
  cmake --build "$BUILD"
  echo "=== tests (UBSan) ==="
  ctest --test-dir "$BUILD" --output-on-failure
  echo "UBSAN GREEN"
  exit 0
fi

if [ "$MODE" = "crash" ]; then
  BUILD="${1:-build}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
  echo "=== in-process crash matrix ==="
  ctest --test-dir "$BUILD" --output-on-failure \
    -R 'CrashMatrix|Wal|DurableCatalog|AllOrNothing|Transaction'
  echo "=== out-of-process crash matrix ==="
  TYDERC="$BUILD/tools/tyderc"
  TDL=examples/payroll.tdl
  for point in $("$TYDERC" --list-faults | grep '^storage\.'); do
    echo "--- $point"
    DB="$(mktemp -d)/db"
    FLIGHT="$(mktemp -d)"
    "$TYDERC" "$TDL" --db "$DB" > /dev/null
    # The armed fault aborts the mutating op (and, for the compact points,
    # the compaction) partway through its disk protocol — the process exits
    # non-zero with the directory in whatever state the "crash" left it.
    # TYDER_FLIGHT_DIR makes the fault hit ship a flight-recorder dump.
    case "$point" in
      # storage.env.rename / sync_dir / truncate sit on Compact's publish
      # protocol and never fire during a WAL append (see the scenario map in
      # tests/storage/crash_matrix_test.cc).
      storage.compact.*|storage.env.rename|storage.env.sync_dir|storage.env.truncate)
        if TYDER_FAULTS="$point" TYDER_FLIGHT_DIR="$FLIGHT" \
             "$TYDERC" --db "$DB" --compact > /dev/null 2>&1; then
          echo "ERROR: fault $point did not fire" >&2
          exit 1
        fi ;;
      *)
        if TYDER_FAULTS="$point" TYDER_FLIGHT_DIR="$FLIGHT" \
             "$TYDERC" --db "$DB" \
             --project Employee SSN,pay_rate CrashView > /dev/null 2>&1; then
          echo "ERROR: fault $point did not fire" >&2
          exit 1
        fi ;;
    esac
    # The killed process must have left a parseable tyder-flight-v1 dump
    # recording the armed point — the crash's black box.
    python3 - "$FLIGHT" "$point" <<'PY'
import glob, json, sys
files = sorted(glob.glob(sys.argv[1] + "/flight-*.json"))
assert files, "no flight dump written"
want = "failpoint:" + sys.argv[2]
found = False
for path in files:
    with open(path) as f:
        dump = json.load(f)  # raises on unparseable JSON
    assert dump["schema"] == "tyder-flight-v1", (path, dump.get("schema"))
    if dump["reason"] == want and any(
            e["kind"] == "failpoint"
            for t in dump["threads"] for e in t["events"]):
        found = True
assert found, "no dump records " + want
PY
    # Recovery: the next open must succeed and land on a valid catalog.
    "$TYDERC" --db "$DB" > /dev/null
    rm -rf "$(dirname "$DB")" "$FLIGHT"
  done
  echo "CRASH GREEN"
  exit 0
fi

if [ "$MODE" = "iofault" ]; then
  SECONDS_BUDGET="${1:-60}"
  BUILD="${2:-build}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
  echo "=== Env contract + degraded mode + I/O fault matrix ==="
  ctest --test-dir "$BUILD" --output-on-failure \
    -R 'PosixEnv|WritableFile|FaultyEnv|DegradedMode|IoFaultMatrix|CrashMatrix'
  echo "=== out-of-process degraded exit code ==="
  TYDERC="$BUILD/tools/tyderc"
  DB="$(mktemp -d)/db"
  "$TYDERC" examples/payroll.tdl --db "$DB" > /dev/null
  # A WAL fsync failure must refuse the mutation, report degraded mode, and
  # exit with the dedicated code 3 (0 and 1 both mean something else).
  set +e
  TYDER_FAULTS="storage.env.sync=1" \
    "$TYDERC" --db "$DB" --project Employee SSN,pay_rate FaultView \
    > /dev/null 2>&1
  rc=$?
  set -e
  if [ "$rc" -ne 3 ]; then
    echo "ERROR: degraded mutation exited $rc, want 3" >&2
    exit 1
  fi
  # The fsync lie is per-process: a fresh open re-validates the directory.
  "$TYDERC" --db "$DB" --health | grep -q "state: healthy" || {
    echo "ERROR: db did not re-validate to healthy after the faulted run" >&2
    exit 1
  }
  rm -rf "$(dirname "$DB")"
  echo "=== env-fault fuzz campaign (${SECONDS_BUDGET}s) ==="
  "$BUILD/tests/tyder_fuzz" --seconds "$SECONDS_BUDGET"
  echo "IOFAULT GREEN"
  exit 0
fi

if [ "$MODE" = "fuzz" ]; then
  SECONDS_BUDGET="${1:-30}"
  BUILD="${2:-build}"
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD"
  echo "=== corpus replay ==="
  ctest --test-dir "$BUILD" --output-on-failure -R 'FuzzCorpus'
  echo "=== fuzz campaign (${SECONDS_BUDGET}s) ==="
  "$BUILD/tests/tyder_fuzz" --seconds "$SECONDS_BUDGET"
  echo "FUZZ GREEN"
  exit 0
fi

if [ "$MODE" = "obs" ]; then
  BUILD="${1:-build}"
  OFF_BUILD="${2:-build-obs-off}"
  echo "=== TYDER_OBS=OFF build ==="
  cmake -B "$OFF_BUILD" -G Ninja -DTYDER_OBS=OFF
  cmake --build "$OFF_BUILD" --target tyderc bench_obs
  # The OFF build must really compile the metrics layer out: tyderc keeps
  # the tracer (available in both modes) but must reference no counters,
  # histograms, flight recorder, or snapshotter.
  if nm -C "$OFF_BUILD/tools/tyderc" \
       | grep -E 'FlightRecorder|StatsSnapshotter|MetricsRegistry|ShardedCounter'; then
    echo "ERROR: TYDER_OBS=OFF tyderc still links observability symbols" >&2
    exit 1
  fi
  echo "no observability symbols in OFF tyderc"
  echo "=== TYDER_OBS=ON build ==="
  cmake -B "$BUILD" -G Ninja
  cmake --build "$BUILD" --target bench_obs
  # Overhead gate: the hot-path benches bench_obs builds in BOTH modes must
  # cost at most 5% more with the instrumentation on. The ON-only micro
  # benches pair with nothing in the OFF report and show up as NEW, which
  # bench_compare never fails on.
  # Same alternating min-of-N protocol as the recorded reports: a single
  # shot of each side against a tight 5% threshold is at the mercy of host
  # noise (one bad scheduler window on a shared vCPU swings a 90us bench
  # 10-30%), so each side is measured five times, interleaved OFF/ON so
  # drift hits both sides, and the per-benchmark min goes to the gate.
  collect_obs_report() {  # <bench-binary> <out-json>
    "$1" --benchmark_min_time=0.5 \
      | grep -a 'BENCHJSON: ' \
      | sed 's/^.*BENCHJSON: //' \
      | python3 -c 'import json, sys
benches = [json.loads(l) for l in sys.stdin if l.strip()]
json.dump({"schema": "tyder-bench-v1", "benches": benches}, sys.stdout)
print()' > "$2"
  }
  merge_min() {  # <run1-json> <run2-json> <out-json>
    python3 -c 'import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
other = {(bench["bench"], r["name"]): r
         for bench in b["benches"] for r in bench["results"]}
for bench in a["benches"]:
    for r in bench["results"]:
        o = other.get((bench["bench"], r["name"]))
        if o is None:
            continue
        rt, ot = r.get("cpu_time_ns"), o.get("cpu_time_ns")
        if isinstance(rt, (int, float)) and isinstance(ot, (int, float)) \
                and ot < rt:
            r.update(o)
json.dump(a, sys.stdout)
print()' "$1" "$2" > "$3"
  }
  OFF_JSON="$(mktemp --suffix=.json)"
  ON_JSON="$(mktemp --suffix=.json)"
  OFF_RUN="$(mktemp --suffix=.json)"
  ON_RUN="$(mktemp --suffix=.json)"
  for sweep in 1 2 3 4 5; do
    echo "--- bench_obs (OFF, sweep $sweep/5)"
    collect_obs_report "$OFF_BUILD/bench/bench_obs" "$OFF_RUN"
    if [ "$sweep" = 1 ]; then cp "$OFF_RUN" "$OFF_JSON"
    else merge_min "$OFF_JSON" "$OFF_RUN" "$OFF_JSON.next" && mv "$OFF_JSON.next" "$OFF_JSON"; fi
    echo "--- bench_obs (ON, sweep $sweep/5)"
    collect_obs_report "$BUILD/bench/bench_obs" "$ON_RUN"
    if [ "$sweep" = 1 ]; then cp "$ON_RUN" "$ON_JSON"
    else merge_min "$ON_JSON" "$ON_RUN" "$ON_JSON.next" && mv "$ON_JSON.next" "$ON_JSON"; fi
  done
  echo "=== overhead (ON vs OFF, min-of-5, 5% gate) ==="
  python3 scripts/bench_compare.py "$OFF_JSON" "$ON_JSON" --threshold 5
  rm -f "$OFF_RUN" "$ON_RUN" "$OFF_JSON" "$ON_JSON"
  echo "OBS GREEN"
  exit 0
fi

BUILD="${1:-build}"
BENCH_OUT="${2:-BENCH_baseline.json}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

run_bench_mode() {
  echo "=== bench (JSON) ==="
  local lines_file
  lines_file="$(mktemp)"
  trap 'rm -f "$lines_file"' RETURN
  local b out
  for b in "$BUILD"/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "--- $b"
    case "$b" in
      # Figure/example reproductions take no google-benchmark flags.
      *bench_fig*|*bench_example*)
        out="$("$b")" ;;
      *)
        # Longer sampling than the quick-look runs below: recorded numbers
        # feed bench_compare.py, where sub-10µs benches need the extra
        # iterations to stay inside the regression threshold's noise floor.
        out="$("$b" --benchmark_min_time=0.1)" ;;
    esac
    # The console reporter may leave ANSI escapes before the marker, so
    # match anywhere in the line and strip through the marker.
    if ! printf '%s\n' "$out" | grep -a 'BENCHJSON: ' >> "$lines_file"; then
      echo "ERROR: $b emitted no BENCHJSON line" >&2
      return 1
    fi
  done
  sed -i 's/^.*BENCHJSON: //' "$lines_file"
  python3 - "$lines_file" > "$BENCH_OUT" <<'PY'
import json, sys
benches = []
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        benches.append(json.loads(line))  # raises on unparseable JSON
json.dump({"schema": "tyder-bench-v1", "benches": benches},
          sys.stdout, indent=2)
print()
PY
  echo "wrote $BENCH_OUT ($(wc -c < "$BENCH_OUT") bytes)"
}

if [ "$MODE" = "bench" ]; then
  run_bench_mode
  echo "BENCH GREEN"
  exit 0
fi

echo "=== tests ==="
ctest --test-dir "$BUILD" --output-on-failure

echo "=== paper artifact reproductions ==="
for b in "$BUILD"/bench/bench_fig* "$BUILD"/bench/bench_example*; do
  echo "--- $b"
  "$b"
done

echo "=== benchmarks ==="
for b in "$BUILD"/bench/bench_*_scale "$BUILD"/bench/bench_dispatch \
         "$BUILD"/bench/bench_views_over_views "$BUILD"/bench/bench_subtype_cache \
         "$BUILD"/bench/bench_query "$BUILD"/bench/bench_parallel_derive; do
  echo "--- $b"
  "$b" --benchmark_min_time=0.02
done

echo "=== examples ==="
for e in "$BUILD"/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "--- $e"
  "$e"
done

echo "ALL GREEN"
